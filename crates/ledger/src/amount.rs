//! Amount arithmetic.
//!
//! The ledger tracks two kinds of value:
//!
//! * [`Drops`] — the native XRP, counted in integer drops (1 XRP = 10⁶
//!   drops). XRP "is the only currency that cannot be owed to other users —
//!   it is effectively transferred from balance to balance" (paper §III.B).
//! * [`Value`] — a signed fixed-point decimal with six fractional digits,
//!   matching the 10⁻⁶ precision the paper reports for ledger amounts
//!   (§V.A). IOU balances, trust limits and offer amounts all use it.
//!
//! [`Value`] deliberately avoids floating point: every analysis in the study
//! (fingerprint rounding above all) must be exact and reproducible.

use serde::{Deserialize, Serialize};

use crate::currency::Currency;
use ripple_crypto::AccountId;

/// Fractional digits carried by [`Value`].
pub const VALUE_SCALE_DIGITS: u32 = 6;
/// The scaling factor (10⁶).
pub const VALUE_SCALE: i128 = 1_000_000;

/// A signed fixed-point decimal with six fractional digits.
///
/// # Examples
///
/// ```
/// use ripple_ledger::Value;
///
/// let price: Value = "4.5".parse()?;
/// assert_eq!(price.to_string(), "4.5");
/// assert_eq!((price + price).to_string(), "9");
/// # Ok::<(), ripple_ledger::ValueParseError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Value(i128);

impl Value {
    /// Zero.
    pub const ZERO: Value = Value(0);
    /// One.
    pub const ONE: Value = Value(VALUE_SCALE);

    /// Builds a value from raw scaled units (micro-units).
    pub const fn from_raw(raw: i128) -> Value {
        Value(raw)
    }

    /// Builds a value from an integer count of whole units.
    pub const fn from_int(units: i64) -> Value {
        Value(units as i128 * VALUE_SCALE)
    }

    /// Returns the raw scaled representation (micro-units).
    pub const fn raw(self) -> i128 {
        self.0
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value (saturating: `|i128::MIN|` clamps to `i128::MAX`).
    pub fn abs(self) -> Value {
        Value(self.0.checked_abs().unwrap_or(i128::MAX))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Value) -> Option<Value> {
        self.0.checked_add(rhs.0).map(Value)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Value) -> Option<Value> {
        self.0.checked_sub(rhs.0).map(Value)
    }

    /// Multiplies by the rational `num/den`, rounding toward zero.
    ///
    /// This is how exchange rates are applied: rates are kept as integer
    /// ratios so the arithmetic stays exact and deterministic.
    ///
    /// The product is computed as `(a/d)·n + ((a mod d)·n)/d`, which equals
    /// the full-width `a·n/d` under truncation toward zero but keeps the
    /// intermediate terms a factor of `den` smaller; inputs extreme enough
    /// to overflow even the decomposed form saturate instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn mul_ratio(self, num: u64, den: u64) -> Value {
        assert!(den != 0, "rate denominator must be non-zero");
        let (n, d) = (num as i128, den as i128);
        let whole = self.0 / d;
        let rem = self.0 % d;
        // `rem·n` cannot overflow (|rem| < den ≤ 2⁶⁴, n ≤ 2⁶⁴ ⇒ < 2¹²⁸ signed
        // range only when den is near u64::MAX; saturate for that fringe too).
        let tail = rem.checked_mul(n).map(|t| t / d);
        match (whole.checked_mul(n), tail) {
            (Some(head), Some(tail)) => match head.checked_add(tail) {
                Some(exact) => Value(exact),
                None => Value::saturated(self.0 >= 0),
            },
            _ => Value::saturated(self.0 >= 0),
        }
    }

    /// The saturation endpoint with the given sign.
    fn saturated(positive: bool) -> Value {
        if positive {
            Value(i128::MAX)
        } else {
            Value(i128::MIN)
        }
    }

    /// Rounds to the nearest multiple of 10^`exp` (ties away from zero).
    ///
    /// This is the paper's Table I rounding primitive: "a given resolution
    /// level rounds the original value to the corresponding closest 10^x
    /// value", where x ranges from −3 (BTC at maximum resolution) to +7 (weak
    /// currencies at low resolution).
    ///
    /// `exp` below −6 returns the value unchanged (finer than the ledger's
    /// own precision).
    ///
    /// # Examples
    ///
    /// ```
    /// use ripple_ledger::Value;
    ///
    /// let v: Value = "1234.567891".parse().unwrap();
    /// assert_eq!(v.round_to_pow10(2).to_string(), "1200");
    /// assert_eq!(v.round_to_pow10(-2).to_string(), "1234.57");
    /// ```
    pub fn round_to_pow10(self, exp: i32) -> Value {
        let shift = exp + VALUE_SCALE_DIGITS as i32;
        if shift <= 0 {
            return self;
        }
        if shift > 38 {
            // 10³⁹ exceeds the i128 range, so |value| < half the rounding
            // step always: everything rounds to zero.
            return Value::ZERO;
        }
        let factor = 10i128.pow(shift as u32);
        let half = factor / 2;
        // Saturate the tie-break nudge at the raw endpoints instead of
        // overflowing; the quotient below shrinks it back into range.
        let adjusted = if self.0 >= 0 {
            self.0.saturating_add(half)
        } else {
            self.0.saturating_sub(half)
        };
        Value(adjusted / factor * factor)
    }

    /// Saturating conversion to `f64`, for reporting/statistics only (the
    /// ledger itself never computes on floats).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / VALUE_SCALE as f64
    }

    /// Builds a value from an `f64`, rounding to the ledger precision. Meant
    /// for workload generators; ledger-critical code should parse decimal
    /// strings instead.
    pub fn from_f64(x: f64) -> Value {
        Value((x * VALUE_SCALE as f64).round() as i128)
    }
}

impl std::ops::Add for Value {
    type Output = Value;

    /// Saturating at the `i128` endpoints rather than panicking: ledger
    /// amounts live far below the raw range, so a saturated sum only ever
    /// arises from adversarial inputs — which must degrade, not abort.
    fn add(self, rhs: Value) -> Value {
        match self.0.checked_add(rhs.0) {
            Some(raw) => Value(raw),
            None => Value::saturated(self.0 >= 0),
        }
    }
}

impl std::ops::Sub for Value {
    type Output = Value;

    /// Saturating, mirroring `Add`.
    fn sub(self, rhs: Value) -> Value {
        match self.0.checked_sub(rhs.0) {
            Some(raw) => Value(raw),
            None => Value::saturated(self.0 >= 0),
        }
    }
}

impl std::ops::Neg for Value {
    type Output = Value;

    /// Saturating: `-i128::MIN` clamps to `i128::MAX`.
    fn neg(self) -> Value {
        Value(self.0.checked_neg().unwrap_or(i128::MAX))
    }
}

impl std::iter::Sum for Value {
    fn sum<I: Iterator<Item = Value>>(iter: I) -> Value {
        iter.fold(Value::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let whole = abs / VALUE_SCALE as u128;
        let frac = abs % VALUE_SCALE as u128;
        if frac == 0 {
            write!(f, "{sign}{whole}")
        } else {
            let mut frac_str = format!("{frac:06}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            write!(f, "{sign}{whole}.{frac_str}")
        }
    }
}

/// Error parsing a [`Value`] from a decimal string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueParseError;

impl std::fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected a decimal number with at most {VALUE_SCALE_DIGITS} fractional digits"
        )
    }
}

impl std::error::Error for ValueParseError {}

impl std::str::FromStr for Value {
    type Err = ValueParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i128, rest),
            None => (1i128, s),
        };
        if body.is_empty() {
            return Err(ValueParseError);
        }
        let (whole_str, frac_str) = match body.split_once('.') {
            Some((w, fr)) => (w, fr),
            None => (body, ""),
        };
        if frac_str.len() > VALUE_SCALE_DIGITS as usize {
            return Err(ValueParseError);
        }
        if whole_str.is_empty() && frac_str.is_empty() {
            return Err(ValueParseError);
        }
        let digits = |t: &str| -> Result<i128, ValueParseError> {
            if t.is_empty() {
                return Ok(0);
            }
            if !t.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ValueParseError);
            }
            t.parse::<i128>().map_err(|_| ValueParseError)
        };
        let whole = digits(whole_str)?;
        let mut frac = digits(frac_str)?;
        for _ in frac_str.len()..VALUE_SCALE_DIGITS as usize {
            frac *= 10;
        }
        Ok(Value(sign * (whole * VALUE_SCALE + frac)))
    }
}

/// An integer count of XRP drops (1 XRP = 10⁶ drops).
///
/// # Examples
///
/// ```
/// use ripple_ledger::Drops;
///
/// let fee = Drops::new(10);
/// let stash = Drops::from_xrp(100);
/// assert_eq!(stash.checked_sub(fee).unwrap().as_drops(), 99_999_990);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Drops(u64);

impl Drops {
    /// Zero drops.
    pub const ZERO: Drops = Drops(0);

    /// Wraps a raw drop count.
    pub const fn new(drops: u64) -> Drops {
        Drops(drops)
    }

    /// Converts whole XRP into drops.
    pub const fn from_xrp(xrp: u64) -> Drops {
        Drops(xrp * 1_000_000)
    }

    /// Returns the raw drop count.
    pub const fn as_drops(self) -> u64 {
        self.0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Drops) -> Option<Drops> {
        self.0.checked_add(rhs.0).map(Drops)
    }

    /// Checked subtraction (fails on underflow — balances can't go negative).
    pub fn checked_sub(self, rhs: Drops) -> Option<Drops> {
        self.0.checked_sub(rhs.0).map(Drops)
    }

    /// The XRP amount as a [`Value`] (XRP units, not drops).
    pub fn to_value(self) -> Value {
        Value::from_raw(self.0 as i128)
    }
}

impl std::fmt::Display for Drops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} XRP", self.to_value())
    }
}

impl std::iter::Sum for Drops {
    fn sum<I: Iterator<Item = Drops>>(iter: I) -> Drops {
        iter.fold(Drops::ZERO, |a, b| {
            a.checked_add(b).expect("drop sum overflow")
        })
    }
}

/// An issued (IOU) amount: value, currency, and the issuer whose debt it is.
///
/// The paper (§III.B): "for every user and every currency (except XRP) Ripple
/// keeps the balance of the debit with a record consisting of three fields:
/// amount, currency, and issuers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IouAmount {
    /// How much.
    pub value: Value,
    /// In which currency.
    pub currency: Currency,
    /// Whose debt the holder carries.
    pub issuer: AccountId,
}

impl IouAmount {
    /// Convenience constructor.
    pub fn new(value: Value, currency: Currency, issuer: AccountId) -> IouAmount {
        IouAmount {
            value,
            currency,
            issuer,
        }
    }
}

impl std::fmt::Display for IouAmount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}/{}",
            self.value,
            self.currency,
            self.issuer.short()
        )
    }
}

/// Either native XRP or an issued amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Amount {
    /// Native XRP.
    Xrp(Drops),
    /// An issued (IOU) amount.
    Iou(IouAmount),
}

impl Amount {
    /// The currency of the amount (XRP for the native asset).
    pub fn currency(&self) -> Currency {
        match self {
            Amount::Xrp(_) => Currency::XRP,
            Amount::Iou(iou) => iou.currency,
        }
    }

    /// The numeric value, in XRP units for the native asset.
    pub fn value(&self) -> Value {
        match self {
            Amount::Xrp(d) => d.to_value(),
            Amount::Iou(iou) => iou.value,
        }
    }

    /// Whether this is native XRP.
    pub fn is_xrp(&self) -> bool {
        matches!(self, Amount::Xrp(_))
    }
}

impl std::fmt::Display for Amount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Amount::Xrp(d) => write!(f, "{d}"),
            Amount::Iou(iou) => write!(f, "{iou}"),
        }
    }
}

impl From<Drops> for Amount {
    fn from(d: Drops) -> Amount {
        Amount::Xrp(d)
    }
}

impl From<IouAmount> for Amount {
    fn from(iou: IouAmount) -> Amount {
        Amount::Iou(iou)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_display_round_trip_basics() {
        for s in ["0", "1", "4.5", "-4.5", "0.000001", "123456789.654321"] {
            let v: Value = s.parse().unwrap();
            assert_eq!(v.to_string(), s, "round-trip of {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-", ".", "1.2.3", "1,5", "1.1234567", "abc"] {
            assert!(s.parse::<Value>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn parse_pads_fraction() {
        let v: Value = "1.5".parse().unwrap();
        assert_eq!(v.raw(), 1_500_000);
    }

    #[test]
    fn rounding_matches_table1_semantics() {
        // EUR at maximum resolution rounds to the closest tens (10^1).
        let v: Value = "4.5".parse().unwrap();
        assert_eq!(v.round_to_pow10(1), Value::ZERO);
        let v: Value = "7".parse().unwrap();
        assert_eq!(v.round_to_pow10(1).to_string(), "10");
        // BTC at maximum resolution rounds to the closest thousandth (10^-3).
        assert!("0.0123456".parse::<Value>().is_err()); // beyond ledger precision
        let v: Value = "0.012345".parse().unwrap();
        assert_eq!(v.round_to_pow10(-3).to_string(), "0.012");
        // Weak currencies at low resolution round to the closest 10^7.
        let v: Value = "12345678".parse().unwrap();
        assert_eq!(v.round_to_pow10(7).to_string(), "10000000");
    }

    #[test]
    fn rounding_ties_away_from_zero() {
        let v: Value = "15".parse().unwrap();
        assert_eq!(v.round_to_pow10(1).to_string(), "20");
        let v: Value = "-15".parse().unwrap();
        assert_eq!(v.round_to_pow10(1).to_string(), "-20");
    }

    #[test]
    fn rounding_below_precision_is_identity() {
        let v: Value = "1.000001".parse().unwrap();
        assert_eq!(v.round_to_pow10(-7), v);
    }

    #[test]
    fn drops_conversions() {
        assert_eq!(Drops::from_xrp(1).as_drops(), 1_000_000);
        assert_eq!(Drops::from_xrp(2).to_value().to_string(), "2");
        assert_eq!(Drops::new(10).to_value().to_string(), "0.00001");
    }

    #[test]
    fn drops_subtraction_underflow_is_none() {
        assert!(Drops::new(5).checked_sub(Drops::new(6)).is_none());
    }

    #[test]
    fn mul_ratio_applies_exchange_rate() {
        let v: Value = "100".parse().unwrap();
        // 1 EUR = 1.08 USD expressed as 108/100.
        assert_eq!(v.mul_ratio(108, 100).to_string(), "108");
    }

    #[test]
    fn amount_accessors() {
        let iou = IouAmount::new("3".parse().unwrap(), Currency::USD, AccountId::ZERO);
        let a: Amount = iou.into();
        assert_eq!(a.currency(), Currency::USD);
        assert!(!a.is_xrp());
        let x: Amount = Drops::from_xrp(3).into();
        assert_eq!(x.value(), "3".parse().unwrap());
        assert!(x.is_xrp());
    }

    proptest! {
        #[test]
        fn value_display_parse_round_trip(raw in -1_000_000_000_000_000i128..1_000_000_000_000_000) {
            let v = Value::from_raw(raw);
            let parsed: Value = v.to_string().parse().unwrap();
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn rounding_idempotent(raw in -1_000_000_000_000i128..1_000_000_000_000, exp in -6i32..8) {
            let v = Value::from_raw(raw);
            let once = v.round_to_pow10(exp);
            prop_assert_eq!(once.round_to_pow10(exp), once);
        }

        #[test]
        fn rounding_error_bounded(raw in -1_000_000_000_000i128..1_000_000_000_000, exp in -6i32..8) {
            let v = Value::from_raw(raw);
            let rounded = v.round_to_pow10(exp);
            let bound = 10i128.pow((exp + 6).max(0) as u32);
            prop_assert!((rounded.raw() - v.raw()).abs() * 2 <= bound);
        }

        #[test]
        fn add_sub_inverse(a in -1i128<<100..1i128<<100, b in -1i128<<100..1i128<<100) {
            let (va, vb) = (Value::from_raw(a), Value::from_raw(b));
            prop_assert_eq!(va + vb - vb, va);
        }
    }
}
