//! Transactions: the signed instructions that modify the ledger.

use serde::{Deserialize, Serialize};

use crate::amount::{Amount, Drops, Value};
use crate::currency::Currency;
use ripple_crypto::{sha512_half, AccountId, Digest256, PublicKey, SimKeypair, SimSignature};

/// The operation a [`Transaction`] performs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxKind {
    /// Deliver an amount to a destination, optionally along explicit paths
    /// (each path lists *intermediate* accounts only).
    Payment {
        /// Receiving account.
        destination: AccountId,
        /// Amount to deliver.
        amount: Amount,
        /// Cap on what the sender is willing to spend (cross-currency).
        send_max: Option<Amount>,
        /// Candidate paths of intermediate hops.
        paths: Vec<Vec<AccountId>>,
    },
    /// Declare trust towards `trustee` for up to `limit` of `currency`.
    TrustSet {
        /// The account being trusted.
        trustee: AccountId,
        /// The trusted currency.
        currency: Currency,
        /// Maximum IOU exposure the sender accepts.
        limit: Value,
    },
    /// Place a currency-exchange offer: sell `taker_gets`, buy `taker_pays`.
    OfferCreate {
        /// What the offer owner gives (what a taker gets).
        taker_gets: Amount,
        /// What the offer owner wants (what a taker pays).
        taker_pays: Amount,
    },
    /// Withdraw a previously placed offer by its sequence number.
    OfferCancel {
        /// Sequence number of the `OfferCreate` being cancelled.
        offer_seq: u32,
    },
    /// Adjust account flags (modelled but not interpreted by the study).
    AccountSet {
        /// Raw flags word.
        flags: u32,
    },
}

impl TxKind {
    /// Short label used in reports and the store codec.
    pub fn label(&self) -> &'static str {
        match self {
            TxKind::Payment { .. } => "Payment",
            TxKind::TrustSet { .. } => "TrustSet",
            TxKind::OfferCreate { .. } => "OfferCreate",
            TxKind::OfferCancel { .. } => "OfferCancel",
            TxKind::AccountSet { .. } => "AccountSet",
        }
    }
}

/// A signed ledger transaction.
///
/// # Examples
///
/// ```
/// use ripple_ledger::{Drops, Transaction, TxKind};
/// use ripple_crypto::{AccountId, SimKeypair};
///
/// let keys = SimKeypair::from_seed(b"alice");
/// let alice = AccountId::from_public_key(&keys.public_key());
/// let tx = Transaction::build(
///     alice,
///     1,
///     Drops::new(10),
///     TxKind::Payment {
///         destination: AccountId::from_bytes([9; 20]),
///         amount: Drops::from_xrp(5).into(),
///         send_max: None,
///         paths: Vec::new(),
///     },
/// )
/// .signed(&keys);
/// assert!(tx.verify_signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// The account submitting (and paying for) the transaction.
    pub account: AccountId,
    /// Per-account sequence number; must match the account root.
    pub sequence: u32,
    /// XRP fee burned on application.
    pub fee: Drops,
    /// The operation.
    pub kind: TxKind,
    /// Key the transaction claims to be signed with.
    pub signing_key: PublicKey,
    /// Simulated signature over the canonical bytes.
    pub signature: SimSignature,
}

/// A transaction under construction (no signature yet).
#[derive(Debug, Clone)]
pub struct TxBuilder {
    account: AccountId,
    sequence: u32,
    fee: Drops,
    kind: TxKind,
}

impl Transaction {
    /// Starts building a transaction; finish with [`TxBuilder::signed`].
    pub fn build(account: AccountId, sequence: u32, fee: Drops, kind: TxKind) -> TxBuilder {
        TxBuilder {
            account,
            sequence,
            fee,
            kind,
        }
    }

    /// Canonical byte serialization used for hashing and signing.
    ///
    /// The encoding is deterministic: fixed field order, big-endian integers,
    /// length-prefixed variable parts.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"TXN0");
        out.extend_from_slice(self.account.as_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.fee.as_drops().to_be_bytes());
        encode_kind(&self.kind, &mut out);
        out
    }

    /// The transaction hash: `SHA-512Half` of the canonical bytes (including
    /// the signing key, so identical instructions from different signers
    /// hash differently).
    pub fn hash(&self) -> Digest256 {
        let mut bytes = self.canonical_bytes();
        bytes.extend_from_slice(self.signing_key.as_bytes());
        sha512_half(&bytes)
    }

    /// Verifies the simulated signature over the canonical bytes.
    pub fn verify_signature(&self) -> bool {
        SimKeypair::verify(&self.signing_key, &self.canonical_bytes(), &self.signature)
    }
}

impl TxBuilder {
    /// Signs the transaction, producing the final [`Transaction`].
    pub fn signed(self, keys: &SimKeypair) -> Transaction {
        let mut tx = Transaction {
            account: self.account,
            sequence: self.sequence,
            fee: self.fee,
            kind: self.kind,
            signing_key: keys.public_key(),
            signature: keys.sign(&[]),
        };
        tx.signature = keys.sign(&tx.canonical_bytes());
        tx
    }
}

fn encode_amount(amount: &Amount, out: &mut Vec<u8>) {
    match amount {
        Amount::Xrp(d) => {
            out.push(0);
            out.extend_from_slice(&d.as_drops().to_be_bytes());
        }
        Amount::Iou(iou) => {
            out.push(1);
            out.extend_from_slice(&iou.value.raw().to_be_bytes());
            out.extend_from_slice(iou.currency.as_bytes());
            out.extend_from_slice(iou.issuer.as_bytes());
        }
    }
}

fn encode_kind(kind: &TxKind, out: &mut Vec<u8>) {
    match kind {
        TxKind::Payment {
            destination,
            amount,
            send_max,
            paths,
        } => {
            out.push(1);
            out.extend_from_slice(destination.as_bytes());
            encode_amount(amount, out);
            match send_max {
                Some(m) => {
                    out.push(1);
                    encode_amount(m, out);
                }
                None => out.push(0),
            }
            out.extend_from_slice(&(paths.len() as u32).to_be_bytes());
            for path in paths {
                out.extend_from_slice(&(path.len() as u32).to_be_bytes());
                for hop in path {
                    out.extend_from_slice(hop.as_bytes());
                }
            }
        }
        TxKind::TrustSet {
            trustee,
            currency,
            limit,
        } => {
            out.push(2);
            out.extend_from_slice(trustee.as_bytes());
            out.extend_from_slice(currency.as_bytes());
            out.extend_from_slice(&limit.raw().to_be_bytes());
        }
        TxKind::OfferCreate {
            taker_gets,
            taker_pays,
        } => {
            out.push(3);
            encode_amount(taker_gets, out);
            encode_amount(taker_pays, out);
        }
        TxKind::OfferCancel { offer_seq } => {
            out.push(4);
            out.extend_from_slice(&offer_seq.to_be_bytes());
        }
        TxKind::AccountSet { flags } => {
            out.push(5);
            out.extend_from_slice(&flags.to_be_bytes());
        }
    }
}

/// Result of applying a transaction to the ledger state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxResult {
    /// The transaction applied successfully; the fee was burned.
    Applied,
    /// The transaction failed validation; nothing changed (not even the fee —
    /// a simplification relative to the real network's `tec` class).
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(seed: &[u8]) -> Transaction {
        let keys = SimKeypair::from_seed(seed);
        let account = AccountId::from_public_key(&keys.public_key());
        Transaction::build(
            account,
            7,
            Drops::new(10),
            TxKind::Payment {
                destination: AccountId::from_bytes([3; 20]),
                amount: Drops::from_xrp(1).into(),
                send_max: None,
                paths: vec![vec![AccountId::from_bytes([4; 20])]],
            },
        )
        .signed(&keys)
    }

    #[test]
    fn signature_verifies() {
        assert!(sample_tx(b"a").verify_signature());
    }

    #[test]
    fn tampering_breaks_signature() {
        let mut tx = sample_tx(b"a");
        tx.sequence += 1;
        assert!(!tx.verify_signature());
    }

    #[test]
    fn hash_is_deterministic_and_sensitive() {
        let a = sample_tx(b"a");
        let b = sample_tx(b"a");
        assert_eq!(a.hash(), b.hash());
        let c = sample_tx(b"c");
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn canonical_bytes_distinguish_kinds() {
        let keys = SimKeypair::from_seed(b"k");
        let account = AccountId::from_public_key(&keys.public_key());
        let t1 = Transaction::build(account, 1, Drops::new(10), TxKind::AccountSet { flags: 0 })
            .signed(&keys);
        let t2 = Transaction::build(
            account,
            1,
            Drops::new(10),
            TxKind::OfferCancel { offer_seq: 0 },
        )
        .signed(&keys);
        assert_ne!(t1.canonical_bytes(), t2.canonical_bytes());
        assert_ne!(t1.hash(), t2.hash());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(sample_tx(b"x").kind.label(), "Payment");
        assert_eq!(TxKind::AccountSet { flags: 1 }.label(), "AccountSet");
    }

    #[test]
    fn iou_amounts_encode_issuer() {
        use crate::amount::IouAmount;
        let keys = SimKeypair::from_seed(b"k");
        let account = AccountId::from_public_key(&keys.public_key());
        let mk = |issuer: u8| {
            Transaction::build(
                account,
                1,
                Drops::new(10),
                TxKind::Payment {
                    destination: AccountId::from_bytes([3; 20]),
                    amount: IouAmount::new(
                        "5".parse().unwrap(),
                        Currency::USD,
                        AccountId::from_bytes([issuer; 20]),
                    )
                    .into(),
                    send_max: None,
                    paths: Vec::new(),
                },
            )
            .signed(&keys)
        };
        assert_ne!(mk(1).hash(), mk(2).hash());
    }
}
