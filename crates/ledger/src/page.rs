//! Ledger pages — the units sealed by consensus.
//!
//! "When agreement is reached, the transactions in the agreement are
//! permanently added to the distributed ledger as a new page." (paper §III.B)

use serde::{Deserialize, Serialize};

use crate::time::RippleTime;
use crate::tx::Transaction;
use ripple_crypto::{sha512_half, Digest256};

/// Header of a ledger page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerHeader {
    /// Monotonic page sequence number (genesis is 1).
    pub sequence: u32,
    /// Hash of the previous page.
    pub parent_hash: Digest256,
    /// Root hash over the page's transaction set.
    pub tx_root: Digest256,
    /// Time the page closed (passed consensus).
    pub close_time: RippleTime,
    /// Total XRP drops in existence after this page (fees are burned, so the
    /// figure is non-increasing — matching the real ledger).
    pub total_drops: u64,
}

impl LedgerHeader {
    /// Hash of the header, which identifies the page.
    pub fn hash(&self) -> Digest256 {
        let mut bytes = Vec::with_capacity(88);
        bytes.extend_from_slice(b"PAGE");
        bytes.extend_from_slice(&self.sequence.to_be_bytes());
        bytes.extend_from_slice(self.parent_hash.as_bytes());
        bytes.extend_from_slice(self.tx_root.as_bytes());
        bytes.extend_from_slice(&self.close_time.seconds().to_be_bytes());
        bytes.extend_from_slice(&self.total_drops.to_be_bytes());
        sha512_half(&bytes)
    }
}

/// A closed ledger page: header plus the transactions it sealed.
///
/// # Examples
///
/// ```
/// use ripple_ledger::{LedgerPage, RippleTime};
///
/// let genesis = LedgerPage::genesis(RippleTime::from_ymd_hms(2013, 1, 1, 0, 0, 0), 10u64.pow(11));
/// let next = LedgerPage::next(&genesis, Vec::new(), genesis.header.close_time.plus_seconds(5));
/// assert_eq!(next.header.sequence, 2);
/// assert_eq!(next.header.parent_hash, genesis.hash());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerPage {
    /// The page header.
    pub header: LedgerHeader,
    /// Transactions sealed in this page, in canonical order.
    pub txs: Vec<Transaction>,
}

impl LedgerPage {
    /// Builds the genesis page (sequence 1, zero parent).
    pub fn genesis(close_time: RippleTime, total_drops: u64) -> LedgerPage {
        let header = LedgerHeader {
            sequence: 1,
            parent_hash: Digest256::from_bytes([0; 32]),
            tx_root: tx_root(&[]),
            close_time,
            total_drops,
        };
        LedgerPage {
            header,
            txs: Vec::new(),
        }
    }

    /// Builds the successor page of `parent` sealing `txs` at `close_time`.
    ///
    /// The new page's `total_drops` is reduced by the fees burned by `txs`.
    pub fn next(parent: &LedgerPage, txs: Vec<Transaction>, close_time: RippleTime) -> LedgerPage {
        let burned: u64 = txs.iter().map(|t| t.fee.as_drops()).sum();
        let header = LedgerHeader {
            sequence: parent.header.sequence + 1,
            parent_hash: parent.hash(),
            tx_root: tx_root(&txs),
            close_time,
            total_drops: parent.header.total_drops.saturating_sub(burned),
        };
        LedgerPage { header, txs }
    }

    /// The page hash (header hash).
    pub fn hash(&self) -> Digest256 {
        self.header.hash()
    }
}

/// Root hash over a transaction set: a hash chain over the transaction
/// hashes in order (a simplification of the real ledger's SHAMap tree that
/// preserves the properties the study needs: determinism and sensitivity to
/// content and order).
pub fn tx_root(txs: &[Transaction]) -> Digest256 {
    let mut bytes = Vec::with_capacity(4 + txs.len() * 32);
    bytes.extend_from_slice(b"TXRT");
    for tx in txs {
        bytes.extend_from_slice(tx.hash().as_bytes());
    }
    sha512_half(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::Drops;
    use crate::tx::TxKind;
    use ripple_crypto::{AccountId, SimKeypair};

    fn tx(seed: &[u8], fee: u64) -> Transaction {
        let keys = SimKeypair::from_seed(seed);
        Transaction::build(
            AccountId::from_public_key(&keys.public_key()),
            1,
            Drops::new(fee),
            TxKind::AccountSet { flags: 0 },
        )
        .signed(&keys)
    }

    #[test]
    fn genesis_starts_chain() {
        let g = LedgerPage::genesis(RippleTime::EPOCH, 100);
        assert_eq!(g.header.sequence, 1);
        assert_eq!(g.header.parent_hash, Digest256::from_bytes([0; 32]));
    }

    #[test]
    fn chain_links_by_hash() {
        let g = LedgerPage::genesis(RippleTime::EPOCH, 100);
        let p2 = LedgerPage::next(&g, vec![], RippleTime::from_seconds(5));
        let p3 = LedgerPage::next(&p2, vec![], RippleTime::from_seconds(10));
        assert_eq!(p2.header.parent_hash, g.hash());
        assert_eq!(p3.header.parent_hash, p2.hash());
        assert_ne!(p2.hash(), p3.hash());
    }

    #[test]
    fn fees_reduce_total_drops() {
        let g = LedgerPage::genesis(RippleTime::EPOCH, 1_000);
        let p2 = LedgerPage::next(
            &g,
            vec![tx(b"a", 10), tx(b"b", 15)],
            RippleTime::from_seconds(5),
        );
        assert_eq!(p2.header.total_drops, 975);
    }

    #[test]
    fn tx_root_depends_on_order() {
        let a = tx(b"a", 10);
        let b = tx(b"b", 10);
        assert_ne!(tx_root(&[a.clone(), b.clone()]), tx_root(&[b, a]));
    }

    #[test]
    fn header_hash_sensitive_to_close_time() {
        let g = LedgerPage::genesis(RippleTime::EPOCH, 100);
        let p1 = LedgerPage::next(&g, vec![], RippleTime::from_seconds(5));
        let p2 = LedgerPage::next(&g, vec![], RippleTime::from_seconds(6));
        assert_ne!(p1.hash(), p2.hash());
    }
}
