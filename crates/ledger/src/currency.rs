//! Currency codes.
//!
//! Ripple currencies are three-character codes. Most map to ISO 4217, but —
//! as the paper's appendix highlights — the ledger happily carries arbitrary
//! codes like `CCK` and `MTL`, two of the most-traded "currencies" in its
//! first three years, which the authors attribute to denial-of-service spam.

use serde::{Deserialize, Serialize};

/// A three-character currency code, or the native XRP.
///
/// XRP is special-cased (as in the real ledger) because it is the only asset
/// that moves balance-to-balance rather than as an IOU.
///
/// # Examples
///
/// ```
/// use ripple_ledger::Currency;
///
/// assert!(Currency::XRP.is_xrp());
/// assert_eq!(Currency::code("USD").to_string(), "USD");
/// assert!(!Currency::code("CCK").is_iso4217());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Currency([u8; 3]);

impl Currency {
    /// The native asset.
    pub const XRP: Currency = Currency(*b"XRP");
    /// US dollar.
    pub const USD: Currency = Currency(*b"USD");
    /// Euro.
    pub const EUR: Currency = Currency(*b"EUR");
    /// Bitcoin.
    pub const BTC: Currency = Currency(*b"BTC");
    /// Chinese yuan.
    pub const CNY: Currency = Currency(*b"CNY");
    /// Japanese yen.
    pub const JPY: Currency = Currency(*b"JPY");
    /// Pound sterling.
    pub const GBP: Currency = Currency(*b"GBP");
    /// Australian dollar.
    pub const AUD: Currency = Currency(*b"AUD");
    /// South-Korean won.
    pub const KRW: Currency = Currency(*b"KRW");
    /// Silver (ounce).
    pub const XAG: Currency = Currency(*b"XAG");
    /// Gold (ounce).
    pub const XAU: Currency = Currency(*b"XAU");
    /// Platinum (ounce).
    pub const XPT: Currency = Currency(*b"XPT");
    /// Stellar's lumen, traded on Ripple in the study period.
    pub const STR: Currency = Currency(*b"STR");
    /// Non-ISO code the paper flags as probable DoS spam (micro-payments).
    pub const CCK: Currency = Currency(*b"CCK");
    /// Non-ISO code the paper flags as DoS spam (8-hop, 6-path, ~1e9 amounts).
    pub const MTL: Currency = Currency(*b"MTL");

    /// Builds a currency from a three-character code.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not exactly three ASCII characters. Use
    /// [`Currency::try_code`] for fallible construction.
    pub fn code(code: &str) -> Currency {
        Currency::try_code(code).expect("currency code must be 3 ASCII characters")
    }

    /// Fallible constructor from a three-character ASCII code.
    pub fn try_code(code: &str) -> Option<Currency> {
        let bytes = code.as_bytes();
        if bytes.len() != 3 || !bytes.iter().all(|b| b.is_ascii_alphanumeric()) {
            return None;
        }
        Some(Currency([bytes[0], bytes[1], bytes[2]]))
    }

    /// Returns the raw code bytes.
    pub const fn as_bytes(&self) -> &[u8; 3] {
        &self.0
    }

    /// Whether this is the native XRP asset.
    pub fn is_xrp(&self) -> bool {
        *self == Currency::XRP
    }

    /// Whether the code appears in ISO 4217 (the paper checks `CCK`/`MTL`
    /// against the standard and finds them absent). The table here covers the
    /// codes appearing in the paper's Figure 4; it is intentionally not a
    /// complete ISO registry.
    pub fn is_iso4217(&self) -> bool {
        matches!(
            &self.0,
            b"USD"
                | b"EUR"
                | b"CNY"
                | b"JPY"
                | b"GBP"
                | b"AUD"
                | b"KRW"
                | b"CAD"
                | b"NZD"
                | b"MXN"
                | b"BRL"
                | b"ILS"
                | b"XAU"
                | b"XAG"
                | b"XPT"
        )
    }
}

impl std::fmt::Display for Currency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Codes are validated ASCII at construction.
        f.write_str(std::str::from_utf8(&self.0).expect("ascii code"))
    }
}

impl std::str::FromStr for Currency {
    type Err = CurrencyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Currency::try_code(s).ok_or(CurrencyParseError)
    }
}

/// Error parsing a currency code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrencyParseError;

impl std::fmt::Display for CurrencyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "currency codes are exactly 3 ASCII alphanumerics")
    }
}

impl std::error::Error for CurrencyParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xrp_is_special() {
        assert!(Currency::XRP.is_xrp());
        assert!(!Currency::USD.is_xrp());
    }

    #[test]
    fn spam_codes_are_not_iso() {
        assert!(!Currency::CCK.is_iso4217());
        assert!(!Currency::MTL.is_iso4217());
        assert!(Currency::USD.is_iso4217());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let c: Currency = "DOG".parse().unwrap();
        assert_eq!(c.to_string(), "DOG");
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(Currency::try_code("TOOLONG").is_none());
        assert!(Currency::try_code("ab").is_none());
        assert!(Currency::try_code("U$D").is_none());
    }

    #[test]
    fn ordering_is_stable() {
        assert!(Currency::BTC < Currency::USD);
    }
}
