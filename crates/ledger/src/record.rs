//! Payment records — the per-payment metadata the study mines.
//!
//! For each transaction the paper extracts (§V.A): "i) the sender account S
//! that submitted the payment; ii) the amount A delivered; iii) the timestamp
//! T of the transaction […]; iv) the currency C delivered; v) the destination
//! account D that received the payment". The appendix additionally needs the
//! path structure (intermediate hops and parallel paths) of every payment.

use serde::{Deserialize, Serialize};

use crate::amount::Value;
use crate::currency::Currency;
use crate::time::RippleTime;
use ripple_crypto::{AccountId, Digest256};

/// Structure of the paths a payment actually took.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathSummary {
    /// Each executed path as its sequence of *intermediate* accounts
    /// (sender and destination excluded). A direct payment has one empty
    /// path.
    pub paths: Vec<Vec<AccountId>>,
}

impl PathSummary {
    /// A direct payment (no intermediaries, one path).
    pub fn direct() -> PathSummary {
        PathSummary {
            paths: vec![Vec::new()],
        }
    }

    /// Builds a summary from explicit intermediate-hop lists.
    pub fn from_paths(paths: Vec<Vec<AccountId>>) -> PathSummary {
        PathSummary { paths }
    }

    /// Number of parallel paths the payment was split across (Fig. 6(b)).
    pub fn parallel_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of intermediate hops, reported as the *maximum* across the
    /// parallel paths (Fig. 6(a) counts hops per payment path; the analytics
    /// layer also offers per-path counting).
    pub fn max_intermediate_hops(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over every intermediate account on every path.
    pub fn intermediaries(&self) -> impl Iterator<Item = &AccountId> {
        self.paths.iter().flatten()
    }

    /// Whether the payment needed at least one intermediary.
    pub fn is_multi_hop(&self) -> bool {
        self.paths.iter().any(|p| !p.is_empty())
    }
}

/// One mined payment: exactly the fields the de-anonymization study uses,
/// plus the path structure the appendix analyses.
///
/// # Examples
///
/// ```
/// use ripple_ledger::{Currency, PathSummary, PaymentRecord, RippleTime};
/// use ripple_crypto::{sha512_half, AccountId};
///
/// let rec = PaymentRecord {
///     tx_hash: sha512_half(b"tx"),
///     sender: AccountId::from_bytes([1; 20]),
///     destination: AccountId::from_bytes([2; 20]),
///     currency: Currency::USD,
///     issuer: Some(AccountId::from_bytes([3; 20])),
///     amount: "4.5".parse().unwrap(),
///     timestamp: RippleTime::from_ymd_hms(2015, 8, 24, 15, 41, 3),
///     ledger_seq: 1000,
///     paths: PathSummary::direct(),
///     cross_currency: false,
///     source_currency: None,
/// };
/// assert!(!rec.paths.is_multi_hop());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaymentRecord {
    /// Hash of the transaction that produced the payment.
    pub tx_hash: Digest256,
    /// The sender account `S` — the field the attack recovers.
    pub sender: AccountId,
    /// The destination account `D`.
    pub destination: AccountId,
    /// The delivered currency `C`.
    pub currency: Currency,
    /// Issuer of the delivered IOU (`None` for native XRP).
    pub issuer: Option<AccountId>,
    /// The delivered amount `A` (in XRP units when `currency` is XRP).
    pub amount: Value,
    /// The timestamp `T`: close time of the sealing ledger page.
    pub timestamp: RippleTime,
    /// Sequence of the sealing ledger page.
    pub ledger_seq: u32,
    /// Executed path structure.
    pub paths: PathSummary,
    /// Whether the payment crossed currencies (needed a Market-Maker
    /// bridge).
    pub cross_currency: bool,
    /// Currency the sender paid with, when it differs from the delivered
    /// one (`None` for same-currency payments).
    pub source_currency: Option<Currency>,
}

impl PaymentRecord {
    /// Whether this is a direct XRP payment (the 13M of the paper's 23M that
    /// the path analysis excludes).
    pub fn is_direct_xrp(&self) -> bool {
        self.currency.is_xrp() && !self.paths.is_multi_hop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn record(paths: Vec<Vec<AccountId>>, currency: Currency) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(b"t"),
            sender: acct(1),
            destination: acct(2),
            currency,
            issuer: None,
            amount: "1".parse().unwrap(),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::from_paths(paths),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn direct_summary() {
        let s = PathSummary::direct();
        assert_eq!(s.parallel_paths(), 1);
        assert_eq!(s.max_intermediate_hops(), 0);
        assert!(!s.is_multi_hop());
    }

    #[test]
    fn hop_counting() {
        let s = PathSummary::from_paths(vec![vec![acct(3)], vec![acct(3), acct(4), acct(5)]]);
        assert_eq!(s.parallel_paths(), 2);
        assert_eq!(s.max_intermediate_hops(), 3);
        assert_eq!(s.intermediaries().count(), 4);
        assert!(s.is_multi_hop());
    }

    #[test]
    fn direct_xrp_detection() {
        assert!(record(vec![Vec::new()], Currency::XRP).is_direct_xrp());
        assert!(!record(vec![vec![acct(3)]], Currency::XRP).is_direct_xrp());
        assert!(!record(vec![Vec::new()], Currency::USD).is_direct_xrp());
    }
}
