//! Core data model of the Ripple Observatory study: accounts, trust lines,
//! offers, transactions, ledger pages and the mutable ledger state.
//!
//! This crate is a from-scratch reimplementation of the XRP Ledger concepts
//! the ICDCS 2017 paper measures:
//!
//! * **XRP and IOU amounts** ([`Drops`], [`Value`], [`Amount`]) — XRP is the
//!   only asset transferred balance-to-balance; everything else is an
//!   "I-Owe-You" riding on trust lines.
//! * **Trust lines** ([`TrustLine`], [`state::LedgerState`]) — the credit
//!   network edges that payments travel (in the opposite direction of trust).
//! * **Transactions** ([`Transaction`], [`TxKind`]) — payments, trust-line
//!   changes, and currency-exchange offers.
//! * **Ledger pages** ([`LedgerHeader`], [`LedgerPage`]) — the units the
//!   consensus protocol validates and seals.
//! * **Payment records** ([`PaymentRecord`]) — the per-payment metadata the
//!   paper mines from 500 GB of history (sender, amount, timestamp, currency,
//!   destination, path structure).
//!
//! # Examples
//!
//! ```
//! use ripple_ledger::{Currency, Drops, LedgerState};
//! use ripple_crypto::AccountId;
//!
//! let mut state = LedgerState::new();
//! let alice = AccountId::from_bytes([1; 20]);
//! let bob = AccountId::from_bytes([2; 20]);
//! state.create_account(alice, Drops::from_xrp(100));
//! state.create_account(bob, Drops::from_xrp(100));
//!
//! // Bob trusts Alice for 50 USD, so Alice can pay Bob up to 50 USD in IOUs.
//! state.set_trust(bob, alice, Currency::USD, "50".parse().unwrap()).unwrap();
//! state
//!     .ripple_hop(alice, bob, Currency::USD, "20".parse().unwrap())
//!     .unwrap();
//! assert_eq!(
//!     state.iou_balance(bob, alice, Currency::USD),
//!     "20".parse().unwrap()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod amount;
pub mod currency;
pub mod fees;
pub mod page;
pub mod record;
pub mod state;
pub mod time;
pub mod tx;

pub use access::{shard_of, tx_access, AccessKey, AccessSet, SHARD_COUNT};
pub use amount::{Amount, Drops, IouAmount, Value, ValueParseError};
pub use currency::Currency;
pub use fees::FeeSchedule;
pub use page::{LedgerHeader, LedgerPage};
pub use record::{PathSummary, PaymentRecord};
pub use state::{AccountRoot, LedgerError, LedgerState, TrustLine};
pub use time::RippleTime;
pub use tx::{Transaction, TxKind, TxResult};

pub use ripple_crypto::AccountId;
