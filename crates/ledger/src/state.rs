//! The mutable ledger state: accounts, trust lines, IOU balances and offers.
//!
//! Trust-line semantics follow the paper's §III.B: "if user Alice trusts Bob
//! for 10 USD, this means that Alice is willing to give Bob credit for up to
//! 10 USD. […] the trust-line of 10 USD from Alice to Bob limits IOU
//! transactions in the opposite direction (from Bob to Alice) to 10 USD."
//!
//! Balances between a pair of accounts are stored once per unordered pair and
//! currency, signed from the lexicographically lower account's point of view
//! — mirroring the real ledger's `RippleState` objects and giving automatic
//! netting of mutual debt.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::access::{shard_of, SHARD_COUNT};
use crate::amount::{Amount, Drops, Value};
use crate::currency::Currency;
use crate::fees::FeeSchedule;
use crate::tx::{Transaction, TxKind, TxResult};
use ripple_crypto::{AccountId, FxHashMap};

/// Per-account ledger entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountRoot {
    /// XRP balance in drops.
    pub balance: Drops,
    /// Next expected transaction sequence number.
    pub sequence: u32,
    /// Number of owned objects (trust lines declared + live offers),
    /// which scales the reserve requirement.
    pub owner_count: u32,
}

/// A declared trust line: `truster` accepts up to `limit` of `trustee`'s
/// IOUs in `currency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustLine {
    /// The account extending trust.
    pub truster: AccountId,
    /// The account being trusted (whose IOUs are accepted).
    pub trustee: AccountId,
    /// The trusted currency.
    pub currency: Currency,
    /// Maximum exposure.
    pub limit: Value,
}

/// A live currency-exchange offer resting in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Offer {
    /// The account that placed the offer (the Market Maker, typically).
    pub owner: AccountId,
    /// Sequence number of the creating transaction (offer identity).
    pub offer_seq: u32,
    /// Remaining amount the owner gives.
    pub taker_gets: Amount,
    /// Remaining amount the owner wants.
    pub taker_pays: Amount,
}

/// Errors from ledger mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LedgerError {
    /// The referenced account does not exist.
    NoSuchAccount(AccountId),
    /// Attempt to create an account that already exists.
    AccountExists(AccountId),
    /// Transaction sequence number mismatch.
    BadSequence {
        /// Sequence the account root expects next.
        expected: u32,
        /// Sequence the transaction carried.
        got: u32,
    },
    /// The account cannot pay the fee (or would dip below its reserve).
    InsufficientXrp {
        /// Account whose balance fell short.
        account: AccountId,
        /// XRP needed.
        needed: Drops,
        /// XRP available above the reserve.
        available: Drops,
    },
    /// A rippling hop exceeded the receiving trust line's capacity.
    TrustLimitExceeded {
        /// The hop's paying account.
        from: AccountId,
        /// The hop's receiving account.
        to: AccountId,
        /// Capacity that was actually available.
        capacity: Value,
        /// Amount requested.
        requested: Value,
    },
    /// Payments to oneself are rejected.
    SelfPayment,
    /// Zero or negative amounts are rejected.
    NonPositiveAmount,
    /// XRP cannot ride trust lines.
    XrpOnTrustLine,
    /// The referenced offer does not exist.
    NoSuchOffer {
        /// Offer owner.
        owner: AccountId,
        /// Offer sequence.
        offer_seq: u32,
    },
    /// Trust limits cannot be negative.
    NegativeLimit,
    /// The offered fee is below the network's base fee.
    FeeTooLow {
        /// Fee the transaction offered.
        fee: Drops,
        /// Minimum fee the schedule demands.
        minimum: Drops,
    },
    /// An IOU payment carried more than one path; only single-path payments
    /// execute here (richer routing lives in the payment engine crate).
    MultiPathUnsupported {
        /// Number of paths the transaction carried.
        paths: usize,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::NoSuchAccount(a) => write!(f, "account {} does not exist", a.short()),
            LedgerError::AccountExists(a) => write!(f, "account {} already exists", a.short()),
            LedgerError::BadSequence { expected, got } => {
                write!(f, "bad sequence: expected {expected}, got {got}")
            }
            LedgerError::InsufficientXrp {
                account,
                needed,
                available,
            } => write!(
                f,
                "account {} needs {needed} but only {available} is spendable",
                account.short()
            ),
            LedgerError::TrustLimitExceeded {
                from,
                to,
                capacity,
                requested,
            } => write!(
                f,
                "hop {}->{} can carry {capacity} but {requested} was requested",
                from.short(),
                to.short()
            ),
            LedgerError::SelfPayment => write!(f, "sender and destination are the same account"),
            LedgerError::NonPositiveAmount => write!(f, "amount must be strictly positive"),
            LedgerError::XrpOnTrustLine => write!(f, "XRP cannot be carried on a trust line"),
            LedgerError::NoSuchOffer { owner, offer_seq } => {
                write!(f, "offer {}#{offer_seq} does not exist", owner.short())
            }
            LedgerError::NegativeLimit => write!(f, "trust limits cannot be negative"),
            LedgerError::FeeTooLow { fee, minimum } => {
                write!(f, "fee {fee} is below the base fee {minimum}")
            }
            LedgerError::MultiPathUnsupported { paths } => {
                write!(f, "payment carried {paths} paths but only one is supported")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// Key for pair balances: the unordered `(low, high)` account pair plus
/// currency.
fn pair_key(
    a: AccountId,
    b: AccountId,
    currency: Currency,
) -> ((AccountId, AccountId, Currency), bool) {
    if a <= b {
        ((a, b, currency), false)
    } else {
        ((b, a, currency), true)
    }
}

/// One partition of the ledger's keyed state. Every map is owned by the
/// shard of its *first* key component: account roots by the account, trust
/// lines by the truster, pair balances by the lexicographically-low party,
/// offers by their owner. This keeps each mutation confined to the shards
/// of the accounts it names, which is what makes optimistic parallel
/// execution's conflict analysis tractable (see [`crate::access`]).
#[derive(Debug, Clone, Default)]
struct Shard {
    accounts: FxHashMap<AccountId, AccountRoot>,
    /// Trust limits: `(truster, trustee, currency) -> limit`.
    trust: FxHashMap<(AccountId, AccountId, Currency), Value>,
    /// Pair balances: `(low, high, currency) -> amount high owes low`.
    balances: FxHashMap<(AccountId, AccountId, Currency), Value>,
    /// Live offers, ordered by `(owner, offer_seq)`.
    offers: BTreeMap<(AccountId, u32), Offer>,
}

/// The full mutable ledger state, partitioned into [`SHARD_COUNT`] shards
/// by account owner ([`shard_of`]).
///
/// See the crate-level example for typical usage.
#[derive(Debug, Clone)]
pub struct LedgerState {
    shards: Vec<Shard>,
    /// Fee schedule enforced on `apply`.
    fees: FeeSchedule,
    /// Total XRP burned so far.
    burned: Drops,
    /// Monotone counter bumped by every mutation that can change IOU
    /// routing capacity (trust-line writes, pair-balance adjustments,
    /// account severing). Path caches stamp their entries with this and
    /// treat a mismatch as an invalidation.
    credit_generation: u64,
}

impl Default for LedgerState {
    fn default() -> LedgerState {
        LedgerState {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            fees: FeeSchedule::default(),
            burned: Drops::ZERO,
            credit_generation: 0,
        }
    }
}

/// Global-order iterator over all live offers: a k-way merge of the
/// per-shard `(owner, offer_seq)`-ordered maps, preserving the exact
/// ordering consumers such as the order-book builder rely on.
pub struct Offers<'a> {
    heads:
        Vec<std::iter::Peekable<std::collections::btree_map::Values<'a, (AccountId, u32), Offer>>>,
}

impl<'a> Iterator for Offers<'a> {
    type Item = &'a Offer;

    fn next(&mut self) -> Option<&'a Offer> {
        let mut best: Option<(usize, (AccountId, u32))> = None;
        for (i, head) in self.heads.iter_mut().enumerate() {
            if let Some(offer) = head.peek() {
                let key = (offer.owner, offer.offer_seq);
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        best.and_then(|(i, _)| self.heads[i].next())
    }
}

impl LedgerState {
    #[inline]
    fn shard(&self, id: &AccountId) -> &Shard {
        &self.shards[shard_of(id)]
    }

    #[inline]
    fn shard_mut(&mut self, id: &AccountId) -> &mut Shard {
        &mut self.shards[shard_of(id)]
    }

    #[inline]
    fn account_mut(&mut self, id: &AccountId) -> Option<&mut AccountRoot> {
        self.shards[shard_of(id)].accounts.get_mut(id)
    }

    /// Creates an empty state with the main-net fee schedule.
    pub fn new() -> LedgerState {
        LedgerState::with_fees(FeeSchedule::mainnet())
    }

    /// Creates an empty state with a custom fee schedule.
    pub fn with_fees(fees: FeeSchedule) -> LedgerState {
        LedgerState {
            fees,
            ..LedgerState::default()
        }
    }

    /// The enforced fee schedule.
    pub fn fees(&self) -> &FeeSchedule {
        &self.fees
    }

    /// Total XRP burned by applied transactions.
    pub fn total_burned(&self) -> Drops {
        self.burned
    }

    /// The credit-network generation: bumped by every mutation that can
    /// change IOU routing capacity ([`LedgerState::set_trust`],
    /// [`LedgerState::adjust_pair_balance`] — and therefore
    /// [`LedgerState::ripple_hop`] and IOU payments under
    /// [`LedgerState::apply`] — and [`LedgerState::sever_account`]).
    /// XRP transfers and offer bookkeeping leave it untouched. Routers
    /// stamp cached paths with this value and discard entries whose stamp
    /// no longer matches.
    pub fn credit_generation(&self) -> u64 {
        self.credit_generation
    }

    /// Number of accounts.
    pub fn account_count(&self) -> usize {
        self.shards.iter().map(|s| s.accounts.len()).sum()
    }

    /// Looks up an account root.
    pub fn account(&self, id: &AccountId) -> Option<&AccountRoot> {
        self.shard(id).accounts.get(id)
    }

    /// Iterates over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&AccountId, &AccountRoot)> {
        self.shards.iter().flat_map(|s| s.accounts.iter())
    }

    /// Creates an account funded with `balance` XRP.
    ///
    /// # Panics
    ///
    /// Panics if the account already exists — account creation is driven by
    /// generators which guarantee fresh identifiers.
    pub fn create_account(&mut self, id: AccountId, balance: Drops) {
        let prev = self.shard_mut(&id).accounts.insert(
            id,
            AccountRoot {
                balance,
                sequence: 1,
                owner_count: 0,
            },
        );
        assert!(prev.is_none(), "account {id} already exists");
    }

    /// Declares (or updates) `truster`'s trust towards `trustee`.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::NoSuchAccount`] if either party is missing.
    /// * [`LedgerError::XrpOnTrustLine`] for the native currency.
    /// * [`LedgerError::NegativeLimit`] for negative limits.
    pub fn set_trust(
        &mut self,
        truster: AccountId,
        trustee: AccountId,
        currency: Currency,
        limit: Value,
    ) -> Result<(), LedgerError> {
        if currency.is_xrp() {
            return Err(LedgerError::XrpOnTrustLine);
        }
        if limit.is_negative() {
            return Err(LedgerError::NegativeLimit);
        }
        if self.account(&trustee).is_none() {
            return Err(LedgerError::NoSuchAccount(trustee));
        }
        let key = (truster, trustee, currency);
        // The trust line and the truster's root live in the same shard, so a
        // single mutable shard borrow covers both maps.
        let shard = &mut self.shards[shard_of(&truster)];
        let existed = shard.trust.contains_key(&key);
        let root = shard
            .accounts
            .get_mut(&truster)
            .ok_or(LedgerError::NoSuchAccount(truster))?;
        if limit.is_zero() {
            if shard.trust.remove(&key).is_some() {
                root.owner_count = root.owner_count.saturating_sub(1);
            }
        } else {
            shard.trust.insert(key, limit);
            if !existed {
                root.owner_count += 1;
            }
        }
        self.credit_generation += 1;
        Ok(())
    }

    /// The declared trust limit from `truster` towards `trustee` (zero if no
    /// line exists).
    pub fn trust_limit(&self, truster: AccountId, trustee: AccountId, currency: Currency) -> Value {
        self.shard(&truster)
            .trust
            .get(&(truster, trustee, currency))
            .copied()
            .unwrap_or(Value::ZERO)
    }

    /// Iterates over all non-zero pair balances as
    /// `(low, high, currency, amount-high-owes-low)`.
    pub fn pair_balances(
        &self,
    ) -> impl Iterator<Item = (AccountId, AccountId, Currency, Value)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.balances.iter())
            .map(|(&(low, high, currency), &value)| (low, high, currency, value))
    }

    /// Iterates over all trust lines.
    pub fn trust_lines(&self) -> impl Iterator<Item = TrustLine> + '_ {
        self.shards.iter().flat_map(|s| s.trust.iter()).map(
            |(&(truster, trustee, currency), &limit)| TrustLine {
                truster,
                trustee,
                currency,
                limit,
            },
        )
    }

    /// How much of `counterparty`'s debt `holder` currently holds (negative
    /// if `holder` is the one in debt).
    pub fn iou_balance(
        &self,
        holder: AccountId,
        counterparty: AccountId,
        currency: Currency,
    ) -> Value {
        let (key, flipped) = pair_key(holder, counterparty, currency);
        let raw = self
            .shard(&key.0)
            .balances
            .get(&key)
            .copied()
            .unwrap_or(Value::ZERO);
        if flipped {
            -raw
        } else {
            raw
        }
    }

    /// Net position of `account` in `currency`: sum of all pair balances
    /// (positive = the system owes the account; negative = the account owes).
    pub fn net_position(&self, account: AccountId, currency: Currency) -> Value {
        let mut total = Value::ZERO;
        for shard in &self.shards {
            for (&(low, high, cur), &bal) in &shard.balances {
                if cur != currency {
                    continue;
                }
                if low == account {
                    total = total + bal;
                } else if high == account {
                    total = total - bal;
                }
            }
        }
        total
    }

    /// Capacity of the rippling hop `from -> to`: how much more IOU value
    /// `from` can push to `to` in `currency`, given `to`'s declared trust in
    /// `from` and the current pair balance (existing debt of `to` towards
    /// `from` nets first).
    pub fn hop_capacity(&self, from: AccountId, to: AccountId, currency: Currency) -> Value {
        let limit = self.trust_limit(to, from, currency);
        let held = self.iou_balance(to, from, currency); // `to`'s claim on `from`
                                                         // `to` can accept IOUs until its claim on `from` reaches the limit.
        limit - held
    }

    /// Executes one rippling hop: `from` pays `to` the given IOU `amount`
    /// (i.e. `to`'s claim on `from` grows by `amount`).
    ///
    /// # Errors
    ///
    /// * [`LedgerError::NonPositiveAmount`] for zero/negative amounts.
    /// * [`LedgerError::XrpOnTrustLine`] for the native currency.
    /// * [`LedgerError::NoSuchAccount`] if either party is missing.
    /// * [`LedgerError::TrustLimitExceeded`] if capacity is insufficient.
    pub fn ripple_hop(
        &mut self,
        from: AccountId,
        to: AccountId,
        currency: Currency,
        amount: Value,
    ) -> Result<(), LedgerError> {
        if currency.is_xrp() {
            return Err(LedgerError::XrpOnTrustLine);
        }
        if !amount.is_positive() {
            return Err(LedgerError::NonPositiveAmount);
        }
        if from == to {
            return Err(LedgerError::SelfPayment);
        }
        if self.account(&from).is_none() {
            return Err(LedgerError::NoSuchAccount(from));
        }
        if self.account(&to).is_none() {
            return Err(LedgerError::NoSuchAccount(to));
        }
        let capacity = self.hop_capacity(from, to, currency);
        if amount > capacity {
            return Err(LedgerError::TrustLimitExceeded {
                from,
                to,
                capacity,
                requested: amount,
            });
        }
        self.adjust_pair_balance(to, from, currency, amount);
        Ok(())
    }

    /// Adjusts the pair balance so that `holder`'s claim on `counterparty`
    /// grows by `delta` (no capacity checks — internal primitive also used by
    /// the payment engine after it has validated a full path).
    pub fn adjust_pair_balance(
        &mut self,
        holder: AccountId,
        counterparty: AccountId,
        currency: Currency,
        delta: Value,
    ) {
        let (key, flipped) = pair_key(holder, counterparty, currency);
        let balances = &mut self.shards[shard_of(&key.0)].balances;
        let entry = balances.entry(key).or_insert(Value::ZERO);
        *entry = if flipped {
            *entry - delta
        } else {
            *entry + delta
        };
        if entry.is_zero() {
            balances.remove(&key);
        }
        self.credit_generation += 1;
    }

    /// Transfers XRP between accounts, enforcing the sender's reserve.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::NonPositiveAmount`], [`LedgerError::SelfPayment`].
    /// * [`LedgerError::NoSuchAccount`] if either party is missing.
    /// * [`LedgerError::InsufficientXrp`] if the sender would dip below its
    ///   reserve.
    pub fn xrp_transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: Drops,
    ) -> Result<(), LedgerError> {
        if amount == Drops::ZERO {
            return Err(LedgerError::NonPositiveAmount);
        }
        if from == to {
            return Err(LedgerError::SelfPayment);
        }
        if self.account(&to).is_none() {
            return Err(LedgerError::NoSuchAccount(to));
        }
        let reserve = {
            let root = self
                .account(&from)
                .ok_or(LedgerError::NoSuchAccount(from))?;
            self.fees.reserve_for(root.owner_count)
        };
        let root = self
            .account_mut(&from)
            .ok_or(LedgerError::NoSuchAccount(from))?;
        let spendable = root.balance.checked_sub(reserve).unwrap_or(Drops::ZERO);
        if amount > spendable {
            return Err(LedgerError::InsufficientXrp {
                account: from,
                needed: amount,
                available: spendable,
            });
        }
        root.balance = root.balance.checked_sub(amount).expect("checked above");
        let to_root = self.account_mut(&to).expect("checked above");
        to_root.balance = to_root
            .balance
            .checked_add(amount)
            .expect("XRP supply fits in u64");
        Ok(())
    }

    /// Transfers XRP without enforcing the sender's reserve (the balance
    /// itself must still cover the amount). Used by the payment engine for
    /// maker-to-maker bridge legs and for rollback, where re-checking the
    /// reserve could wedge an undo of funds that just moved.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::NonPositiveAmount`], [`LedgerError::SelfPayment`].
    /// * [`LedgerError::NoSuchAccount`] if either party is missing.
    /// * [`LedgerError::InsufficientXrp`] if the sender's full balance is
    ///   short.
    pub fn xrp_transfer_unchecked(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: Drops,
    ) -> Result<(), LedgerError> {
        if amount == Drops::ZERO {
            return Err(LedgerError::NonPositiveAmount);
        }
        if from == to {
            return Err(LedgerError::SelfPayment);
        }
        if self.account(&to).is_none() {
            return Err(LedgerError::NoSuchAccount(to));
        }
        let root = self
            .account_mut(&from)
            .ok_or(LedgerError::NoSuchAccount(from))?;
        let new_balance = root.balance.checked_sub(amount).ok_or({
            LedgerError::InsufficientXrp {
                account: from,
                needed: amount,
                available: root.balance,
            }
        })?;
        root.balance = new_balance;
        let to_root = self.account_mut(&to).expect("checked above");
        to_root.balance = to_root
            .balance
            .checked_add(amount)
            .expect("XRP supply fits in u64");
        Ok(())
    }

    /// Places an offer owned by `owner` with the creating sequence number.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NoSuchAccount`] if the owner is missing.
    pub fn place_offer(
        &mut self,
        owner: AccountId,
        offer_seq: u32,
        taker_gets: Amount,
        taker_pays: Amount,
    ) -> Result<(), LedgerError> {
        let shard = &mut self.shards[shard_of(&owner)];
        let root = shard
            .accounts
            .get_mut(&owner)
            .ok_or(LedgerError::NoSuchAccount(owner))?;
        root.owner_count += 1;
        shard.offers.insert(
            (owner, offer_seq),
            Offer {
                owner,
                offer_seq,
                taker_gets,
                taker_pays,
            },
        );
        Ok(())
    }

    /// Removes an offer.
    ///
    /// # Errors
    ///
    /// [`LedgerError::NoSuchOffer`] if absent.
    pub fn cancel_offer(&mut self, owner: AccountId, offer_seq: u32) -> Result<Offer, LedgerError> {
        let shard = &mut self.shards[shard_of(&owner)];
        let offer = shard
            .offers
            .remove(&(owner, offer_seq))
            .ok_or(LedgerError::NoSuchOffer { owner, offer_seq })?;
        if let Some(root) = shard.accounts.get_mut(&owner) {
            root.owner_count = root.owner_count.saturating_sub(1);
        }
        Ok(offer)
    }

    /// Replaces the remaining amounts of a live offer (used by the matching
    /// engine for partial fills).
    ///
    /// # Errors
    ///
    /// [`LedgerError::NoSuchOffer`] if absent.
    pub fn update_offer(
        &mut self,
        owner: AccountId,
        offer_seq: u32,
        taker_gets: Amount,
        taker_pays: Amount,
    ) -> Result<(), LedgerError> {
        let offer = self
            .shard_mut(&owner)
            .offers
            .get_mut(&(owner, offer_seq))
            .ok_or(LedgerError::NoSuchOffer { owner, offer_seq })?;
        offer.taker_gets = taker_gets;
        offer.taker_pays = taker_pays;
        Ok(())
    }

    /// Looks up a live offer.
    pub fn offer(&self, owner: AccountId, offer_seq: u32) -> Option<&Offer> {
        self.shard(&owner).offers.get(&(owner, offer_seq))
    }

    /// Iterates over all live offers in global `(owner, offer_seq)` order.
    pub fn offers(&self) -> Offers<'_> {
        Offers {
            heads: self
                .shards
                .iter()
                .map(|s| s.offers.values().peekable())
                .collect(),
        }
    }

    /// Number of live offers.
    pub fn offer_count(&self) -> usize {
        self.shards.iter().map(|s| s.offers.len()).sum()
    }

    /// Removes **all** offers from the ledger — the paper's Table II
    /// experiment: "we remove them [Market Makers] and the exchange orders
    /// from the system and replay the extracted payments on the modified
    /// trust network".
    pub fn strip_all_offers(&mut self) -> usize {
        let mut n = 0;
        for shard in &mut self.shards {
            n += shard.offers.len();
            let owners: Vec<AccountId> = shard.offers.values().map(|o| o.owner).collect();
            shard.offers.clear();
            // Offers live in their owner's shard, so the root is local.
            for owner in owners {
                if let Some(root) = shard.accounts.get_mut(&owner) {
                    root.owner_count = root.owner_count.saturating_sub(1);
                }
            }
        }
        n
    }

    /// Disconnects an account from the credit network: removes every trust
    /// line it declared or received and every pair balance it participates
    /// in. The account itself and its XRP balance survive.
    ///
    /// This models the paper's Table II attack analysis ("by taking over or
    /// thwarting the functionality of a very small number of users […] an
    /// attacker could control or block" traffic): severed accounts can no
    /// longer forward IOU payments.
    pub fn sever_account(&mut self, account: AccountId) {
        let removed_trust: Vec<(AccountId, AccountId, Currency)> = self
            .shards
            .iter()
            .flat_map(|s| s.trust.keys())
            .filter(|&&(truster, trustee, _)| truster == account || trustee == account)
            .copied()
            .collect();
        for key in removed_trust {
            self.shards[shard_of(&key.0)].trust.remove(&key);
            if let Some(root) = self.account_mut(&key.0) {
                root.owner_count = root.owner_count.saturating_sub(1);
            }
        }
        let removed_balances: Vec<(AccountId, AccountId, Currency)> = self
            .shards
            .iter()
            .flat_map(|s| s.balances.keys())
            .filter(|&&(low, high, _)| low == account || high == account)
            .copied()
            .collect();
        for key in removed_balances {
            self.shards[shard_of(&key.0)].balances.remove(&key);
        }
        self.credit_generation += 1;
    }

    /// Validates and applies a signed transaction: signature, sequence and
    /// fee checks, then the kind-specific effect. Multi-hop payments must
    /// carry explicit paths; each path hop is executed with capacity checks
    /// (all-or-nothing: the first failing hop aborts the whole payment and
    /// rolls back nothing because hops are validated before any is applied).
    ///
    /// # Errors
    ///
    /// Any [`LedgerError`] from validation; on error the state is unchanged.
    pub fn apply(&mut self, tx: &Transaction) -> Result<TxResult, LedgerError> {
        let root = self
            .account(&tx.account)
            .ok_or(LedgerError::NoSuchAccount(tx.account))?;
        if root.sequence != tx.sequence {
            return Err(LedgerError::BadSequence {
                expected: root.sequence,
                got: tx.sequence,
            });
        }
        if tx.fee < self.fees.base_fee {
            return Err(LedgerError::FeeTooLow {
                fee: tx.fee,
                minimum: self.fees.base_fee,
            });
        }
        let reserve = self.fees.reserve_for(root.owner_count);
        let spendable = root.balance.checked_sub(reserve).unwrap_or(Drops::ZERO);
        if tx.fee > spendable {
            // The fee itself is what the account cannot cover once the
            // reserve is locked — report that, not the base fee.
            return Err(LedgerError::InsufficientXrp {
                account: tx.account,
                needed: tx.fee,
                available: spendable,
            });
        }

        // Validate + apply the kind-specific effect first (on a clone for
        // multi-hop payments, cheap single mutations validated inline).
        match &tx.kind {
            TxKind::Payment {
                destination,
                amount,
                send_max: _,
                paths,
            } => match amount {
                Amount::Xrp(drops) => {
                    self.charge_fee(tx.account, tx.fee);
                    if let Err(e) = self.xrp_transfer(tx.account, *destination, *drops) {
                        self.refund_fee(tx.account, tx.fee);
                        return Err(e);
                    }
                }
                Amount::Iou(iou) => {
                    // The same gate order as `ripple_hop`, hoisted here so a
                    // malformed payment is rejected before any fee or hop
                    // accounting: currency, sign, self-payment, existence of
                    // every account along the chain, then capacity.
                    if iou.currency.is_xrp() {
                        return Err(LedgerError::XrpOnTrustLine);
                    }
                    if !iou.value.is_positive() {
                        return Err(LedgerError::NonPositiveAmount);
                    }
                    if tx.account == *destination {
                        return Err(LedgerError::SelfPayment);
                    }
                    // Only single-path same-currency payments are executed
                    // here; richer routing lives in the payment engine crate.
                    // Multi-path payments are rejected outright rather than
                    // silently dropping every path after the first.
                    let hops: &[AccountId] = match paths.as_slice() {
                        [] => &[],
                        [only] => only.as_slice(),
                        more => {
                            return Err(LedgerError::MultiPathUnsupported { paths: more.len() })
                        }
                    };
                    let mut chain = Vec::with_capacity(hops.len() + 2);
                    chain.push(tx.account);
                    chain.extend_from_slice(hops);
                    chain.push(*destination);
                    for stop in &chain[1..] {
                        if self.account(stop).is_none() {
                            return Err(LedgerError::NoSuchAccount(*stop));
                        }
                    }
                    for pair in chain.windows(2) {
                        let capacity = self.hop_capacity(pair[0], pair[1], iou.currency);
                        if iou.value > capacity {
                            return Err(LedgerError::TrustLimitExceeded {
                                from: pair[0],
                                to: pair[1],
                                capacity,
                                requested: iou.value,
                            });
                        }
                    }
                    self.charge_fee(tx.account, tx.fee);
                    for pair in chain.windows(2) {
                        self.adjust_pair_balance(pair[1], pair[0], iou.currency, iou.value);
                    }
                }
            },
            TxKind::TrustSet {
                trustee,
                currency,
                limit,
            } => {
                self.set_trust(tx.account, *trustee, *currency, *limit)?;
                self.charge_fee(tx.account, tx.fee);
            }
            TxKind::OfferCreate {
                taker_gets,
                taker_pays,
            } => {
                self.place_offer(tx.account, tx.sequence, *taker_gets, *taker_pays)?;
                self.charge_fee(tx.account, tx.fee);
            }
            TxKind::OfferCancel { offer_seq } => {
                self.cancel_offer(tx.account, *offer_seq)?;
                self.charge_fee(tx.account, tx.fee);
            }
            TxKind::AccountSet { .. } => {
                self.charge_fee(tx.account, tx.fee);
            }
        }

        let root = self.account_mut(&tx.account).expect("checked above");
        root.sequence += 1;
        Ok(TxResult::Applied)
    }

    /// Like [`LedgerState::apply`] but records the transaction's static
    /// access footprint ([`crate::access::tx_access`]) into `trace` before
    /// applying — the plumbing the parallel executor uses to build
    /// per-payment read/write sets.
    pub fn apply_traced(
        &mut self,
        tx: &Transaction,
        trace: &mut crate::access::AccessSet,
    ) -> Result<TxResult, LedgerError> {
        crate::access::tx_access_into(tx, trace);
        self.apply(tx)
    }

    fn charge_fee(&mut self, account: AccountId, fee: Drops) {
        let root = self.account_mut(&account).expect("caller validated");
        root.balance = root.balance.checked_sub(fee).expect("caller validated fee");
        self.burned = self.burned.checked_add(fee).expect("burn fits u64");
    }

    fn refund_fee(&mut self, account: AccountId, fee: Drops) {
        let root = self.account_mut(&account).expect("caller validated");
        root.balance = root.balance.checked_add(fee).expect("refund fits");
        self.burned = Drops::new(self.burned.as_drops() - fee.as_drops());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn funded_state(n: u8) -> LedgerState {
        let mut s = LedgerState::new();
        for i in 1..=n {
            s.create_account(acct(i), Drops::from_xrp(1_000));
        }
        s
    }

    #[test]
    fn xrp_transfer_moves_balance() {
        let mut s = funded_state(2);
        s.xrp_transfer(acct(1), acct(2), Drops::from_xrp(10))
            .unwrap();
        assert_eq!(s.account(&acct(1)).unwrap().balance, Drops::from_xrp(990));
        assert_eq!(s.account(&acct(2)).unwrap().balance, Drops::from_xrp(1_010));
    }

    #[test]
    fn xrp_transfer_respects_reserve() {
        let mut s = funded_state(2);
        // 1000 XRP balance, 20 XRP base reserve: at most 980 spendable.
        let err = s
            .xrp_transfer(acct(1), acct(2), Drops::from_xrp(990))
            .unwrap_err();
        assert!(matches!(err, LedgerError::InsufficientXrp { .. }));
        s.xrp_transfer(acct(1), acct(2), Drops::from_xrp(980))
            .unwrap();
    }

    #[test]
    fn trust_is_unidirectional() {
        let mut s = funded_state(2);
        s.set_trust(acct(1), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        // Paper: trust from Alice(1) to Bob(2) allows payments Bob->Alice.
        assert_eq!(
            s.hop_capacity(acct(2), acct(1), Currency::USD),
            "10".parse().unwrap()
        );
        assert_eq!(s.hop_capacity(acct(1), acct(2), Currency::USD), Value::ZERO);
    }

    #[test]
    fn ripple_hop_moves_debt_and_respects_limit() {
        let mut s = funded_state(2);
        s.set_trust(acct(1), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.ripple_hop(acct(2), acct(1), Currency::USD, "7".parse().unwrap())
            .unwrap();
        assert_eq!(
            s.iou_balance(acct(1), acct(2), Currency::USD),
            "7".parse().unwrap()
        );
        let err = s
            .ripple_hop(acct(2), acct(1), Currency::USD, "4".parse().unwrap())
            .unwrap_err();
        assert!(matches!(err, LedgerError::TrustLimitExceeded { .. }));
    }

    #[test]
    fn netting_extends_capacity() {
        let mut s = funded_state(2);
        s.set_trust(acct(1), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.set_trust(acct(2), acct(1), Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.ripple_hop(acct(2), acct(1), Currency::USD, "10".parse().unwrap())
            .unwrap();
        // Account 1 now holds 10 of 2's IOUs; paying back nets first, so
        // capacity 1->2 is 10 (netting) + 10 (limit) = 20.
        assert_eq!(
            s.hop_capacity(acct(1), acct(2), Currency::USD),
            "20".parse().unwrap()
        );
    }

    #[test]
    fn pair_balance_is_antisymmetric() {
        let mut s = funded_state(2);
        s.set_trust(acct(1), acct(2), Currency::EUR, "5".parse().unwrap())
            .unwrap();
        s.ripple_hop(acct(2), acct(1), Currency::EUR, "3".parse().unwrap())
            .unwrap();
        assert_eq!(
            s.iou_balance(acct(1), acct(2), Currency::EUR),
            -s.iou_balance(acct(2), acct(1), Currency::EUR)
        );
    }

    #[test]
    fn paper_figure1_three_party_chain() {
        // A trusts B for 10, B trusts C for 20 => C can pay A up to 10 via B.
        let mut s = funded_state(3);
        let (a, b, c) = (acct(1), acct(2), acct(3));
        s.set_trust(a, b, Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.set_trust(b, c, Currency::USD, "20".parse().unwrap())
            .unwrap();
        s.ripple_hop(c, b, Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.ripple_hop(b, a, Currency::USD, "10".parse().unwrap())
            .unwrap();
        assert_eq!(s.iou_balance(a, b, Currency::USD), "10".parse().unwrap());
        assert_eq!(s.iou_balance(b, c, Currency::USD), "10".parse().unwrap());
        // B's net position is zero: owed 10 by C, owes 10 to A.
        assert_eq!(s.net_position(b, Currency::USD), Value::ZERO);
        assert_eq!(s.net_position(a, Currency::USD), "10".parse().unwrap());
        assert_eq!(s.net_position(c, Currency::USD), "-10".parse().unwrap());
    }

    #[test]
    fn set_trust_tracks_owner_count() {
        let mut s = funded_state(2);
        s.set_trust(acct(1), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        assert_eq!(s.account(&acct(1)).unwrap().owner_count, 1);
        s.set_trust(acct(1), acct(2), Currency::USD, "20".parse().unwrap())
            .unwrap();
        assert_eq!(s.account(&acct(1)).unwrap().owner_count, 1);
        s.set_trust(acct(1), acct(2), Currency::USD, Value::ZERO)
            .unwrap();
        assert_eq!(s.account(&acct(1)).unwrap().owner_count, 0);
    }

    #[test]
    fn offers_lifecycle() {
        let mut s = funded_state(1);
        s.place_offer(
            acct(1),
            5,
            Amount::Xrp(Drops::from_xrp(10)),
            Amount::Iou(crate::amount::IouAmount::new(
                "5".parse().unwrap(),
                Currency::USD,
                acct(1),
            )),
        )
        .unwrap();
        assert_eq!(s.offer_count(), 1);
        assert!(s.offer(acct(1), 5).is_some());
        s.cancel_offer(acct(1), 5).unwrap();
        assert_eq!(s.offer_count(), 0);
        assert!(matches!(
            s.cancel_offer(acct(1), 5),
            Err(LedgerError::NoSuchOffer { .. })
        ));
    }

    #[test]
    fn strip_all_offers_clears_book() {
        let mut s = funded_state(2);
        for seq in 0..4 {
            s.place_offer(
                acct(1),
                seq,
                Amount::Xrp(Drops::from_xrp(1)),
                Amount::Xrp(Drops::from_xrp(1)),
            )
            .unwrap();
        }
        assert_eq!(s.strip_all_offers(), 4);
        assert_eq!(s.offer_count(), 0);
    }

    #[test]
    fn apply_burns_fee_and_bumps_sequence() {
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"payer");
        let payer = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(payer, Drops::from_xrp(100));
        s.create_account(acct(9), Drops::from_xrp(100));
        let tx = Transaction::build(
            payer,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: acct(9),
                amount: Amount::Xrp(Drops::from_xrp(1)),
                send_max: None,
                paths: Vec::new(),
            },
        )
        .signed(&keys);
        s.apply(&tx).unwrap();
        assert_eq!(s.total_burned(), Drops::new(10));
        assert_eq!(s.account(&payer).unwrap().sequence, 2);
        assert_eq!(
            s.account(&payer).unwrap().balance,
            Drops::new(100_000_000 - 1_000_000 - 10)
        );
        // Replaying the same sequence fails.
        assert!(matches!(s.apply(&tx), Err(LedgerError::BadSequence { .. })));
    }

    #[test]
    fn apply_trustset_and_offers_lifecycle() {
        use crate::amount::IouAmount;
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"maker");
        let maker = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(maker, Drops::from_xrp(100));
        s.create_account(acct(7), Drops::from_xrp(100));

        // TrustSet through apply.
        let trust = Transaction::build(
            maker,
            1,
            Drops::new(10),
            TxKind::TrustSet {
                trustee: acct(7),
                currency: Currency::EUR,
                limit: "25".parse().unwrap(),
            },
        )
        .signed(&keys);
        s.apply(&trust).unwrap();
        assert_eq!(
            s.trust_limit(maker, acct(7), Currency::EUR),
            "25".parse().unwrap()
        );
        assert_eq!(s.account(&maker).unwrap().owner_count, 1);

        // OfferCreate through apply: identity is the creating sequence.
        let create = Transaction::build(
            maker,
            2,
            Drops::new(10),
            TxKind::OfferCreate {
                taker_gets: IouAmount::new("10".parse().unwrap(), Currency::EUR, maker).into(),
                taker_pays: IouAmount::new("11".parse().unwrap(), Currency::USD, maker).into(),
            },
        )
        .signed(&keys);
        s.apply(&create).unwrap();
        assert!(s.offer(maker, 2).is_some());
        assert_eq!(s.account(&maker).unwrap().owner_count, 2);

        // OfferCancel through apply.
        let cancel = Transaction::build(
            maker,
            3,
            Drops::new(10),
            TxKind::OfferCancel { offer_seq: 2 },
        )
        .signed(&keys);
        s.apply(&cancel).unwrap();
        assert!(s.offer(maker, 2).is_none());
        assert_eq!(s.account(&maker).unwrap().owner_count, 1);
        assert_eq!(s.total_burned(), Drops::new(30));
    }

    #[test]
    fn apply_account_set_only_burns_and_bumps() {
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"flagger");
        let who = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(who, Drops::from_xrp(100));
        let tx = Transaction::build(who, 1, Drops::new(12), TxKind::AccountSet { flags: 0xFF })
            .signed(&keys);
        s.apply(&tx).unwrap();
        assert_eq!(s.account(&who).unwrap().sequence, 2);
        assert_eq!(s.total_burned(), Drops::new(12));
    }

    #[test]
    fn sever_account_disconnects_but_preserves_xrp() {
        let mut s = funded_state(3);
        s.set_trust(acct(1), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.set_trust(acct(3), acct(2), Currency::USD, "10".parse().unwrap())
            .unwrap();
        s.ripple_hop(acct(2), acct(1), Currency::USD, "5".parse().unwrap())
            .unwrap();
        let xrp_before = s.account(&acct(2)).unwrap().balance;
        s.sever_account(acct(2));
        assert_eq!(s.trust_limit(acct(1), acct(2), Currency::USD), Value::ZERO);
        assert_eq!(s.trust_limit(acct(3), acct(2), Currency::USD), Value::ZERO);
        assert_eq!(s.iou_balance(acct(1), acct(2), Currency::USD), Value::ZERO);
        assert_eq!(s.account(&acct(2)).unwrap().balance, xrp_before);
        assert_eq!(s.hop_capacity(acct(2), acct(1), Currency::USD), Value::ZERO);
    }

    #[test]
    fn apply_rejects_unknown_sender() {
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"ghost");
        let ghost = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        let tx = Transaction::build(ghost, 1, Drops::new(10), TxKind::AccountSet { flags: 0 })
            .signed(&keys);
        assert!(matches!(s.apply(&tx), Err(LedgerError::NoSuchAccount(_))));
    }

    #[test]
    fn apply_iou_payment_over_explicit_path() {
        use crate::amount::IouAmount;
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"sender");
        let sender = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(sender, Drops::from_xrp(100));
        s.create_account(acct(2), Drops::from_xrp(100));
        s.create_account(acct(3), Drops::from_xrp(100));
        // Path sender -> 2 -> 3 requires 2 trusts sender and 3 trusts 2.
        s.set_trust(acct(2), sender, Currency::USD, "50".parse().unwrap())
            .unwrap();
        s.set_trust(acct(3), acct(2), Currency::USD, "50".parse().unwrap())
            .unwrap();
        let tx = Transaction::build(
            sender,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: acct(3),
                amount: Amount::Iou(IouAmount::new(
                    "20".parse().unwrap(),
                    Currency::USD,
                    acct(2),
                )),
                send_max: None,
                paths: vec![vec![acct(2)]],
            },
        )
        .signed(&keys);
        s.apply(&tx).unwrap();
        assert_eq!(
            s.iou_balance(acct(3), acct(2), Currency::USD),
            "20".parse().unwrap()
        );
        assert_eq!(
            s.iou_balance(acct(2), sender, Currency::USD),
            "20".parse().unwrap()
        );
    }

    #[test]
    fn apply_rejects_multi_path_payments() {
        use crate::amount::IouAmount;
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"multipath");
        let sender = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(sender, Drops::from_xrp(100));
        s.create_account(acct(2), Drops::from_xrp(100));
        s.create_account(acct(3), Drops::from_xrp(100));
        s.create_account(acct(4), Drops::from_xrp(100));
        // Generous trust on both candidate routes: the old code would have
        // silently executed only the first path and reported success.
        for (truster, trustee) in [(acct(2), sender), (acct(4), sender), (acct(3), acct(2))] {
            s.set_trust(truster, trustee, Currency::USD, "100".parse().unwrap())
                .unwrap();
        }
        s.set_trust(acct(3), acct(4), Currency::USD, "100".parse().unwrap())
            .unwrap();
        let tx = Transaction::build(
            sender,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: acct(3),
                amount: Amount::Iou(IouAmount::new("5".parse().unwrap(), Currency::USD, acct(2))),
                send_max: None,
                paths: vec![vec![acct(2)], vec![acct(4)]],
            },
        )
        .signed(&keys);
        let err = s.apply(&tx).unwrap_err();
        assert_eq!(err, LedgerError::MultiPathUnsupported { paths: 2 });
        // Rejected before any effect: no fee burned, no debt moved.
        assert_eq!(s.total_burned(), Drops::ZERO);
        assert_eq!(s.account(&sender).unwrap().sequence, 1);
        assert_eq!(s.iou_balance(acct(2), sender, Currency::USD), Value::ZERO);
        assert_eq!(s.iou_balance(acct(4), sender, Currency::USD), Value::ZERO);
    }

    #[test]
    fn apply_fee_gate_distinguishes_too_low_from_reserve_locked() {
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"feegate");
        let who = AccountId::from_public_key(&keys.public_key());

        // Arm 1: fee below the base fee is FeeTooLow, whatever the balance.
        let mut s = LedgerState::new();
        s.create_account(who, Drops::from_xrp(100));
        let base_fee = s.fees().base_fee;
        let cheap = Transaction::build(
            who,
            1,
            Drops::new(base_fee.as_drops() - 1),
            TxKind::AccountSet { flags: 0 },
        )
        .signed(&keys);
        assert_eq!(
            s.apply(&cheap).unwrap_err(),
            LedgerError::FeeTooLow {
                fee: Drops::new(base_fee.as_drops() - 1),
                minimum: base_fee,
            }
        );

        // Arm 2: a valid fee the reserve-locked balance cannot cover must
        // report the actual fee as `needed`, not the base fee.
        let reserve = s.fees().reserve_for(0);
        let mut poor = LedgerState::new();
        poor.create_account(who, Drops::new(reserve.as_drops() + 5));
        let fee = Drops::new(base_fee.as_drops().max(6));
        let tx = Transaction::build(who, 1, fee, TxKind::AccountSet { flags: 0 }).signed(&keys);
        assert_eq!(
            poor.apply(&tx).unwrap_err(),
            LedgerError::InsufficientXrp {
                account: who,
                needed: fee,
                available: Drops::new(5),
            }
        );
    }

    #[test]
    fn offers_iterate_in_global_owner_seq_order_across_shards() {
        let mut s = LedgerState::new();
        // Owners spread over distinct shards (first byte selects the shard),
        // inserted in shuffled order.
        let owners = [acct(0x31), acct(0x05), acct(0xF2), acct(0x18), acct(0x05)];
        let seqs = [7u32, 9, 1, 4, 2];
        for (owner, seq) in owners.iter().zip(seqs) {
            if s.account(owner).is_none() {
                s.create_account(*owner, Drops::from_xrp(100));
            }
            s.place_offer(
                *owner,
                seq,
                Amount::Xrp(Drops::from_xrp(1)),
                Amount::Xrp(Drops::from_xrp(1)),
            )
            .unwrap();
        }
        let order: Vec<(AccountId, u32)> = s.offers().map(|o| (o.owner, o.offer_seq)).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 5);
        assert_eq!(s.offer_count(), 5);
    }

    #[test]
    fn apply_traced_records_footprint_and_matches_apply() {
        use crate::access::{tx_access, AccessSet};
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"traced");
        let who = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(who, Drops::from_xrp(100));
        s.create_account(acct(9), Drops::from_xrp(100));
        let tx = Transaction::build(
            who,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: acct(9),
                amount: Amount::Xrp(Drops::from_xrp(1)),
                send_max: None,
                paths: Vec::new(),
            },
        )
        .signed(&keys);
        let mut trace = AccessSet::new();
        s.apply_traced(&tx, &mut trace).unwrap();
        let expected = tx_access(&tx);
        assert_eq!(trace.len(), expected.len());
        assert!(trace.intersects(&expected));
        assert_eq!(s.account(&acct(9)).unwrap().balance, Drops::from_xrp(101));
    }

    #[test]
    fn failed_payment_leaves_state_unchanged() {
        use crate::amount::IouAmount;
        use crate::tx::{Transaction, TxKind};
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"sender2");
        let sender = AccountId::from_public_key(&keys.public_key());
        let mut s = LedgerState::new();
        s.create_account(sender, Drops::from_xrp(100));
        s.create_account(acct(2), Drops::from_xrp(100));
        let tx = Transaction::build(
            sender,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: acct(2),
                amount: Amount::Iou(IouAmount::new("20".parse().unwrap(), Currency::USD, sender)),
                send_max: None,
                paths: Vec::new(),
            },
        )
        .signed(&keys);
        // No trust line: rejected, no fee burned, sequence unchanged.
        assert!(s.apply(&tx).is_err());
        assert_eq!(s.total_burned(), Drops::ZERO);
        assert_eq!(s.account(&sender).unwrap().sequence, 1);
        assert_eq!(s.account(&sender).unwrap().balance, Drops::from_xrp(100));
    }
}
