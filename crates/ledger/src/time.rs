//! Ledger timestamps.
//!
//! The XRP Ledger counts seconds since the *Ripple epoch*, 2000-01-01T00:00:00
//! UTC. The paper's de-anonymization study coarsens timestamps from seconds to
//! minutes, hours and days (§V.A), so [`RippleTime`] provides exact truncation
//! helpers plus a civil-calendar rendering used in reports.

use serde::{Deserialize, Serialize};

/// Seconds in a minute/hour/day, used by the resolution-coarsening helpers.
pub const SECONDS_PER_MINUTE: u64 = 60;
/// Seconds per hour.
pub const SECONDS_PER_HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Days between 1970-01-01 (Unix epoch) and 2000-01-01 (Ripple epoch).
const RIPPLE_EPOCH_DAYS_FROM_UNIX: i64 = 10_957;

/// A timestamp in seconds since the Ripple epoch (2000-01-01 UTC).
///
/// # Examples
///
/// ```
/// use ripple_ledger::RippleTime;
///
/// let t = RippleTime::from_ymd_hms(2015, 8, 24, 15, 41, 3);
/// assert_eq!(t.to_string(), "2015-08-24 15:41:03");
/// assert_eq!(t.truncate_to_day().to_string(), "2015-08-24 00:00:00");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RippleTime(u64);

impl RippleTime {
    /// The Ripple epoch itself (2000-01-01T00:00:00 UTC).
    pub const EPOCH: RippleTime = RippleTime(0);

    /// Wraps a raw seconds-since-epoch count.
    pub const fn from_seconds(secs: u64) -> Self {
        RippleTime(secs)
    }

    /// Returns the seconds since the Ripple epoch.
    pub const fn seconds(self) -> u64 {
        self.0
    }

    /// Builds a timestamp from a UTC civil date and time.
    ///
    /// # Panics
    ///
    /// Panics if the date is before 2000-01-01 or the fields are out of range
    /// (month 1–12, day valid for month, hour < 24, minute/second < 60).
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(hour < 24 && minute < 60 && second < 60, "time out of range");
        let days = days_from_civil(year, month, day) - RIPPLE_EPOCH_DAYS_FROM_UNIX;
        assert!(days >= 0, "date precedes the Ripple epoch");
        RippleTime(
            days as u64 * SECONDS_PER_DAY
                + hour as u64 * SECONDS_PER_HOUR
                + minute as u64 * SECONDS_PER_MINUTE
                + second as u64,
        )
    }

    /// Advances the timestamp by `secs` seconds.
    pub fn plus_seconds(self, secs: u64) -> Self {
        RippleTime(self.0 + secs)
    }

    /// Truncates to the start of the minute.
    pub fn truncate_to_minute(self) -> Self {
        RippleTime(self.0 - self.0 % SECONDS_PER_MINUTE)
    }

    /// Truncates to the start of the hour.
    pub fn truncate_to_hour(self) -> Self {
        RippleTime(self.0 - self.0 % SECONDS_PER_HOUR)
    }

    /// Truncates to the start of the (UTC) day.
    pub fn truncate_to_day(self) -> Self {
        RippleTime(self.0 - self.0 % SECONDS_PER_DAY)
    }

    /// Decomposes into `(year, month, day, hour, minute, second)` UTC.
    pub fn to_civil(self) -> (i64, u32, u32, u32, u32, u32) {
        let days = (self.0 / SECONDS_PER_DAY) as i64 + RIPPLE_EPOCH_DAYS_FROM_UNIX;
        let rem = self.0 % SECONDS_PER_DAY;
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (rem / SECONDS_PER_HOUR) as u32,
            (rem % SECONDS_PER_HOUR / SECONDS_PER_MINUTE) as u32,
            (rem % SECONDS_PER_MINUTE) as u32,
        )
    }
}

impl std::fmt::Display for RippleTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date from days since the Unix epoch (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_renders_as_y2k() {
        assert_eq!(RippleTime::EPOCH.to_string(), "2000-01-01 00:00:00");
    }

    #[test]
    fn paper_example_truncation() {
        // "the worst resolution of the timestamp will modify the value
        //  2015-08-24 15:41:03 to 2015-08-24 00:00:00" (paper §V.A).
        let t = RippleTime::from_ymd_hms(2015, 8, 24, 15, 41, 3);
        assert_eq!(t.truncate_to_day().to_string(), "2015-08-24 00:00:00");
        assert_eq!(t.truncate_to_hour().to_string(), "2015-08-24 15:00:00");
        assert_eq!(t.truncate_to_minute().to_string(), "2015-08-24 15:41:00");
    }

    #[test]
    fn leap_year_handling() {
        let t = RippleTime::from_ymd_hms(2016, 2, 29, 12, 0, 0);
        assert_eq!(t.to_civil(), (2016, 2, 29, 12, 0, 0));
        let next = t.plus_seconds(12 * SECONDS_PER_HOUR);
        assert_eq!(next.to_civil().2, 1);
        assert_eq!(next.to_civil().1, 3);
    }

    #[test]
    fn genesis_period_covers_paper_window() {
        // Paper window: January 2013 (genesis) – September 2015.
        let genesis = RippleTime::from_ymd_hms(2013, 1, 1, 0, 0, 0);
        let end = RippleTime::from_ymd_hms(2015, 9, 30, 23, 59, 59);
        assert!(genesis < end);
        let span_days = (end.seconds() - genesis.seconds()) / SECONDS_PER_DAY;
        assert_eq!(span_days, 1002);
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(RippleTime::from_seconds(5) < RippleTime::from_seconds(6));
    }

    proptest! {
        #[test]
        fn civil_round_trip(secs in 0u64..2_000_000_000) {
            let t = RippleTime::from_seconds(secs);
            let (y, mo, d, h, mi, s) = t.to_civil();
            prop_assert_eq!(RippleTime::from_ymd_hms(y, mo, d, h, mi, s), t);
        }

        #[test]
        fn truncation_is_idempotent_and_monotone(secs in 0u64..2_000_000_000) {
            let t = RippleTime::from_seconds(secs);
            for f in [RippleTime::truncate_to_minute, RippleTime::truncate_to_hour, RippleTime::truncate_to_day] {
                let once = f(t);
                prop_assert_eq!(f(once), once);
                prop_assert!(once <= t);
            }
            prop_assert!(t.truncate_to_day() <= t.truncate_to_hour());
            prop_assert!(t.truncate_to_hour() <= t.truncate_to_minute());
        }
    }
}
