//! Access-set plumbing for parallel execution.
//!
//! The parallel executor in `ripple-synth` runs payments optimistically
//! against a frozen snapshot of the ledger and detects conflicts by
//! intersecting the sets of state keys each payment touched. This module
//! defines the key vocabulary — one [`AccessKey`] per independently
//! lockable piece of ledger state — together with [`AccessSet`], a small
//! set wrapper tuned for the intersection test, and the static shard
//! mapping used by [`LedgerState`](crate::state::LedgerState)'s internal
//! partitioning.

use crate::amount::Amount;
use crate::currency::Currency;
use crate::tx::{Transaction, TxKind};
use ripple_crypto::{AccountId, FxHashSet};

/// Number of internal state shards. Power of two so the shard index is a
/// single mask of the account's first byte.
pub const SHARD_COUNT: usize = 16;

/// Maps an account to the shard that owns its root, declared trust lines,
/// offers, and (as the lexicographically-low party) pair balances.
#[inline]
pub fn shard_of(id: &AccountId) -> usize {
    (id.as_bytes()[0] as usize) & (SHARD_COUNT - 1)
}

/// One independently trackable piece of ledger state.
///
/// `Trust` is keyed by `(truster, trustee, currency)` exactly as the trust
/// map is; `Pair` is always stored normalized with the lexicographically
/// lower account first (use [`AccessKey::pair`] to build one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKey {
    /// An account root (XRP balance, sequence, owner count).
    Account(AccountId),
    /// A declared trust limit `(truster, trustee, currency)`.
    Trust(AccountId, AccountId, Currency),
    /// A normalized pair balance `(low, high, currency)`.
    Pair(AccountId, AccountId, Currency),
    /// A resting offer `(owner, offer_seq)`.
    Offer(AccountId, u32),
}

impl AccessKey {
    /// Builds a normalized pair-balance key from an unordered account pair.
    #[inline]
    pub fn pair(a: AccountId, b: AccountId, currency: Currency) -> AccessKey {
        if a <= b {
            AccessKey::Pair(a, b, currency)
        } else {
            AccessKey::Pair(b, a, currency)
        }
    }

    /// The shard that owns this key's state.
    pub fn shard(&self) -> usize {
        match self {
            AccessKey::Account(a) => shard_of(a),
            AccessKey::Trust(truster, _, _) => shard_of(truster),
            AccessKey::Pair(low, _, _) => shard_of(low),
            AccessKey::Offer(owner, _) => shard_of(owner),
        }
    }
}

/// A set of [`AccessKey`]s — the read/write footprint of one unit of work.
#[derive(Debug, Clone, Default)]
pub struct AccessSet {
    keys: FxHashSet<AccessKey>,
}

impl AccessSet {
    /// Creates an empty set.
    pub fn new() -> AccessSet {
        AccessSet::default()
    }

    /// Inserts a key; returns whether it was new.
    pub fn insert(&mut self, key: AccessKey) -> bool {
        self.keys.insert(key)
    }

    /// Membership test.
    pub fn contains(&self, key: &AccessKey) -> bool {
        self.keys.contains(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over the keys in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &AccessKey> {
        self.keys.iter()
    }

    /// Removes all keys.
    pub fn clear(&mut self) {
        self.keys.clear()
    }

    /// Adds every key of `other`.
    pub fn extend_from(&mut self, other: &AccessSet) {
        self.keys.extend(other.keys.iter().copied());
    }

    /// True if the two sets share at least one key (iterates the smaller).
    pub fn intersects(&self, other: &AccessSet) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.keys.iter().any(|k| large.keys.contains(k))
    }
}

impl Extend<AccessKey> for AccessSet {
    fn extend<T: IntoIterator<Item = AccessKey>>(&mut self, iter: T) {
        self.keys.extend(iter);
    }
}

impl FromIterator<AccessKey> for AccessSet {
    fn from_iter<T: IntoIterator<Item = AccessKey>>(iter: T) -> AccessSet {
        AccessSet {
            keys: iter.into_iter().collect(),
        }
    }
}

/// Computes the static access footprint of a transaction — a conservative
/// superset of every ledger key [`LedgerState::apply`] may read or write
/// while validating and executing it (including the fee/sequence touch on
/// the sender's root).
///
/// [`LedgerState::apply`]: crate::state::LedgerState::apply
pub fn tx_access(tx: &Transaction) -> AccessSet {
    let mut set = AccessSet::new();
    tx_access_into(tx, &mut set);
    set
}

/// Like [`tx_access`] but accumulates into an existing set.
pub fn tx_access_into(tx: &Transaction, set: &mut AccessSet) {
    set.insert(AccessKey::Account(tx.account));
    match &tx.kind {
        TxKind::Payment {
            destination,
            amount,
            send_max: _,
            paths,
        } => {
            set.insert(AccessKey::Account(*destination));
            if let Amount::Iou(iou) = amount {
                // Mirror apply's chain walk: sender, explicit hops (only the
                // first path is ever executed; multi-path is rejected), then
                // the destination. Each hop reads the receiving trust line
                // and writes the pair balance.
                let hops: &[AccountId] = paths.first().map(Vec::as_slice).unwrap_or(&[]);
                let mut prev = tx.account;
                for stop in hops.iter().chain(std::iter::once(destination)) {
                    set.insert(AccessKey::Account(*stop));
                    set.insert(AccessKey::Trust(*stop, prev, iou.currency));
                    set.insert(AccessKey::pair(prev, *stop, iou.currency));
                    prev = *stop;
                }
            }
        }
        TxKind::TrustSet {
            trustee, currency, ..
        } => {
            set.insert(AccessKey::Account(*trustee));
            set.insert(AccessKey::Trust(tx.account, *trustee, *currency));
        }
        TxKind::OfferCreate { .. } => {
            set.insert(AccessKey::Offer(tx.account, tx.sequence));
        }
        TxKind::OfferCancel { offer_seq } => {
            set.insert(AccessKey::Offer(tx.account, *offer_seq));
        }
        TxKind::AccountSet { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amount::{Drops, IouAmount};

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    #[test]
    fn pair_keys_normalize() {
        let a = acct(3);
        let b = acct(7);
        assert_eq!(
            AccessKey::pair(a, b, Currency::USD),
            AccessKey::pair(b, a, Currency::USD)
        );
        assert_ne!(
            AccessKey::pair(a, b, Currency::USD),
            AccessKey::pair(a, b, Currency::EUR)
        );
    }

    #[test]
    fn shard_mapping_is_total_and_stable() {
        for n in 0..=255u8 {
            let key = AccessKey::Account(acct(n));
            assert!(key.shard() < SHARD_COUNT);
            assert_eq!(key.shard(), shard_of(&acct(n)));
        }
        // Trust and pair keys shard by their owning (first) account.
        assert_eq!(
            AccessKey::Trust(acct(0x15), acct(0xF0), Currency::USD).shard(),
            shard_of(&acct(0x15))
        );
    }

    #[test]
    fn intersects_finds_shared_keys() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        a.insert(AccessKey::Account(acct(1)));
        a.insert(AccessKey::pair(acct(1), acct(2), Currency::USD));
        b.insert(AccessKey::Account(acct(3)));
        assert!(!a.intersects(&b));
        b.insert(AccessKey::pair(acct(2), acct(1), Currency::USD));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn iou_payment_footprint_covers_the_chain() {
        use crate::tx::Transaction;
        use ripple_crypto::SimKeypair;
        let keys = SimKeypair::from_seed(b"access");
        let sender = acct(1);
        let hop = acct(2);
        let dest = acct(3);
        let tx = Transaction::build(
            sender,
            1,
            Drops::new(10),
            TxKind::Payment {
                destination: dest,
                amount: Amount::Iou(IouAmount::new("5".parse().unwrap(), Currency::USD, hop)),
                send_max: None,
                paths: vec![vec![hop]],
            },
        )
        .signed(&keys);
        let set = tx_access(&tx);
        for key in [
            AccessKey::Account(sender),
            AccessKey::Account(hop),
            AccessKey::Account(dest),
            AccessKey::Trust(hop, sender, Currency::USD),
            AccessKey::Trust(dest, hop, Currency::USD),
            AccessKey::pair(sender, hop, Currency::USD),
            AccessKey::pair(hop, dest, Currency::USD),
        ] {
            assert!(set.contains(&key), "missing {key:?}");
        }
    }
}
