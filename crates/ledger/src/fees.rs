//! Transaction fees and account reserves.
//!
//! "A small XRP fee is collected for each transaction submitted to the
//! system. The aim is to mitigate denial of service attacks. […] The fees
//! collected during transactions are not destined to other Ripple users, or
//! validators […]. They are destroyed after the corresponding transaction is
//! confirmed." (paper §III.A)

use crate::amount::Drops;
use serde::{Deserialize, Serialize};

/// The fee and reserve schedule enforced by [`crate::LedgerState`].
///
/// # Examples
///
/// ```
/// use ripple_ledger::FeeSchedule;
///
/// let fees = FeeSchedule::default();
/// assert_eq!(fees.base_fee.as_drops(), 10);
/// assert_eq!(fees.reserve_for(2).as_drops(), 30_000_000); // 20 + 2·5 XRP
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeeSchedule {
    /// Burned on every transaction.
    pub base_fee: Drops,
    /// Minimum balance every account must hold.
    pub base_reserve: Drops,
    /// Additional reserve per owned object (trust line or offer).
    pub owner_reserve: Drops,
}

impl FeeSchedule {
    /// The historical main-net schedule: 10 drops fee, 20 XRP base reserve,
    /// 5 XRP owner reserve.
    pub fn mainnet() -> FeeSchedule {
        FeeSchedule {
            base_fee: Drops::new(10),
            base_reserve: Drops::from_xrp(20),
            owner_reserve: Drops::from_xrp(5),
        }
    }

    /// A schedule with no fees or reserves — useful for replay experiments
    /// (the Table II market-maker-removal replay re-executes payments without
    /// wanting fee effects to diverge from the recorded history).
    pub fn zero() -> FeeSchedule {
        FeeSchedule {
            base_fee: Drops::ZERO,
            base_reserve: Drops::ZERO,
            owner_reserve: Drops::ZERO,
        }
    }

    /// The reserve required for an account owning `owned_objects` objects.
    pub fn reserve_for(&self, owned_objects: u32) -> Drops {
        Drops::new(
            self.base_reserve.as_drops() + self.owner_reserve.as_drops() * owned_objects as u64,
        )
    }
}

impl Default for FeeSchedule {
    fn default() -> Self {
        FeeSchedule::mainnet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mainnet_matches_historical_values() {
        let f = FeeSchedule::mainnet();
        assert_eq!(f.base_fee.as_drops(), 10);
        assert_eq!(f.base_reserve, Drops::from_xrp(20));
        assert_eq!(f.owner_reserve, Drops::from_xrp(5));
    }

    #[test]
    fn reserve_scales_with_owned_objects() {
        let f = FeeSchedule::mainnet();
        assert_eq!(f.reserve_for(0), Drops::from_xrp(20));
        assert_eq!(f.reserve_for(10), Drops::from_xrp(70));
    }

    #[test]
    fn zero_schedule_is_free() {
        let f = FeeSchedule::zero();
        assert_eq!(f.base_fee, Drops::ZERO);
        assert_eq!(f.reserve_for(100), Drops::ZERO);
    }
}
