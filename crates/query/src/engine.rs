//! The query engine: secondary indexes + block cache over one archive.
//!
//! [`QueryEngine::open`] takes the raw archive bytes, builds the postings
//! sidecar and sparse time index, and then serves four query families:
//!
//! * **account history** — postings offsets resolved through the block
//!   cache, so each block decodes once however many accounts live in it;
//! * **`[from, to)` windows** — time-index seek, then a block walk through
//!   the cache (repeated dashboards hit decoded blocks);
//! * **(currency, day) flows** — answered entirely from the sidecar;
//! * **fingerprint classes** — the paper's ⟨Am, Tsc, C, D⟩ attack ladder,
//!   served live by memoized [`DeanonIndex`]es sharing one record arena.
//!
//! The visitor-style `visit_*` methods are the hot path: they hand out
//! borrowed events from cached blocks without cloning. The owning
//! wrappers (`account_history`, `range`) clone for callers that want
//! vectors.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ripple_crypto::AccountId;
use ripple_deanon::{DeanonIndex, Observation, ResolutionSpec};
use ripple_ledger::{Currency, PaymentRecord, RippleTime};
use ripple_obs::{LazyCounter, LazyTimer};
use ripple_store::postings::{
    decode_block, decode_frame_at, FlowStat, PostingsConfig, PostingsIndex,
};
use ripple_store::{ArchiveIndex, HistoryEvent, ReadMode, Reader, StoreError};

use crate::cache::{Block, BlockCache};

static LOOKUPS: LazyCounter = LazyCounter::new("query.engine.lookups");
static RANGE_SCANS: LazyCounter = LazyCounter::new("query.engine.range_scans");
static CLASS_QUERIES: LazyCounter = LazyCounter::new("query.engine.class_queries");
static CLASS_INDEX_BUILDS: LazyCounter = LazyCounter::new("query.engine.class_index_builds");
static BUILD_TIMER: LazyTimer = LazyTimer::new("query.engine.build");

/// How [`QueryEngine::open`] builds its indexes and cache.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sparse time-index stride (records per entry).
    pub time_stride: usize,
    /// Threads decoding payloads during the postings build.
    pub build_shards: usize,
    /// Records per cache block.
    pub block_records: usize,
    /// Block-cache budget in bytes.
    pub cache_bytes: usize,
    /// Block-cache lock shards.
    pub cache_shards: usize,
    /// Corruption handling for the build and for linear rescans.
    pub mode: ReadMode,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            time_stride: 512,
            build_shards: 1,
            block_records: 64,
            cache_bytes: 64 * 1024 * 1024,
            cache_shards: 16,
            mode: ReadMode::Strict,
        }
    }
}

/// What [`QueryEngine::open`] measured while building.
#[derive(Debug, Clone, Copy)]
pub struct BuildReport {
    /// Wall-clock seconds spent building both indexes.
    pub build_secs: f64,
    /// Encoded size of the postings sidecar in bytes.
    pub sidecar_bytes: u64,
    /// Records indexed.
    pub records: u64,
    /// Distinct accounts with postings.
    pub accounts: u64,
    /// Distinct (currency, day) flow classes.
    pub flow_classes: u64,
    /// Cache blocks the archive divides into.
    pub blocks: u64,
    /// Bytes skipped over corruption (resync builds only).
    pub skipped_bytes: u64,
    /// Corrupt regions ridden over (resync builds only).
    pub corrupt_regions: u64,
}

/// The indexed, cached read path over one in-memory archive.
#[derive(Debug)]
pub struct QueryEngine {
    archive: Vec<u8>,
    postings: PostingsIndex,
    time_index: ArchiveIndex,
    cache: BlockCache,
    mode: ReadMode,
    time_bounds: Option<(RippleTime, RippleTime)>,
    class_indexes: Mutex<HashMap<ResolutionSpec, Arc<DeanonIndex>>>,
    arena: OnceLock<Arc<[PaymentRecord]>>,
}

impl QueryEngine {
    /// Builds the indexes over `archive` and wires up the cache.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the builds (in [`ReadMode::Strict`], the
    /// first corrupt frame is fatal; in [`ReadMode::Resync`] the engine
    /// serves what salvages).
    pub fn open(
        archive: Vec<u8>,
        config: &EngineConfig,
    ) -> Result<(QueryEngine, BuildReport), StoreError> {
        let started = Instant::now();
        let postings = PostingsIndex::build(
            &archive,
            &PostingsConfig {
                shards: config.build_shards,
                mode: config.mode,
                block_records: config.block_records,
            },
        )?;
        let (time_index, _) =
            ArchiveIndex::build_with_mode(&archive, config.time_stride, config.mode)?;
        let build_secs = started.elapsed().as_secs_f64();
        BUILD_TIMER.record(started.elapsed());
        let sidecar_bytes = postings.to_bytes().len() as u64;
        let stats = postings.stats();
        let report = BuildReport {
            build_secs,
            sidecar_bytes,
            records: postings.records(),
            accounts: postings.accounts() as u64,
            flow_classes: postings.flow_classes() as u64,
            blocks: postings.blocks().len() as u64,
            skipped_bytes: stats.skipped_bytes,
            corrupt_regions: stats.corrupt_regions,
        };
        let time_bounds = Self::probe_time_bounds(&archive, &postings);
        let engine = QueryEngine {
            archive,
            postings,
            time_index,
            cache: BlockCache::new(config.cache_bytes, config.cache_shards),
            mode: config.mode,
            time_bounds,
            class_indexes: Mutex::new(HashMap::new()),
            arena: OnceLock::new(),
        };
        Ok((engine, report))
    }

    /// First and last event timestamps, from the first and last blocks.
    fn probe_time_bounds(
        archive: &[u8],
        postings: &PostingsIndex,
    ) -> Option<(RippleTime, RippleTime)> {
        let blocks = postings.blocks();
        let first_block = decode_block(archive, *blocks.first()?, archive.len() as u64).ok()?;
        let last_block = decode_block(archive, *blocks.last()?, archive.len() as u64).ok()?;
        let first = first_block.first()?.1.timestamp();
        let last = last_block.last()?.1.timestamp();
        Some((first, last))
    }

    /// The raw archive bytes.
    pub fn archive(&self) -> &[u8] {
        &self.archive
    }

    /// Records indexed.
    pub fn records(&self) -> u64 {
        self.postings.records()
    }

    /// The postings sidecar.
    pub fn postings(&self) -> &PostingsIndex {
        &self.postings
    }

    /// The block cache (hit/miss counters, resident bytes).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// First and last event timestamps, if the archive is non-empty.
    pub fn time_bounds(&self) -> Option<(RippleTime, RippleTime)> {
        self.time_bounds
    }

    /// Fetches the block containing `offset` through the cache.
    fn block_at(&self, offset: u64) -> Result<Arc<Block>, StoreError> {
        let (id, start, end) = self.postings.block_span(offset);
        self.cache.get_or_insert(id, || {
            let events = decode_block(&self.archive, start, end)?;
            Ok(Block::new(start, (end - start) as usize, events))
        })
    }

    /// Fetches block `id` (by table position) through the cache.
    fn block_by_id(&self, id: usize) -> Result<Arc<Block>, StoreError> {
        let start = self.postings.blocks()[id];
        let end = self
            .postings
            .blocks()
            .get(id + 1)
            .copied()
            .unwrap_or(self.postings.archive_len());
        self.cache.get_or_insert(id, || {
            let events = decode_block(&self.archive, start, end)?;
            Ok(Block::new(start, (end - start) as usize, events))
        })
    }

    /// Two-tier probe for point lookups: the cached block if resident,
    /// a freshly decoded (and admitted) one once the block has missed
    /// often enough to earn promotion, `None` otherwise — in which case
    /// the caller should decode just the frames it needs. Keeps one-off
    /// touches from paying whole-block decodes or evicting hot blocks.
    fn block_if_hot(&self, id: usize) -> Result<Option<Arc<Block>>, StoreError> {
        if let Some(block) = self.cache.get_if_present(id) {
            return Ok(Some(block));
        }
        if self.cache.note_miss(id) {
            let start = self.postings.blocks()[id];
            let end = self
                .postings
                .blocks()
                .get(id + 1)
                .copied()
                .unwrap_or(self.postings.archive_len());
            let events = decode_block(&self.archive, start, end)?;
            let block = Arc::new(Block::new(start, (end - start) as usize, events));
            self.cache.insert(id, Arc::clone(&block));
            return Ok(Some(block));
        }
        Ok(None)
    }

    /// The event framed at `offset` — one cached block decode plus a
    /// binary search.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if `offset` is not a frame boundary.
    pub fn event_at(&self, offset: u64) -> Result<HistoryEvent, StoreError> {
        LOOKUPS.add(1);
        let block = self.block_at(offset)?;
        block
            .event_at(offset)
            .cloned()
            .ok_or_else(|| StoreError::corrupt(format!("no frame at offset {offset}")))
    }

    /// Visits the most recent `limit` events touching `account`, oldest
    /// first, without cloning. Passing `usize::MAX` visits the full
    /// history.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from block decode.
    pub fn visit_account_history(
        &self,
        account: &AccountId,
        limit: usize,
        mut visit: impl FnMut(u64, &HistoryEvent),
    ) -> Result<usize, StoreError> {
        LOOKUPS.add(1);
        let offsets = self.postings.account_offsets(account);
        let tail = &offsets[offsets.len().saturating_sub(limit)..];
        // Postings are sorted, so consecutive offsets usually share a
        // block: resolve the cache once per distinct block and merge the
        // two sorted sequences, instead of probe + binary search per event.
        // Cold blocks are not force-decoded: until the admission policy
        // promotes one, only the frames this account needs are decoded.
        let mut i = 0;
        while i < tail.len() {
            let (id, _, end) = self.postings.block_span(tail[i]);
            match self.block_if_hot(id)? {
                Some(block) => {
                    let mut ev = 0usize;
                    while i < tail.len() && tail[i] < end {
                        let offset = tail[i];
                        while ev < block.events.len() && block.events[ev].0 < offset {
                            ev += 1;
                        }
                        if ev >= block.events.len() || block.events[ev].0 != offset {
                            return Err(StoreError::corrupt(format!(
                                "no frame at offset {offset}"
                            )));
                        }
                        visit(offset, &block.events[ev].1);
                        ev += 1;
                        i += 1;
                    }
                }
                None => {
                    while i < tail.len() && tail[i] < end {
                        let offset = tail[i];
                        let (event, _) = decode_frame_at(&self.archive, offset)?;
                        visit(offset, &event);
                        i += 1;
                    }
                }
            }
        }
        Ok(tail.len())
    }

    /// The most recent `limit` events touching `account`, oldest first,
    /// as owned pairs. Total history length comes from
    /// [`PostingsIndex::account_offsets`].
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from block decode.
    pub fn account_history(
        &self,
        account: &AccountId,
        limit: usize,
    ) -> Result<Vec<(u64, HistoryEvent)>, StoreError> {
        let mut out = Vec::new();
        self.visit_account_history(account, limit, |offset, event| {
            out.push((offset, event.clone()));
        })?;
        Ok(out)
    }

    /// Visits events with `from <= timestamp < to` in time order, through
    /// the block cache, stopping after `limit` matches. Returns the number
    /// visited.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from block decode.
    pub fn visit_range(
        &self,
        from: RippleTime,
        to: RippleTime,
        limit: usize,
        mut visit: impl FnMut(u64, &HistoryEvent),
    ) -> Result<usize, StoreError> {
        RANGE_SCANS.add(1);
        let seek = self.time_index.seek_offset(from);
        if seek >= self.postings.archive_len() || self.postings.blocks().is_empty() {
            return Ok(0);
        }
        let (mut id, _, _) = self.postings.block_span(seek);
        let mut matched = 0usize;
        while id < self.postings.blocks().len() && matched < limit {
            let block = self.block_by_id(id)?;
            for (offset, event) in &block.events {
                let t = event.timestamp();
                if t >= to {
                    return Ok(matched);
                }
                if t >= from {
                    visit(*offset, event);
                    matched += 1;
                    if matched == limit {
                        return Ok(matched);
                    }
                }
            }
            id += 1;
        }
        Ok(matched)
    }

    /// Events with `from <= timestamp < to`, capped at `limit`, as owned
    /// pairs.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from block decode.
    pub fn range(
        &self,
        from: RippleTime,
        to: RippleTime,
        limit: usize,
    ) -> Result<Vec<(u64, HistoryEvent)>, StoreError> {
        let mut out = Vec::new();
        self.visit_range(from, to, limit, |offset, event| {
            out.push((offset, event.clone()));
        })?;
        Ok(out)
    }

    /// The flow class for `(currency, day)` — answered from the sidecar
    /// without touching the archive.
    pub fn flow(&self, currency: Currency, day: RippleTime) -> Option<&FlowStat> {
        self.postings.flow(currency, day)
    }

    /// Candidate senders for an observation under `spec` — the paper's
    /// fingerprint-class query, served by a memoized attack index.
    pub fn class_candidates(
        &self,
        spec: ResolutionSpec,
        observation: &Observation,
    ) -> Vec<AccountId> {
        CLASS_QUERIES.add(1);
        self.class_index(spec).query(observation)
    }

    /// The memoized [`DeanonIndex`] for `spec`, building it on first use.
    /// All specs share one payment arena.
    pub fn class_index(&self, spec: ResolutionSpec) -> Arc<DeanonIndex> {
        let mut guard = self.class_indexes.lock().expect("class index map poisoned");
        guard
            .entry(spec)
            .or_insert_with(|| {
                CLASS_INDEX_BUILDS.add(1);
                Arc::new(DeanonIndex::build_shared(self.payment_arena(), spec))
            })
            .clone()
    }

    /// The payment records in archive order, shared across class indexes.
    /// Materialized on first fingerprint query.
    pub fn payment_arena(&self) -> Arc<[PaymentRecord]> {
        self.arena
            .get_or_init(|| {
                let mut reader =
                    Reader::with_mode(self.archive.as_slice(), self.mode).expect("archive re-read");
                let mut payments = Vec::new();
                while let Ok(Some(event)) = reader.next_event() {
                    if let HistoryEvent::Payment(p) = event {
                        payments.push(p);
                    }
                }
                payments.into()
            })
            .clone()
    }

    /// The linear baseline the indexes are measured against: a full
    /// archive rescan filtering for `account`, bypassing postings and
    /// cache entirely.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the scan.
    pub fn rescan_account_history(
        &self,
        account: &AccountId,
    ) -> Result<Vec<(u64, HistoryEvent)>, StoreError> {
        let mut reader = Reader::with_mode(self.archive.as_slice(), self.mode)?;
        let mut out = Vec::new();
        while let Some((offset, event)) = reader.next_event_at()? {
            let touches = match &event {
                HistoryEvent::Payment(p) => p.sender == *account || p.destination == *account,
                HistoryEvent::OfferPlaced { owner, .. } => owner == account,
                HistoryEvent::TrustSet {
                    truster, trustee, ..
                } => truster == account || trustee == account,
                HistoryEvent::AccountCreated { account: a, .. } => a == account,
            };
            if touches {
                out.push((offset, event));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{PathSummary, Value};
    use ripple_store::Writer;

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn payment(sender: u8, dest: u8, secs: u64, amount: &str) -> HistoryEvent {
        HistoryEvent::Payment(PaymentRecord {
            tx_hash: sha512_half(&[sender, dest, secs as u8]),
            sender: acct(sender),
            destination: acct(dest),
            currency: Currency::USD,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: secs as u32,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        })
    }

    fn engine(events: &[HistoryEvent], config: &EngineConfig) -> QueryEngine {
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for e in events {
            writer.write(e).unwrap();
        }
        writer.finish().unwrap();
        QueryEngine::open(buf, config).unwrap().0
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            time_stride: 4,
            block_records: 8,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn account_history_matches_rescan() {
        let events: Vec<HistoryEvent> = (0..100)
            .map(|i| payment((i % 7) as u8, ((i + 1) % 7) as u8, i * 60, "1.5"))
            .collect();
        let engine = engine(&events, &small_config());
        for n in 0..7u8 {
            let indexed = engine.account_history(&acct(n), usize::MAX).unwrap();
            let rescan = engine.rescan_account_history(&acct(n)).unwrap();
            assert_eq!(indexed, rescan, "account {n}");
            assert!(!indexed.is_empty());
        }
        // Unknown account: empty, not an error.
        assert!(engine.account_history(&acct(200), 10).unwrap().is_empty());
    }

    #[test]
    fn history_limit_takes_the_tail() {
        let events: Vec<HistoryEvent> = (0..20).map(|i| payment(1, 2, 1000 + i, "2")).collect();
        let engine = engine(&events, &small_config());
        let last5 = engine.account_history(&acct(1), 5).unwrap();
        assert_eq!(last5.len(), 5);
        let times: Vec<u64> = last5.iter().map(|(_, e)| e.timestamp().seconds()).collect();
        assert_eq!(times, vec![1015, 1016, 1017, 1018, 1019]);
    }

    #[test]
    fn range_matches_time_index_scan() {
        let events: Vec<HistoryEvent> = (0..200)
            .map(|i| payment((i % 5) as u8, 9, i * 30, "1"))
            .collect();
        let engine = engine(&events, &small_config());
        let from = RippleTime::from_seconds(1000);
        let to = RippleTime::from_seconds(3000);
        let got = engine.range(from, to, usize::MAX).unwrap();
        let expected: Vec<u64> = (0..200u64)
            .map(|i| i * 30)
            .filter(|&t| (1000..3000).contains(&t))
            .collect();
        assert_eq!(got.len(), expected.len());
        for ((_, event), want) in got.iter().zip(expected) {
            assert_eq!(event.timestamp().seconds(), want);
        }
        // Limit truncates from the front.
        let capped = engine.range(from, to, 7).unwrap();
        assert_eq!(capped.len(), 7);
        assert_eq!(capped[0].1.timestamp().seconds(), 1020);
    }

    #[test]
    fn point_lookups_hit_the_cache() {
        let events: Vec<HistoryEvent> = (0..64).map(|i| payment(1, 2, 100 + i, "3")).collect();
        let engine = engine(&events, &small_config());
        let offsets: Vec<u64> = engine.postings.account_offsets(&acct(1)).to_vec();
        let first = engine.event_at(offsets[0]).unwrap();
        assert_eq!(first.timestamp().seconds(), 100);
        let misses_after_first = engine.cache().misses();
        // Same block again: pure hits.
        for _ in 0..10 {
            engine.event_at(offsets[0]).unwrap();
        }
        assert_eq!(engine.cache().misses(), misses_after_first);
        assert!(engine.cache().hits() >= 10);
    }

    #[test]
    fn flows_and_classes_answer() {
        // 17 payments on day 0, 17 on day 1, 16 on day 2 — monotone times.
        let events: Vec<HistoryEvent> = (0..50)
            .map(|i| payment(3, 4, 86_400 * (i / 17) + 100 + (i % 17), "2.5"))
            .collect();
        let engine = engine(&events, &small_config());
        let day0 = engine
            .flow(Currency::USD, RippleTime::from_seconds(500))
            .expect("day 0 exists");
        assert_eq!(day0.payments, 17);
        assert_eq!(
            day0.total(),
            Value::from_raw("2.5".parse::<Value>().unwrap().raw() * 17)
        );

        let spec = ResolutionSpec::full();
        let observation = Observation {
            amount: Some("2.5".parse().unwrap()),
            time: Some(RippleTime::from_seconds(100)),
            currency: Some(Currency::USD),
            strength: None,
            destination: Some(acct(4)),
        };
        let candidates = engine.class_candidates(spec, &observation);
        assert_eq!(candidates, vec![acct(3)]);
        // Second query reuses the memoized index.
        let again = engine.class_candidates(spec, &observation);
        assert_eq!(again, candidates);
    }

    #[test]
    fn time_bounds_cover_the_archive() {
        let events: Vec<HistoryEvent> = (0..30).map(|i| payment(1, 2, 500 + i * 10, "1")).collect();
        let engine = engine(&events, &small_config());
        let (first, last) = engine.time_bounds().unwrap();
        assert_eq!(first.seconds(), 500);
        assert_eq!(last.seconds(), 790);
    }
}
