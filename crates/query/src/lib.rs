//! Indexed query serving over the history store.
//!
//! The paper's measurement pipeline ends in questions, not archives: "what
//! did this wallet do", "how much USD moved that day", "which senders match
//! this ⟨Am, Tsc, C, D⟩ fingerprint". This crate answers those questions at
//! interactive rates over the `ripple-store` archive format, without ever
//! rescanning the file per query:
//!
//! - [`engine::QueryEngine`] — opens an archive, builds the postings
//!   sidecar ([`ripple_store::PostingsIndex`]) and the time index in one
//!   pass, and serves account history, time windows, per-(currency, day)
//!   flow aggregates and fingerprint-class lookups (reusing
//!   `ripple-deanon`'s resolution ladder).
//! - [`cache::BlockCache`] — fixed-budget shard-locked LRU over decoded
//!   frame blocks, so skewed traffic decodes each hot block once.
//! - [`http`] — routing and body builders over the shared
//!   [`ripple_obs::http`] keep-alive server (admin plane included);
//!   every response is byte-stable JSON.
//! - [`load`] — a closed-loop load generator that measures what the engine
//!   sustains, feeding `BENCH_store.json`.
//!
//! # Examples
//!
//! ```
//! use ripple_query::{EngineConfig, QueryEngine};
//! use ripple_store::{HistoryEvent, Writer};
//! use ripple_ledger::{Currency, PathSummary, PaymentRecord, RippleTime};
//! use ripple_crypto::{sha512_half, AccountId};
//!
//! let mut buf = Vec::new();
//! let mut writer = Writer::new(&mut buf);
//! writer.write(&HistoryEvent::Payment(PaymentRecord {
//!     tx_hash: sha512_half(b"tx"),
//!     sender: AccountId::from_bytes([1; 20]),
//!     destination: AccountId::from_bytes([2; 20]),
//!     currency: Currency::USD,
//!     issuer: None,
//!     amount: "4.5".parse().unwrap(),
//!     timestamp: RippleTime::from_seconds(86_400),
//!     ledger_seq: 17,
//!     paths: PathSummary::direct(),
//!     cross_currency: false,
//!     source_currency: None,
//! }))?;
//! writer.finish()?;
//!
//! let (engine, report) = QueryEngine::open(buf, &EngineConfig::default())?;
//! assert_eq!(report.records, 1);
//! let history = engine.account_history(&AccountId::from_bytes([1; 20]), 10)?;
//! assert_eq!(history.len(), 1);
//! # Ok::<(), ripple_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod http;
pub mod load;

pub use cache::{Block, BlockCache};
pub use engine::{BuildReport, EngineConfig, QueryEngine};
pub use http::{serve, HttpServer};
pub use load::{LoadConfig, LoadReport};
