//! Closed-loop lookup load generator.
//!
//! Drives a [`QueryEngine`] from `clients` worker threads, each issuing its
//! next request the moment the previous one returns (closed loop: offered
//! load adapts to service rate, so the reported throughput is what the
//! engine actually sustained, not a target). The operation mix is
//! deterministic per seed, account picks are skewed quadratically toward
//! the busiest accounts (hot-key traffic is what the block cache exists
//! for), and latencies go through [`ripple_obs`] histograms so the
//! p50/p90/p99 readouts in `BENCH_store.json` use the same bucketing as
//! every other artifact in the repo.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ripple_crypto::AccountId;
use ripple_deanon::{Observation, ResolutionSpec};
use ripple_ledger::{Currency, RippleTime};
use ripple_obs::LazyHistogram;

use crate::engine::QueryEngine;

/// Point-lookup latency (account-history tail), nanoseconds.
pub static POINT_NS: LazyHistogram = LazyHistogram::new("query.load.point_ns");
/// Range-scan latency, nanoseconds.
pub static SCAN_NS: LazyHistogram = LazyHistogram::new("query.load.scan_ns");
/// Flow-aggregate latency, nanoseconds.
pub static FLOW_NS: LazyHistogram = LazyHistogram::new("query.load.flow_ns");
/// Fingerprint-class latency, nanoseconds.
pub static CLASS_NS: LazyHistogram = LazyHistogram::new("query.load.class_ns");

/// Events per point lookup: the account's most recent event (the
/// "current state" probe a wallet UI or payment processor issues).
const POINT_LIMIT: usize = 1;

/// Events walked per range scan before the visitor stops.
const SCAN_LIMIT: usize = 128;

/// Load-generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Closed-loop worker threads.
    pub clients: usize,
    /// Total operations across all clients.
    pub total_ops: u64,
    /// Percent of operations that are point lookups (0..=100); the
    /// remainder alternates range scans, flow aggregates and class queries.
    pub point_pct: u32,
    /// Seed for the deterministic operation streams.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 4,
            total_ops: 200_000,
            point_pct: 90,
            seed: 0x5eed_0bb5,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Operations completed.
    pub ops: u64,
    /// Point lookups issued.
    pub point_lookups: u64,
    /// Range scans issued.
    pub range_scans: u64,
    /// Flow aggregates issued.
    pub flow_lookups: u64,
    /// Fingerprint-class queries issued.
    pub class_lookups: u64,
    /// Events handed to visitors across all operations.
    pub events_visited: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// `ops / wall_secs`.
    pub lookups_per_sec: f64,
    /// Point-lookup service rate: point lookups divided by the seconds the
    /// clients spent inside the point path. Isolates what the point path
    /// sustains from the wall-clock share the range scans and class
    /// queries consume in the mixed workload.
    pub point_lookups_per_sec: f64,
    /// Point-lookup latency percentiles, microseconds.
    pub point_us: [u64; 3],
    /// Range-scan latency percentiles, microseconds.
    pub scan_us: [u64; 3],
    /// Block-cache hit rate over this run only.
    pub cache_hit_rate: f64,
}

/// splitmix64: tiny, seedable, good enough to spread load keys.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentiles_us(hist: &LazyHistogram) -> [u64; 3] {
    let h = hist.force();
    [
        h.percentile(0.50) / 1_000,
        h.percentile(0.90) / 1_000,
        h.percentile(0.99) / 1_000,
    ]
}

/// Skewed account pick: quadratic over an activity-sorted list, so the
/// busiest accounts absorb most of the traffic.
fn pick_skewed(r: u64, n: usize) -> usize {
    let x = (r % n as u64) as u128;
    ((x * x) / n as u128) as usize
}

struct Workload {
    accounts: Vec<AccountId>,
    flows: Vec<(Currency, RippleTime)>,
    observations: Vec<Observation>,
    bounds: (u64, u64),
}

fn prepare(engine: &QueryEngine, seed: u64) -> Workload {
    // Activity-sorted accounts: postings length descending, ties broken by
    // account bytes so the order is deterministic.
    let mut by_activity: Vec<(usize, AccountId)> = engine
        .postings()
        .iter_accounts()
        .map(|(account, offsets)| (offsets.len(), *account))
        .collect();
    by_activity.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.as_bytes().cmp(b.1.as_bytes()))
    });
    let accounts: Vec<AccountId> = by_activity.into_iter().map(|(_, a)| a).collect();

    let mut flows: Vec<(Currency, RippleTime)> = engine
        .postings()
        .iter_flows()
        .map(|(&(currency, day), _)| (currency, RippleTime::from_seconds(day)))
        .collect();
    flows.sort_by_key(|&(c, d)| (*c.as_bytes(), d.seconds()));

    // Sample observations for class queries from the payment arena (also
    // forces the memoized full-spec class index to build outside the timed
    // window, like a server warming its indexes at startup).
    let arena = engine.payment_arena();
    let _ = engine.class_index(ResolutionSpec::full());
    let mut rng = seed ^ 0xc1a5_5000;
    let samples = arena.len().min(1024);
    let observations: Vec<Observation> = (0..samples)
        .map(|_| {
            let p = &arena[(splitmix64(&mut rng) % arena.len() as u64) as usize];
            Observation {
                amount: Some(p.amount),
                time: Some(p.timestamp),
                currency: Some(p.currency),
                strength: None,
                destination: Some(p.destination),
            }
        })
        .collect();

    let bounds = engine
        .time_bounds()
        .map(|(lo, hi)| (lo.seconds(), hi.seconds()))
        .unwrap_or((0, 0));
    Workload {
        accounts,
        flows,
        observations,
        bounds,
    }
}

/// Runs the closed loop and reports what it sustained.
///
/// # Panics
///
/// Panics if the engine holds no events (nothing to look up).
pub fn run(engine: &Arc<QueryEngine>, config: &LoadConfig) -> LoadReport {
    assert!(
        engine.records() > 0,
        "load generator needs a non-empty archive"
    );
    let workload = Arc::new(prepare(engine, config.seed));
    let clients = config.clients.max(1);
    let per_client = config.total_ops / clients as u64;
    let remainder = config.total_ops % clients as u64;

    let hits_before = engine.cache().hits();
    let misses_before = engine.cache().misses();

    let points = AtomicU64::new(0);
    let point_ns = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    let flows = AtomicU64::new(0);
    let classes = AtomicU64::new(0);
    let visited = AtomicU64::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let ops = per_client + u64::from((client as u64) < remainder);
            let engine = Arc::clone(engine);
            let workload = Arc::clone(&workload);
            let seed = config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(client as u64 + 1);
            let point_pct = config.point_pct.min(100) as u64;
            let (points, point_ns, scans, flows, classes, visited) =
                (&points, &point_ns, &scans, &flows, &classes, &visited);
            scope.spawn(move || {
                let mut rng = seed;
                let (mut p, mut pn, mut s, mut f, mut c, mut v) =
                    (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
                for _ in 0..ops {
                    let roll = splitmix64(&mut rng);
                    if roll % 100 < point_pct {
                        let account =
                            &workload.accounts[pick_skewed(roll >> 8, workload.accounts.len())];
                        let t = Instant::now();
                        let n = engine
                            .visit_account_history(account, POINT_LIMIT, |_, _| {})
                            .expect("point lookup");
                        let dt = t.elapsed().as_nanos() as u64;
                        POINT_NS.record(dt);
                        pn += dt;
                        v += n as u64;
                        p += 1;
                        continue;
                    }
                    match roll % 3 {
                        0 => {
                            let (lo, hi) = workload.bounds;
                            let span = (hi - lo).max(1);
                            let from = lo + splitmix64(&mut rng) % span;
                            let to = (from + span / 256 + 1).min(hi + 1);
                            let t = Instant::now();
                            let n = engine
                                .visit_range(
                                    RippleTime::from_seconds(from),
                                    RippleTime::from_seconds(to),
                                    SCAN_LIMIT,
                                    |_, _| {},
                                )
                                .expect("range scan");
                            SCAN_NS.record(t.elapsed().as_nanos() as u64);
                            v += n as u64;
                            s += 1;
                        }
                        1 if !workload.flows.is_empty() => {
                            let (currency, day) = workload.flows
                                [(splitmix64(&mut rng) % workload.flows.len() as u64) as usize];
                            let t = Instant::now();
                            let stat = engine.flow(currency, day);
                            FLOW_NS.record(t.elapsed().as_nanos() as u64);
                            v += stat.map_or(0, |s| s.payments);
                            f += 1;
                        }
                        _ if !workload.observations.is_empty() => {
                            let obs = &workload.observations[(splitmix64(&mut rng)
                                % workload.observations.len() as u64)
                                as usize];
                            let t = Instant::now();
                            let candidates = engine.class_candidates(ResolutionSpec::full(), obs);
                            CLASS_NS.record(t.elapsed().as_nanos() as u64);
                            v += candidates.len() as u64;
                            c += 1;
                        }
                        _ => {
                            // Archive with no flows/payments: fall back to a
                            // point lookup so the op still counts.
                            let account =
                                &workload.accounts[pick_skewed(roll >> 8, workload.accounts.len())];
                            let t = Instant::now();
                            let n = engine
                                .visit_account_history(account, POINT_LIMIT, |_, _| {})
                                .expect("point lookup");
                            let dt = t.elapsed().as_nanos() as u64;
                            POINT_NS.record(dt);
                            pn += dt;
                            v += n as u64;
                            p += 1;
                        }
                    }
                }
                points.fetch_add(p, Ordering::Relaxed);
                point_ns.fetch_add(pn, Ordering::Relaxed);
                scans.fetch_add(s, Ordering::Relaxed);
                flows.fetch_add(f, Ordering::Relaxed);
                classes.fetch_add(c, Ordering::Relaxed);
                visited.fetch_add(v, Ordering::Relaxed);
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let hits = engine.cache().hits() - hits_before;
    let misses = engine.cache().misses() - misses_before;
    let touched = hits + misses;
    let ops = config.total_ops;
    let point_count = points.load(Ordering::Relaxed);
    let point_secs = point_ns.load(Ordering::Relaxed) as f64 / 1e9;
    LoadReport {
        ops,
        point_lookups: point_count,
        range_scans: scans.load(Ordering::Relaxed),
        flow_lookups: flows.load(Ordering::Relaxed),
        class_lookups: classes.load(Ordering::Relaxed),
        events_visited: visited.load(Ordering::Relaxed),
        wall_secs,
        lookups_per_sec: if wall_secs > 0.0 {
            ops as f64 / wall_secs
        } else {
            0.0
        },
        point_lookups_per_sec: if point_secs > 0.0 {
            point_count as f64 / point_secs
        } else {
            0.0
        },
        point_us: percentiles_us(&POINT_NS),
        scan_us: percentiles_us(&SCAN_NS),
        cache_hit_rate: if touched == 0 {
            0.0
        } else {
            hits as f64 / touched as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{PathSummary, PaymentRecord};
    use ripple_store::{HistoryEvent, Writer};

    fn build_engine(payments: u64) -> Arc<QueryEngine> {
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for i in 0..payments {
            writer
                .write(&HistoryEvent::Payment(PaymentRecord {
                    tx_hash: sha512_half(&i.to_be_bytes()),
                    sender: AccountId::from_bytes([(i % 13) as u8; 20]),
                    destination: AccountId::from_bytes([(i % 7) as u8 + 100; 20]),
                    currency: if i % 2 == 0 {
                        Currency::USD
                    } else {
                        Currency::BTC
                    },
                    issuer: None,
                    amount: "2.25".parse().unwrap(),
                    timestamp: RippleTime::from_seconds(i * 5),
                    ledger_seq: i as u32,
                    paths: PathSummary::direct(),
                    cross_currency: false,
                    source_currency: None,
                }))
                .unwrap();
        }
        writer.finish().unwrap();
        let config = EngineConfig {
            time_stride: 16,
            block_records: 8,
            cache_bytes: 1 << 20,
            ..EngineConfig::default()
        };
        Arc::new(QueryEngine::open(buf, &config).unwrap().0)
    }

    #[test]
    fn closed_loop_completes_every_op() {
        ripple_obs::metrics::set_enabled(true);
        let engine = build_engine(500);
        let report = run(
            &engine,
            &LoadConfig {
                clients: 2,
                total_ops: 1_000,
                point_pct: 80,
                seed: 7,
            },
        );
        assert_eq!(
            report.point_lookups + report.range_scans + report.flow_lookups + report.class_lookups,
            1_000
        );
        assert!(report.lookups_per_sec > 0.0);
        assert!(report.point_lookups_per_sec > 0.0);
        assert!(report.events_visited > 0);
        // 80% mix must dominate.
        assert!(report.point_lookups >= 700, "{report:?}");
        // Skewed repeats on a small archive must hit the cache.
        assert!(report.cache_hit_rate > 0.5, "{report:?}");
    }

    #[test]
    fn mix_extremes_are_honoured() {
        ripple_obs::metrics::set_enabled(true);
        let engine = build_engine(200);
        let all_points = run(
            &engine,
            &LoadConfig {
                clients: 1,
                total_ops: 200,
                point_pct: 100,
                seed: 11,
            },
        );
        assert_eq!(all_points.point_lookups, 200);
        let no_points = run(
            &engine,
            &LoadConfig {
                clients: 1,
                total_ops: 200,
                point_pct: 0,
                seed: 11,
            },
        );
        assert_eq!(no_points.point_lookups, 0);
        assert_eq!(
            no_points.range_scans + no_points.flow_lookups + no_points.class_lookups,
            200
        );
    }

    #[test]
    fn skewed_pick_stays_in_bounds_and_front_loaded() {
        let mut rng = 42u64;
        let n = 1000;
        let mut hits_front = 0;
        for _ in 0..10_000 {
            let idx = pick_skewed(splitmix64(&mut rng), n);
            assert!(idx < n);
            if idx < n / 10 {
                hits_front += 1;
            }
        }
        // Quadratic skew puts ~sqrt(0.1) ≈ 31% of picks in the first decile.
        assert!(hits_front > 2_000, "{hits_front}");
    }
}
