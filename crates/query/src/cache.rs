//! Fixed-budget, shard-locked cache of decoded frame blocks.
//!
//! Point lookups land on frame offsets; decoding one frame means decoding
//! its enclosing *block* (the index's fixed decode unit), so under skewed
//! traffic the same blocks decode over and over. The cache keeps decoded
//! blocks behind `Arc` so readers share them without copying, evicting the
//! least-recently-used block per shard once the byte budget is exceeded.
//!
//! Locking is sharded by block id: concurrent lookups on different blocks
//! take different mutexes, and the per-shard critical section is a hash
//! probe plus an LRU tick — decode work happens outside the lock.
//!
//! Admission is adaptive: blocks earn promotion by missing
//! [`note_miss`](BlockCache::note_miss)-counted touches, and the touches
//! required rise when residents are evicted before their first hit (the
//! thrash signal of a working set that outruns the budget) and fall as
//! residents prove useful. Under thrash the cache stops churning and
//! point lookups degrade gracefully to single-frame decodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ripple_obs::{LazyCounter, LazyGauge};
use ripple_store::{HistoryEvent, StoreError};

static CACHE_HITS: LazyCounter = LazyCounter::new("query.cache.hits");
static CACHE_MISSES: LazyCounter = LazyCounter::new("query.cache.misses");
static CACHE_EVICTIONS: LazyCounter = LazyCounter::new("query.cache.evictions");
static CACHE_BYTES: LazyGauge = LazyGauge::new("query.cache.bytes");
static CACHE_BLOCKS: LazyGauge = LazyGauge::new("query.cache.blocks");

/// One decoded block: the events framed in `[start, end)` of the archive,
/// in offset order.
#[derive(Debug)]
pub struct Block {
    /// Archive offset the block starts at.
    pub start: u64,
    /// `(frame offset, event)` pairs, ascending by offset.
    pub events: Vec<(u64, HistoryEvent)>,
    /// Size charged against the cache budget (encoded span plus a fixed
    /// per-event decode overhead — an estimate, but a deterministic one).
    pub bytes: usize,
}

impl Block {
    /// Builds a block from decoded events, charging `span` encoded bytes.
    pub fn new(start: u64, span: usize, events: Vec<(u64, HistoryEvent)>) -> Block {
        let bytes = span + events.len() * 96;
        Block {
            start,
            events,
            bytes,
        }
    }

    /// The event framed exactly at `offset`, if the block holds it.
    pub fn event_at(&self, offset: u64) -> Option<&HistoryEvent> {
        self.events
            .binary_search_by_key(&offset, |&(o, _)| o)
            .ok()
            .map(|i| &self.events[i].1)
    }
}

struct Entry {
    block: Arc<Block>,
    last_used: u64,
    /// Still waiting for its first hit since insertion. Evicting a block
    /// that never earned one is the thrash signal the adaptive admission
    /// threshold feeds on.
    fresh: bool,
}

/// Floor on the misses a block must accumulate before
/// [`BlockCache::note_miss`] approves promotion: one-off touches (a cold
/// scan, a rare account) never pay a full block decode or evict a hot
/// resident.
const PROMOTE_AFTER: u32 = 3;

/// Ceiling on the adaptive promotion threshold. When the hot working set
/// dwarfs the budget, promoted blocks get evicted before they are ever
/// hit again; each such eviction doubles the shard's threshold (up to
/// this cap) so the cache stops churning and point lookups fall back to
/// cheap single-frame decodes. Each first hit on a resident block walks
/// the threshold back down toward the floor.
const MAX_PROMOTE_AFTER: u32 = 256;

/// Admission-counter entries per shard before the counters reset. A
/// bounded generational clear keeps the side table small; the cost is
/// that a block's progress toward promotion can be forgotten.
const TOUCH_CAP: usize = 8_192;

struct Shard {
    map: HashMap<usize, Entry>,
    bytes: usize,
    tick: u64,
    touches: HashMap<usize, u32>,
    promote_after: u32,
}

impl Default for Shard {
    fn default() -> Shard {
        Shard {
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            touches: HashMap::new(),
            promote_after: PROMOTE_AFTER,
        }
    }
}

/// The shard-locked LRU block cache. See the module docs.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl BlockCache {
    /// A cache holding at most `budget_bytes` of decoded blocks across
    /// `shards` independently locked shards.
    pub fn new(budget_bytes: usize, shards: usize) -> BlockCache {
        let shards = shards.max(1);
        BlockCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (budget_bytes / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached block `id`, decoding it with `decode` on a miss.
    /// Decode work runs outside the shard lock; if two threads race on the
    /// same missing block, both decode and one result wins — wasted work,
    /// never a wrong answer.
    ///
    /// # Errors
    ///
    /// Propagates the decode error on a miss.
    pub fn get_or_insert(
        &self,
        id: usize,
        decode: impl FnOnce() -> Result<Block, StoreError>,
    ) -> Result<Arc<Block>, StoreError> {
        let shard = &self.shards[id % self.shards.len()];
        {
            let mut guard = shard.lock().expect("cache shard poisoned");
            guard.tick += 1;
            let tick = guard.tick;
            if let Some(entry) = guard.map.get_mut(&id) {
                entry.last_used = tick;
                let first_hit = std::mem::replace(&mut entry.fresh, false);
                let block = entry.block.clone();
                if first_hit {
                    guard.promote_after = guard.promote_after.saturating_sub(1).max(PROMOTE_AFTER);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.add(1);
                return Ok(block);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.add(1);
        let block = Arc::new(decode()?);
        let mut guard = shard.lock().expect("cache shard poisoned");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.map.get_mut(&id) {
            // A racing thread filled it first; adopt its copy.
            entry.last_used = tick;
            return Ok(entry.block.clone());
        }
        guard.bytes += block.bytes;
        CACHE_BYTES.add(block.bytes as i64);
        CACHE_BLOCKS.add(1);
        guard.map.insert(
            id,
            Entry {
                block: block.clone(),
                last_used: tick,
                fresh: true,
            },
        );
        // Evict coldest-first until back under budget; the block just
        // inserted is the warmest, so it survives unless it alone exceeds
        // the budget.
        Self::evict_over_budget(&mut guard, self.shard_budget);
        Ok(block)
    }

    /// The cached block `id` if resident (bumping its recency), `None`
    /// otherwise. Counts a hit or a miss either way — this is the probe
    /// the two-tier point-lookup path uses before deciding whether to
    /// decode a whole block or just the frames it needs.
    pub fn get_if_present(&self, id: usize) -> Option<Arc<Block>> {
        let shard = &self.shards[id % self.shards.len()];
        let mut guard = shard.lock().expect("cache shard poisoned");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.map.get_mut(&id) {
            entry.last_used = tick;
            let first_hit = std::mem::replace(&mut entry.fresh, false);
            let block = entry.block.clone();
            if first_hit {
                guard.promote_after = guard.promote_after.saturating_sub(1).max(PROMOTE_AFTER);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.add(1);
            return Some(block);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.add(1);
        None
    }

    /// Records one miss on `id` for the admission policy; `true` means
    /// the block has now missed often enough to be worth promoting
    /// (decode fully and [`BlockCache::insert`] it).
    pub fn note_miss(&self, id: usize) -> bool {
        let shard = &self.shards[id % self.shards.len()];
        let mut guard = shard.lock().expect("cache shard poisoned");
        if guard.touches.len() >= TOUCH_CAP {
            guard.touches.clear();
        }
        let threshold = guard.promote_after;
        let count = guard.touches.entry(id).or_insert(0);
        *count += 1;
        if *count >= threshold {
            guard.touches.remove(&id);
            true
        } else {
            false
        }
    }

    /// Inserts an already-decoded block (promotion path), evicting
    /// coldest-first past the budget. No hit/miss accounting — the probe
    /// that led here already counted.
    pub fn insert(&self, id: usize, block: Arc<Block>) {
        let shard = &self.shards[id % self.shards.len()];
        let mut guard = shard.lock().expect("cache shard poisoned");
        guard.tick += 1;
        let tick = guard.tick;
        if let Some(entry) = guard.map.get_mut(&id) {
            entry.last_used = tick;
            return;
        }
        guard.bytes += block.bytes;
        CACHE_BYTES.add(block.bytes as i64);
        CACHE_BLOCKS.add(1);
        guard.map.insert(
            id,
            Entry {
                block,
                last_used: tick,
                fresh: true,
            },
        );
        Self::evict_over_budget(&mut guard, self.shard_budget);
    }

    fn evict_over_budget(guard: &mut Shard, budget: usize) {
        while guard.bytes > budget && guard.map.len() > 1 {
            let coldest = guard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty map");
            if let Some(evicted) = guard.map.remove(&coldest) {
                guard.bytes -= evicted.block.bytes;
                if evicted.fresh {
                    // Promoted (or scanned-in) and evicted without one
                    // hit: the working set is outrunning the budget, so
                    // demand more evidence before the next promotion.
                    guard.promote_after =
                        guard.promote_after.saturating_mul(2).min(MAX_PROMOTE_AFTER);
                }
                CACHE_BYTES.add(-(evicted.block.bytes as i64));
                CACHE_BLOCKS.add(-1);
                CACHE_EVICTIONS.add(1);
            }
        }
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to decode.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Decoded bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: usize, bytes: usize) -> Block {
        Block {
            start: id as u64,
            events: Vec::new(),
            bytes,
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = BlockCache::new(1 << 20, 4);
        let a = cache.get_or_insert(7, || Ok(block(7, 100))).unwrap();
        let b = cache
            .get_or_insert(7, || panic!("must not decode twice"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.resident_bytes(), 100);
    }

    #[test]
    fn budget_evicts_coldest() {
        // One shard, budget for ~2 blocks of 100 bytes.
        let cache = BlockCache::new(250, 1);
        cache.get_or_insert(1, || Ok(block(1, 100))).unwrap();
        cache.get_or_insert(2, || Ok(block(2, 100))).unwrap();
        // Touch 1 so 2 is coldest, then insert 3 to force an eviction.
        cache.get_or_insert(1, || panic!("hit")).unwrap();
        cache.get_or_insert(3, || Ok(block(3, 100))).unwrap();
        assert_eq!(cache.resident_blocks(), 2);
        assert!(cache.resident_bytes() <= 250);
        // 2 was evicted: fetching it decodes again (and evicts 1, now the
        // coldest of the survivors).
        let mut decoded = false;
        cache
            .get_or_insert(2, || {
                decoded = true;
                Ok(block(2, 100))
            })
            .unwrap();
        assert!(decoded, "coldest block should have been evicted");
        // 3 was warmest before the re-insert and must survive it.
        cache.get_or_insert(3, || panic!("3 must survive")).unwrap();
    }

    #[test]
    fn oversized_block_still_served() {
        let cache = BlockCache::new(10, 1);
        let b = cache.get_or_insert(1, || Ok(block(1, 1000))).unwrap();
        assert_eq!(b.bytes, 1000);
        // It stays resident (evicting the only block would thrash).
        cache.get_or_insert(1, || panic!("resident")).unwrap();
    }

    fn touches_to_promote(cache: &BlockCache, id: usize) -> u32 {
        let mut n = 1;
        while !cache.note_miss(id) {
            n += 1;
        }
        n
    }

    #[test]
    fn eviction_without_hits_raises_the_promotion_bar() {
        // One shard with room for a single 100-byte block: every insert
        // evicts the previous resident before it is ever hit.
        let cache = BlockCache::new(150, 1);
        assert_eq!(touches_to_promote(&cache, 1), 3);
        cache.insert(1, Arc::new(block(1, 100)));
        assert_eq!(touches_to_promote(&cache, 2), 3);
        cache.insert(2, Arc::new(block(2, 100))); // evicts never-hit 1 -> bar 6
        assert_eq!(touches_to_promote(&cache, 3), 6);
        cache.insert(3, Arc::new(block(3, 100))); // evicts never-hit 2 -> bar 12
                                                  // A hit on the resident walks the bar back down by one.
        assert!(cache.get_if_present(3).is_some());
        assert_eq!(touches_to_promote(&cache, 4), 11);
        // Repeated hits never push it below the floor.
        for _ in 0..50 {
            assert!(cache.get_if_present(3).is_some());
        }
        assert_eq!(touches_to_promote(&cache, 5), 11, "only first hits count");
    }

    #[test]
    fn decode_error_propagates_and_is_not_cached() {
        let cache = BlockCache::new(1 << 20, 2);
        let err = cache.get_or_insert(5, || Err(StoreError::corrupt("boom")));
        assert!(err.is_err());
        let ok = cache.get_or_insert(5, || Ok(block(5, 10)));
        assert!(ok.is_ok());
    }
}
