//! The query engine's HTTP/1.1 front end.
//!
//! Transport lives in the shared [`ripple_obs::http`] server (non-blocking
//! accept, `peek`-probe readiness, keep-alive connections, `GET`-only);
//! this module owns only the routing and the body builders. Every body is
//! byte-stable JSON from [`ripple_obs::json::JsonWriter`]: the same query
//! against the same archive returns the same bytes, so endpoint outputs
//! diff cleanly across runs (the same property every `BENCH_*.json`
//! artifact relies on).
//!
//! Connections are keep-alive by default and honor `Connection: close`
//! from the client, so a closed-loop pollster pays one TCP handshake for
//! its whole run.
//!
//! # Endpoints
//!
//! | Route | Query parameters | Serves |
//! |---|---|---|
//! | `/health` | — | liveness + record count |
//! | `/stats` | — | index + cache counters |
//! | `/account/<hex40>` | `limit` | account history (postings + block cache) |
//! | `/range` | `from`, `to`, `limit` | `[from, to)` window (time index) |
//! | `/flow` | `currency`, `day` | per-(currency, day) flow aggregate |
//! | `/class` | `amount`, `time`, `currency`, `strength`, `dest`, `spec` | fingerprint-class candidates |
//! | `/metrics` | — | full metrics-registry snapshot |
//! | `/timeseries` | `last` | windowed request rates and handle-latency percentiles |
//! | `/trace` | `cursor` | incremental trace-ring drain |
//! | `/flight` | — | live flight-recorder contents |
//!
//! The last four are the shared admin plane ([`ripple_obs::http::admin_response`])
//! every instrumented process in the workspace exposes; `ripple-node`
//! serves the same routes from its round loop.

use std::io;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ripple_crypto::{hex, AccountId};
use ripple_deanon::{
    AmountResolution, CurrencyStrength, Observation, ResolutionSpec, TimeResolution,
};
use ripple_ledger::{Currency, RippleTime};
use ripple_obs::http::{admin_response, timeseries_response, Request, Response};
use ripple_obs::json::JsonWriter;
use ripple_obs::timeseries::TimeSeries;
use ripple_obs::{LazyCounter, LazyTimer};
use ripple_store::HistoryEvent;

use crate::engine::QueryEngine;

pub use ripple_obs::http::HttpServer;

static HTTP_REQUESTS: LazyCounter = LazyCounter::new("query.http.requests");
static HTTP_ERRORS: LazyCounter = LazyCounter::new("query.http.errors");
static HTTP_TIMER: LazyTimer = LazyTimer::new("query.http.handle");

/// Most events one response will carry; `limit` above this is clamped.
const MAX_LIMIT: usize = 10_000;

/// Default `limit` when the query string omits it.
const DEFAULT_LIMIT: usize = 100;

/// `/timeseries` window width for the query server.
const WINDOW_MS: u64 = 1_000;

/// Builds the query server's live time series: request/error rates and
/// handle-latency window percentiles.
fn build_timeseries() -> TimeSeries {
    let mut ts = TimeSeries::new(WINDOW_MS, 120);
    ts.counter("query.http.requests", HTTP_REQUESTS.force());
    ts.counter("query.http.errors", HTTP_ERRORS.force());
    ts.histogram("query.http.handle", HTTP_TIMER.force());
    ts
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `engine` from a
/// background thread.
///
/// # Errors
///
/// [`io::Error`] if the bind fails.
pub fn serve(engine: Arc<QueryEngine>, addr: &str) -> io::Result<HttpServer> {
    let series = Mutex::new(build_timeseries());
    let epoch = Instant::now();
    ripple_obs::http::serve(addr, "query-httpd", move |req: &Request| {
        let started = Instant::now();
        let response = dispatch(&engine, &series, epoch, req);
        HTTP_TIMER.record(started.elapsed());
        HTTP_REQUESTS.add(1);
        if response.status >= 400 {
            HTTP_ERRORS.add(1);
        }
        response
    })
}

/// Routes one request: engine endpoints first, then the shared admin
/// plane. The time series is ticked lazily on `/timeseries` reads — the
/// series' own stall handling emits the empty windows in between.
fn dispatch(
    engine: &QueryEngine,
    series: &Mutex<TimeSeries>,
    epoch: Instant,
    req: &Request,
) -> Response {
    if req.path == "/timeseries" {
        let mut series = series.lock().unwrap_or_else(|e| e.into_inner());
        series.tick(epoch.elapsed().as_millis().min(u128::from(u64::MAX)) as u64);
        return timeseries_response(&series, &req.query);
    }
    if let Some(response) = admin_response("query", req) {
        return response;
    }
    let params = Params::parse(&req.query);
    let path = req.path.as_str();
    let result = if path == "/health" {
        Ok(health_body(engine))
    } else if path == "/stats" {
        Ok(stats_body(engine))
    } else if let Some(account) = path.strip_prefix("/account/") {
        account_body(engine, account, &params)
    } else if path == "/range" {
        range_body(engine, &params)
    } else if path == "/flow" {
        flow_body(engine, &params)
    } else if path == "/class" {
        class_body(engine, &params)
    } else {
        return Response::error(404, "no such endpoint");
    };
    match result {
        Ok(body) => Response::json(body),
        Err(message) => Response::error(400, &message),
    }
}

/// Parsed query-string parameters (first occurrence wins).
struct Params(Vec<(String, String)>);

impl Params {
    fn parse(query: &str) -> Params {
        let mut out = Vec::new();
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            out.push((percent_decode(k), percent_decode(v)));
        }
        Params(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn limit(&self) -> Result<usize, String> {
        match self.get("limit") {
            None => Ok(DEFAULT_LIMIT),
            Some(raw) => raw
                .parse::<usize>()
                .map(|n| n.min(MAX_LIMIT))
                .map_err(|_| format!("invalid limit {raw:?}")),
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            if let (Some(hi), Some(lo)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(if bytes[i] == b'+' { b' ' } else { bytes[i] });
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn health_body(engine: &QueryEngine) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("status", "ok");
    w.field_u64("records", engine.records());
    w.end_object();
    w.finish()
}

fn stats_body(engine: &QueryEngine) -> String {
    let postings = engine.postings();
    let cache = engine.cache();
    let stats = postings.stats();
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_u64("records", postings.records());
    w.field_u64("accounts", postings.accounts() as u64);
    w.field_u64("flow_classes", postings.flow_classes() as u64);
    w.field_u64("blocks", postings.blocks().len() as u64);
    w.field_u64("block_records", u64::from(postings.block_records()));
    w.field_u64("archive_bytes", postings.archive_len());
    w.field_u64("skipped_bytes", stats.skipped_bytes);
    w.field_u64("corrupt_regions", stats.corrupt_regions);
    w.key("cache");
    w.begin_object();
    w.field_u64("hits", cache.hits());
    w.field_u64("misses", cache.misses());
    w.field_f64("hit_rate", cache.hit_rate(), 4);
    w.field_u64("resident_bytes", cache.resident_bytes() as u64);
    w.field_u64("resident_blocks", cache.resident_blocks() as u64);
    w.end_object();
    w.end_object();
    w.finish()
}

/// One event as an inline JSON row; field order is fixed per kind.
fn event_row(w: &mut JsonWriter, offset: u64, event: &HistoryEvent) {
    w.begin_inline_object();
    match event {
        HistoryEvent::Payment(p) => {
            w.field_str("kind", "payment");
            w.field_u64("offset", offset);
            w.field_u64("time", p.timestamp.seconds());
            w.field_str("tx", &hex::encode(p.tx_hash.as_bytes()));
            w.field_str("sender", &hex::encode(p.sender.as_bytes()));
            w.field_str("destination", &hex::encode(p.destination.as_bytes()));
            w.field_str("currency", &p.currency.to_string());
            w.field_str("amount", &p.amount.to_string());
            w.field_u64("ledger_seq", u64::from(p.ledger_seq));
            w.field_bool("cross_currency", p.cross_currency);
        }
        HistoryEvent::OfferPlaced {
            owner,
            offer_seq,
            base,
            quote,
            gets,
            pays,
            timestamp,
        } => {
            w.field_str("kind", "offer");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("owner", &hex::encode(owner.as_bytes()));
            w.field_u64("offer_seq", u64::from(*offer_seq));
            w.field_str("base", &base.to_string());
            w.field_str("quote", &quote.to_string());
            w.field_str("gets", &gets.to_string());
            w.field_str("pays", &pays.to_string());
        }
        HistoryEvent::TrustSet {
            truster,
            trustee,
            currency,
            limit,
            timestamp,
        } => {
            w.field_str("kind", "trust_set");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("truster", &hex::encode(truster.as_bytes()));
            w.field_str("trustee", &hex::encode(trustee.as_bytes()));
            w.field_str("currency", &currency.to_string());
            w.field_str("limit", &limit.to_string());
        }
        HistoryEvent::AccountCreated { account, timestamp } => {
            w.field_str("kind", "account_created");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("account", &hex::encode(account.as_bytes()));
        }
    }
    w.end_inline_object();
}

fn parse_account(s: &str) -> Result<AccountId, String> {
    let bytes = hex::decode(s).map_err(|_| format!("invalid account hex {s:?}"))?;
    let array: [u8; 20] = bytes
        .try_into()
        .map_err(|_| "account hex must be 20 bytes".to_string())?;
    Ok(AccountId::from_bytes(array))
}

fn parse_currency(s: &str) -> Result<Currency, String> {
    Currency::try_code(s).ok_or_else(|| format!("invalid currency code {s:?}"))
}

fn account_body(engine: &QueryEngine, raw: &str, params: &Params) -> Result<String, String> {
    let account = parse_account(raw)?;
    let limit = params.limit()?;
    let total = engine.postings().account_offsets(&account).len() as u64;
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("account", &hex::encode(account.as_bytes()));
    w.field_u64("total", total);
    w.key("events");
    w.begin_array();
    engine
        .visit_account_history(&account, limit, |offset, event| {
            event_row(&mut w, offset, event);
        })
        .map_err(|e| e.to_string())?;
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

fn range_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let from: u64 = params
        .get("from")
        .ok_or("missing from")?
        .parse()
        .map_err(|_| "invalid from".to_string())?;
    let to: u64 = params
        .get("to")
        .ok_or("missing to")?
        .parse()
        .map_err(|_| "invalid to".to_string())?;
    let limit = params.limit()?;
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_u64("from", from);
    w.field_u64("to", to);
    w.key("events");
    w.begin_array();
    let matched = engine
        .visit_range(
            RippleTime::from_seconds(from),
            RippleTime::from_seconds(to),
            limit,
            |offset, event| event_row(&mut w, offset, event),
        )
        .map_err(|e| e.to_string())?;
    w.end_array();
    w.field_u64("returned", matched as u64);
    w.end_object();
    Ok(w.finish())
}

fn flow_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let currency = parse_currency(params.get("currency").ok_or("missing currency")?)?;
    let day: u64 = params
        .get("day")
        .ok_or("missing day")?
        .parse()
        .map_err(|_| "invalid day".to_string())?;
    let at = RippleTime::from_seconds(day);
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("currency", &currency.to_string());
    w.field_u64("day", at.truncate_to_day().seconds());
    match engine.flow(currency, at) {
        Some(flow) => {
            w.field_u64("payments", flow.payments);
            w.field_str("total", &flow.total().to_string());
        }
        None => {
            w.field_u64("payments", 0);
            w.field_str("total", "0");
        }
    }
    w.end_object();
    Ok(w.finish())
}

fn parse_spec(raw: Option<&str>) -> Result<ResolutionSpec, String> {
    let Some(raw) = raw else {
        return Ok(ResolutionSpec::full());
    };
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 4 {
        return Err("spec must be four comma-separated tokens, e.g. m,sc,c,d".to_string());
    }
    let amount = match parts[0] {
        "m" => Some(AmountResolution::Maximum),
        "h" => Some(AmountResolution::High),
        "a" => Some(AmountResolution::Average),
        "l" => Some(AmountResolution::Low),
        "-" => None,
        other => return Err(format!("invalid amount resolution {other:?}")),
    };
    let time = match parts[1] {
        "sc" => Some(TimeResolution::Seconds),
        "mn" => Some(TimeResolution::Minutes),
        "hr" => Some(TimeResolution::Hours),
        "dy" => Some(TimeResolution::Days),
        "-" => None,
        other => return Err(format!("invalid time resolution {other:?}")),
    };
    let currency = match parts[2] {
        "c" => true,
        "-" => false,
        other => return Err(format!("invalid currency token {other:?}")),
    };
    let destination = match parts[3] {
        "d" => true,
        "-" => false,
        other => return Err(format!("invalid destination token {other:?}")),
    };
    Ok(ResolutionSpec {
        amount,
        time,
        currency,
        destination,
    })
}

fn spec_token(spec: ResolutionSpec) -> String {
    let amount = match spec.amount {
        Some(AmountResolution::Maximum) => "m",
        Some(AmountResolution::High) => "h",
        Some(AmountResolution::Average) => "a",
        Some(AmountResolution::Low) => "l",
        None => "-",
    };
    let time = match spec.time {
        Some(TimeResolution::Seconds) => "sc",
        Some(TimeResolution::Minutes) => "mn",
        Some(TimeResolution::Hours) => "hr",
        Some(TimeResolution::Days) => "dy",
        None => "-",
    };
    format!(
        "{amount},{time},{},{}",
        if spec.currency { "c" } else { "-" },
        if spec.destination { "d" } else { "-" }
    )
}

fn class_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let spec = parse_spec(params.get("spec"))?;
    let amount = params
        .get("amount")
        .map(|s| s.parse().map_err(|_| format!("invalid amount {s:?}")))
        .transpose()?;
    let time = params
        .get("time")
        .map(|s| {
            s.parse::<u64>()
                .map(RippleTime::from_seconds)
                .map_err(|_| format!("invalid time {s:?}"))
        })
        .transpose()?;
    let currency = params.get("currency").map(parse_currency).transpose()?;
    let strength = params
        .get("strength")
        .map(|s| match s {
            "powerful" => Ok(CurrencyStrength::Powerful),
            "medium" => Ok(CurrencyStrength::Medium),
            "weak" => Ok(CurrencyStrength::Weak),
            other => Err(format!("invalid strength {other:?}")),
        })
        .transpose()?;
    let destination = params.get("dest").map(parse_account).transpose()?;
    let observation = Observation {
        amount,
        time,
        currency,
        strength,
        destination,
    };
    let candidates = engine.class_candidates(spec, &observation);
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("spec", &spec_token(spec));
    w.field_u64("count", candidates.len() as u64);
    w.key("candidates");
    w.begin_array();
    for account in &candidates {
        w.value_str(&hex::encode(account.as_bytes()));
    }
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{PathSummary, PaymentRecord};
    use ripple_store::Writer;
    use std::io::{BufRead, Read, Write};
    use std::net::{SocketAddr, TcpStream};

    fn test_engine() -> Arc<QueryEngine> {
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for i in 0..40u64 {
            writer
                .write(&HistoryEvent::Payment(PaymentRecord {
                    tx_hash: sha512_half(&i.to_be_bytes()),
                    sender: AccountId::from_bytes([(i % 4) as u8; 20]),
                    destination: AccountId::from_bytes([9; 20]),
                    currency: Currency::USD,
                    issuer: None,
                    amount: "1.5".parse().unwrap(),
                    timestamp: RippleTime::from_seconds(1000 + i * 10),
                    ledger_seq: i as u32,
                    paths: PathSummary::direct(),
                    cross_currency: false,
                    source_currency: None,
                }))
                .unwrap();
        }
        writer.finish().unwrap();
        let config = EngineConfig {
            time_stride: 4,
            block_records: 8,
            ..EngineConfig::default()
        };
        Arc::new(QueryEngine::open(buf, &config).unwrap().0)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// Reads one keep-alive response (headers + Content-Length body).
    fn read_one(reader: &mut impl BufRead) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn endpoints_answer_over_real_sockets() {
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"records\": 40"), "{body}");

        let account = hex::encode(&[0u8; 20]);
        let (status, body) = get(addr, &format!("/account/{account}?limit=3"));
        assert_eq!(status, 200);
        assert!(body.contains("\"total\": 10"), "{body}");
        assert_eq!(body.matches("\"kind\": \"payment\"").count(), 3);

        let (status, body) = get(addr, "/range?from=1100&to=1150");
        assert_eq!(status, 200);
        assert!(body.contains("\"returned\": 5"), "{body}");

        let (status, body) = get(addr, "/flow?currency=USD&day=1000");
        assert_eq!(status, 200);
        assert!(body.contains("\"payments\": 40"), "{body}");

        let dest = hex::encode(&[9u8; 20]);
        let (status, body) = get(
            addr,
            &format!("/class?amount=1.5&time=1000&currency=USD&dest={dest}&spec=m,sc,c,d"),
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"count\": 1"), "{body}");
        assert!(body.contains(&hex::encode(&[0u8; 20])), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/account/zz");
        assert_eq!(status, 400);

        server.shutdown();
    }

    #[test]
    fn one_connection_serves_the_whole_session() {
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // Keep-alive: health, stats and a point lookup over ONE socket.
        let account = hex::encode(&[0u8; 20]);
        for target in ["/health", "/stats", &format!("/account/{account}?limit=1")] {
            write!(writer, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
            writer.flush().unwrap();
            let (status, _) = read_one(&mut reader);
            assert_eq!(status, 200, "{target}");
        }
        server.shutdown();
    }

    #[test]
    fn admin_plane_answers_on_the_query_server() {
        ripple_obs::metrics::set_enabled(true);
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("\"schema_version\": 1"), "{body}");
        assert!(body.contains("obs.trace.dropped"), "{body}");

        let (status, body) = get(addr, "/timeseries?last=5");
        assert_eq!(status, 200);
        assert!(body.contains("\"window_ms\": 1000"), "{body}");
        assert!(body.contains("query.http.requests"), "{body}");

        let (status, body) = get(addr, "/trace");
        assert_eq!(status, 200);
        assert!(body.contains("\"cursor\""), "{body}");

        let (status, body) = get(addr, "/flight");
        assert_eq!(status, 200);
        assert!(body.contains("\"node\": \"query\""), "{body}");
        assert!(body.contains("\"reason\": \"live\""), "{body}");

        let (status, _) = get(addr, "/trace?cursor=oops");
        assert_eq!(status, 400);

        server.shutdown();
    }

    #[test]
    fn responses_are_byte_stable() {
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let (_, first) = get(addr, "/range?from=1000&to=1400&limit=10");
        let (_, second) = get(addr, "/range?from=1000&to=1400&limit=10");
        assert_eq!(first, second);
        server.shutdown();
    }

    #[test]
    fn spec_tokens_round_trip() {
        for token in ["m,sc,c,d", "h,mn,-,d", "-,dy,c,-", "l,-,-,-"] {
            let spec = parse_spec(Some(token)).unwrap();
            assert_eq!(spec_token(spec), token);
        }
        assert!(parse_spec(Some("x,sc,c,d")).is_err());
        assert!(parse_spec(Some("m,sc,c")).is_err());
        assert_eq!(parse_spec(None).unwrap(), ResolutionSpec::full());
    }
}
