//! Hand-rolled HTTP/1.1 serving of the query engine.
//!
//! Built on the `node` crate's readiness-polling loop — non-blocking
//! accept, `peek`-probe per connection, bounded idle sleep — because the
//! workspace forbids `unsafe` and therefore `epoll` FFI. Requests are
//! `GET`-only, responses are `Connection: close`, and every body is
//! byte-stable JSON from [`ripple_obs::json::JsonWriter`]: the same query
//! against the same archive returns the same bytes, so endpoint outputs
//! diff cleanly across runs (the same property every `BENCH_*.json`
//! artifact relies on).
//!
//! # Endpoints
//!
//! | Route | Query parameters | Serves |
//! |---|---|---|
//! | `/health` | — | liveness + record count |
//! | `/stats` | — | index + cache counters |
//! | `/account/<hex40>` | `limit` | account history (postings + block cache) |
//! | `/range` | `from`, `to`, `limit` | `[from, to)` window (time index) |
//! | `/flow` | `currency`, `day` | per-(currency, day) flow aggregate |
//! | `/class` | `amount`, `time`, `currency`, `strength`, `dest`, `spec` | fingerprint-class candidates |

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ripple_crypto::{hex, AccountId};
use ripple_deanon::{
    AmountResolution, CurrencyStrength, Observation, ResolutionSpec, TimeResolution,
};
use ripple_ledger::{Currency, RippleTime};
use ripple_node::Poller;
use ripple_node::{probe, try_accept, Probe};
use ripple_obs::json::JsonWriter;
use ripple_obs::{LazyCounter, LazyTimer};
use ripple_store::HistoryEvent;

use crate::engine::QueryEngine;

static HTTP_REQUESTS: LazyCounter = LazyCounter::new("query.http.requests");
static HTTP_ERRORS: LazyCounter = LazyCounter::new("query.http.errors");
static HTTP_TIMER: LazyTimer = LazyTimer::new("query.http.handle");

/// Most events one response will carry; `limit` above this is clamped.
const MAX_LIMIT: usize = 10_000;

/// Default `limit` when the query string omits it.
const DEFAULT_LIMIT: usize = 100;

/// Requests with headers beyond this are refused.
const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// A running HTTP server; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `engine` from a
/// background thread.
///
/// # Errors
///
/// [`io::Error`] if the bind fails.
pub fn serve(engine: Arc<QueryEngine>, addr: &str) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("query-httpd".into())
        .spawn(move || serve_loop(&listener, &engine, &stop_flag))
        .expect("spawn httpd thread");
    Ok(HttpServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn serve_loop(listener: &TcpListener, engine: &QueryEngine, stop: &AtomicBool) {
    let poller = Poller::default();
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        while let Some(stream) = try_accept(listener) {
            conns.push(Conn {
                stream,
                buf: Vec::new(),
            });
            progressed = true;
        }
        let mut done: Vec<usize> = Vec::new();
        for (i, conn) in conns.iter_mut().enumerate() {
            match probe(&conn.stream) {
                Probe::Idle => continue,
                Probe::Closed => {
                    done.push(i);
                    continue;
                }
                Probe::Data => {}
            }
            progressed = true;
            if !read_available(&mut conn.stream, &mut conn.buf) {
                done.push(i);
                continue;
            }
            if conn.buf.len() > MAX_REQUEST_BYTES {
                let _ = respond(
                    &mut conn.stream,
                    431,
                    &error_body("request headers too large"),
                );
                done.push(i);
                continue;
            }
            if let Some(headers_end) = find_headers_end(&conn.buf) {
                let head = String::from_utf8_lossy(&conn.buf[..headers_end]).into_owned();
                let started = Instant::now();
                let (status, body) = handle_request(engine, &head);
                HTTP_TIMER.record(started.elapsed());
                HTTP_REQUESTS.add(1);
                if status >= 400 {
                    HTTP_ERRORS.add(1);
                }
                let _ = respond(&mut conn.stream, status, &body);
                done.push(i);
            }
        }
        for &i in done.iter().rev() {
            conns.swap_remove(i);
        }
        if !progressed {
            poller.idle_wait();
        }
    }
}

/// Reads whatever is available on a non-blocking stream; `false` means
/// the peer closed or errored.
fn read_available(stream: &mut TcpStream, buf: &mut Vec<u8>) -> bool {
    let mut chunk = [0u8; 8 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

fn find_headers_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

/// Writes one `Connection: close` response and shuts the stream down.
fn respond(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    // The response can be large; switch to blocking for the write.
    stream.set_nonblocking(false)?;
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    Ok(())
}

fn error_body(message: &str) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("error", message);
    w.end_object();
    w.finish()
}

/// Parsed query-string parameters (first occurrence wins).
struct Params(Vec<(String, String)>);

impl Params {
    fn parse(query: &str) -> Params {
        let mut out = Vec::new();
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            out.push((percent_decode(k), percent_decode(v)));
        }
        Params(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn limit(&self) -> Result<usize, String> {
        match self.get("limit") {
            None => Ok(DEFAULT_LIMIT),
            Some(raw) => raw
                .parse::<usize>()
                .map(|n| n.min(MAX_LIMIT))
                .map_err(|_| format!("invalid limit {raw:?}")),
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            if let (Some(hi), Some(lo)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(if bytes[i] == b'+' { b' ' } else { bytes[i] });
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Dispatches one request head to a handler: `(status, JSON body)`.
fn handle_request(engine: &QueryEngine, head: &str) -> (u16, String) {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return (400, error_body("malformed request line"));
    };
    if method != "GET" {
        return (405, error_body("only GET is supported"));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let params = Params::parse(query);
    let result = if path == "/health" {
        Ok(health_body(engine))
    } else if path == "/stats" {
        Ok(stats_body(engine))
    } else if let Some(account) = path.strip_prefix("/account/") {
        account_body(engine, account, &params)
    } else if path == "/range" {
        range_body(engine, &params)
    } else if path == "/flow" {
        flow_body(engine, &params)
    } else if path == "/class" {
        class_body(engine, &params)
    } else {
        return (404, error_body("no such endpoint"));
    };
    match result {
        Ok(body) => (200, body),
        Err(message) => (400, error_body(&message)),
    }
}

fn health_body(engine: &QueryEngine) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("status", "ok");
    w.field_u64("records", engine.records());
    w.end_object();
    w.finish()
}

fn stats_body(engine: &QueryEngine) -> String {
    let postings = engine.postings();
    let cache = engine.cache();
    let stats = postings.stats();
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_u64("records", postings.records());
    w.field_u64("accounts", postings.accounts() as u64);
    w.field_u64("flow_classes", postings.flow_classes() as u64);
    w.field_u64("blocks", postings.blocks().len() as u64);
    w.field_u64("block_records", u64::from(postings.block_records()));
    w.field_u64("archive_bytes", postings.archive_len());
    w.field_u64("skipped_bytes", stats.skipped_bytes);
    w.field_u64("corrupt_regions", stats.corrupt_regions);
    w.key("cache");
    w.begin_object();
    w.field_u64("hits", cache.hits());
    w.field_u64("misses", cache.misses());
    w.field_f64("hit_rate", cache.hit_rate(), 4);
    w.field_u64("resident_bytes", cache.resident_bytes() as u64);
    w.field_u64("resident_blocks", cache.resident_blocks() as u64);
    w.end_object();
    w.end_object();
    w.finish()
}

/// One event as an inline JSON row; field order is fixed per kind.
fn event_row(w: &mut JsonWriter, offset: u64, event: &HistoryEvent) {
    w.begin_inline_object();
    match event {
        HistoryEvent::Payment(p) => {
            w.field_str("kind", "payment");
            w.field_u64("offset", offset);
            w.field_u64("time", p.timestamp.seconds());
            w.field_str("tx", &hex::encode(p.tx_hash.as_bytes()));
            w.field_str("sender", &hex::encode(p.sender.as_bytes()));
            w.field_str("destination", &hex::encode(p.destination.as_bytes()));
            w.field_str("currency", &p.currency.to_string());
            w.field_str("amount", &p.amount.to_string());
            w.field_u64("ledger_seq", u64::from(p.ledger_seq));
            w.field_bool("cross_currency", p.cross_currency);
        }
        HistoryEvent::OfferPlaced {
            owner,
            offer_seq,
            base,
            quote,
            gets,
            pays,
            timestamp,
        } => {
            w.field_str("kind", "offer");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("owner", &hex::encode(owner.as_bytes()));
            w.field_u64("offer_seq", u64::from(*offer_seq));
            w.field_str("base", &base.to_string());
            w.field_str("quote", &quote.to_string());
            w.field_str("gets", &gets.to_string());
            w.field_str("pays", &pays.to_string());
        }
        HistoryEvent::TrustSet {
            truster,
            trustee,
            currency,
            limit,
            timestamp,
        } => {
            w.field_str("kind", "trust_set");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("truster", &hex::encode(truster.as_bytes()));
            w.field_str("trustee", &hex::encode(trustee.as_bytes()));
            w.field_str("currency", &currency.to_string());
            w.field_str("limit", &limit.to_string());
        }
        HistoryEvent::AccountCreated { account, timestamp } => {
            w.field_str("kind", "account_created");
            w.field_u64("offset", offset);
            w.field_u64("time", timestamp.seconds());
            w.field_str("account", &hex::encode(account.as_bytes()));
        }
    }
    w.end_inline_object();
}

fn parse_account(s: &str) -> Result<AccountId, String> {
    let bytes = hex::decode(s).map_err(|_| format!("invalid account hex {s:?}"))?;
    let array: [u8; 20] = bytes
        .try_into()
        .map_err(|_| "account hex must be 20 bytes".to_string())?;
    Ok(AccountId::from_bytes(array))
}

fn parse_currency(s: &str) -> Result<Currency, String> {
    Currency::try_code(s).ok_or_else(|| format!("invalid currency code {s:?}"))
}

fn account_body(engine: &QueryEngine, raw: &str, params: &Params) -> Result<String, String> {
    let account = parse_account(raw)?;
    let limit = params.limit()?;
    let total = engine.postings().account_offsets(&account).len() as u64;
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("account", &hex::encode(account.as_bytes()));
    w.field_u64("total", total);
    w.key("events");
    w.begin_array();
    engine
        .visit_account_history(&account, limit, |offset, event| {
            event_row(&mut w, offset, event);
        })
        .map_err(|e| e.to_string())?;
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

fn range_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let from: u64 = params
        .get("from")
        .ok_or("missing from")?
        .parse()
        .map_err(|_| "invalid from".to_string())?;
    let to: u64 = params
        .get("to")
        .ok_or("missing to")?
        .parse()
        .map_err(|_| "invalid to".to_string())?;
    let limit = params.limit()?;
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_u64("from", from);
    w.field_u64("to", to);
    w.key("events");
    w.begin_array();
    let matched = engine
        .visit_range(
            RippleTime::from_seconds(from),
            RippleTime::from_seconds(to),
            limit,
            |offset, event| event_row(&mut w, offset, event),
        )
        .map_err(|e| e.to_string())?;
    w.end_array();
    w.field_u64("returned", matched as u64);
    w.end_object();
    Ok(w.finish())
}

fn flow_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let currency = parse_currency(params.get("currency").ok_or("missing currency")?)?;
    let day: u64 = params
        .get("day")
        .ok_or("missing day")?
        .parse()
        .map_err(|_| "invalid day".to_string())?;
    let at = RippleTime::from_seconds(day);
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("currency", &currency.to_string());
    w.field_u64("day", at.truncate_to_day().seconds());
    match engine.flow(currency, at) {
        Some(flow) => {
            w.field_u64("payments", flow.payments);
            w.field_str("total", &flow.total().to_string());
        }
        None => {
            w.field_u64("payments", 0);
            w.field_str("total", "0");
        }
    }
    w.end_object();
    Ok(w.finish())
}

fn parse_spec(raw: Option<&str>) -> Result<ResolutionSpec, String> {
    let Some(raw) = raw else {
        return Ok(ResolutionSpec::full());
    };
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 4 {
        return Err("spec must be four comma-separated tokens, e.g. m,sc,c,d".to_string());
    }
    let amount = match parts[0] {
        "m" => Some(AmountResolution::Maximum),
        "h" => Some(AmountResolution::High),
        "a" => Some(AmountResolution::Average),
        "l" => Some(AmountResolution::Low),
        "-" => None,
        other => return Err(format!("invalid amount resolution {other:?}")),
    };
    let time = match parts[1] {
        "sc" => Some(TimeResolution::Seconds),
        "mn" => Some(TimeResolution::Minutes),
        "hr" => Some(TimeResolution::Hours),
        "dy" => Some(TimeResolution::Days),
        "-" => None,
        other => return Err(format!("invalid time resolution {other:?}")),
    };
    let currency = match parts[2] {
        "c" => true,
        "-" => false,
        other => return Err(format!("invalid currency token {other:?}")),
    };
    let destination = match parts[3] {
        "d" => true,
        "-" => false,
        other => return Err(format!("invalid destination token {other:?}")),
    };
    Ok(ResolutionSpec {
        amount,
        time,
        currency,
        destination,
    })
}

fn spec_token(spec: ResolutionSpec) -> String {
    let amount = match spec.amount {
        Some(AmountResolution::Maximum) => "m",
        Some(AmountResolution::High) => "h",
        Some(AmountResolution::Average) => "a",
        Some(AmountResolution::Low) => "l",
        None => "-",
    };
    let time = match spec.time {
        Some(TimeResolution::Seconds) => "sc",
        Some(TimeResolution::Minutes) => "mn",
        Some(TimeResolution::Hours) => "hr",
        Some(TimeResolution::Days) => "dy",
        None => "-",
    };
    format!(
        "{amount},{time},{},{}",
        if spec.currency { "c" } else { "-" },
        if spec.destination { "d" } else { "-" }
    )
}

fn class_body(engine: &QueryEngine, params: &Params) -> Result<String, String> {
    let spec = parse_spec(params.get("spec"))?;
    let amount = params
        .get("amount")
        .map(|s| s.parse().map_err(|_| format!("invalid amount {s:?}")))
        .transpose()?;
    let time = params
        .get("time")
        .map(|s| {
            s.parse::<u64>()
                .map(RippleTime::from_seconds)
                .map_err(|_| format!("invalid time {s:?}"))
        })
        .transpose()?;
    let currency = params.get("currency").map(parse_currency).transpose()?;
    let strength = params
        .get("strength")
        .map(|s| match s {
            "powerful" => Ok(CurrencyStrength::Powerful),
            "medium" => Ok(CurrencyStrength::Medium),
            "weak" => Ok(CurrencyStrength::Weak),
            other => Err(format!("invalid strength {other:?}")),
        })
        .transpose()?;
    let destination = params.get("dest").map(parse_account).transpose()?;
    let observation = Observation {
        amount,
        time,
        currency,
        strength,
        destination,
    };
    let candidates = engine.class_candidates(spec, &observation);
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("spec", &spec_token(spec));
    w.field_u64("count", candidates.len() as u64);
    w.key("candidates");
    w.begin_array();
    for account in &candidates {
        w.value_str(&hex::encode(account.as_bytes()));
    }
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{PathSummary, PaymentRecord};
    use ripple_store::Writer;

    fn test_engine() -> Arc<QueryEngine> {
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for i in 0..40u64 {
            writer
                .write(&HistoryEvent::Payment(PaymentRecord {
                    tx_hash: sha512_half(&i.to_be_bytes()),
                    sender: AccountId::from_bytes([(i % 4) as u8; 20]),
                    destination: AccountId::from_bytes([9; 20]),
                    currency: Currency::USD,
                    issuer: None,
                    amount: "1.5".parse().unwrap(),
                    timestamp: RippleTime::from_seconds(1000 + i * 10),
                    ledger_seq: i as u32,
                    paths: PathSummary::direct(),
                    cross_currency: false,
                    source_currency: None,
                }))
                .unwrap();
        }
        writer.finish().unwrap();
        let config = EngineConfig {
            time_stride: 4,
            block_records: 8,
            ..EngineConfig::default()
        };
        Arc::new(QueryEngine::open(buf, &config).unwrap().0)
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn endpoints_answer_over_real_sockets() {
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = get(addr, "/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"records\": 40"), "{body}");

        let account = hex::encode(&[0u8; 20]);
        let (status, body) = get(addr, &format!("/account/{account}?limit=3"));
        assert_eq!(status, 200);
        assert!(body.contains("\"total\": 10"), "{body}");
        assert_eq!(body.matches("\"kind\": \"payment\"").count(), 3);

        let (status, body) = get(addr, "/range?from=1100&to=1150");
        assert_eq!(status, 200);
        assert!(body.contains("\"returned\": 5"), "{body}");

        let (status, body) = get(addr, "/flow?currency=USD&day=1000");
        assert_eq!(status, 200);
        assert!(body.contains("\"payments\": 40"), "{body}");

        let dest = hex::encode(&[9u8; 20]);
        let (status, body) = get(
            addr,
            &format!("/class?amount=1.5&time=1000&currency=USD&dest={dest}&spec=m,sc,c,d"),
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"count\": 1"), "{body}");
        assert!(body.contains(&hex::encode(&[0u8; 20])), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/account/zz");
        assert_eq!(status, 400);

        server.shutdown();
    }

    #[test]
    fn responses_are_byte_stable() {
        let server = serve(test_engine(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let (_, first) = get(addr, "/range?from=1000&to=1400&limit=10");
        let (_, second) = get(addr, "/range?from=1000&to=1400&limit=10");
        assert_eq!(first, second);
        server.shutdown();
    }

    #[test]
    fn spec_tokens_round_trip() {
        for token in ["m,sc,c,d", "h,mn,-,d", "-,dy,c,-", "l,-,-,-"] {
            let spec = parse_spec(Some(token)).unwrap();
            assert_eq!(spec_token(spec), token);
        }
        assert!(parse_spec(Some("x,sc,c,d")).is_err());
        assert!(parse_spec(Some("m,sc,c")).is_err());
        assert_eq!(parse_spec(None).unwrap(), ResolutionSpec::full());
    }
}
