//! Offer books, the matching engine and the Market-Maker model.
//!
//! "Transactions of this kind are called 'cross-currency' IOUs and they
//! require a 'bridge' between the two currencies at some point of the
//! transaction path. The bridging is done by Market Makers […] Ripple's
//! path-finding algorithm exploits Market Makers to deliver cross-currency
//! payments and it does so by selecting the path with the best exchange rate
//! available." (paper §III.C)
//!
//! This crate provides:
//!
//! * [`Rate`] — exact rational exchange rates (no floating point in the
//!   matching path);
//! * [`OrderBook`] — a price-time-priority book for one currency pair, built
//!   as a view over the ledger's resting offers;
//! * [`BookSet`] — all books in the system, with XRP auto-bridging quotes;
//! * [`maker::MarketMaker`] — the behavioural model used by the synthetic
//!   workload (spread around a reference mid-price, offer churn).
//!
//! # Examples
//!
//! ```
//! use ripple_orderbook::{OrderBook, Rate};
//! use ripple_ledger::{Currency, Value};
//! use ripple_crypto::AccountId;
//!
//! let mm = AccountId::from_bytes([9; 20]);
//! let mut book = OrderBook::new(Currency::EUR, Currency::USD);
//! // Sell 100 EUR at 1.10 USD/EUR.
//! book.insert(mm, 1, "100".parse().unwrap(), Rate::new(110, 100));
//! let fill = book.fill("40".parse().unwrap());
//! assert_eq!(fill.filled, "40".parse().unwrap());
//! assert_eq!(fill.paid, "44".parse().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrage;
pub mod book;
pub mod maker;
pub mod rate;
pub mod rates;

pub use arbitrage::{execute_two_leg, find_triangular, find_two_leg, ArbitrageOpportunity};
pub use book::{BookEntry, BookSet, FillOutcome, FillPart, OrderBook};
pub use maker::MarketMaker;
pub use rate::Rate;
pub use rates::RateTable;
