//! Exact rational exchange rates.

use ripple_ledger::Value;
use serde::{Deserialize, Serialize};

/// An exchange rate expressed as the exact rational `pays/gets`: how many
/// units of the *pays* currency one unit of the *gets* currency costs.
///
/// Lower is cheaper for the taker; books sort ascending.
///
/// # Examples
///
/// ```
/// use ripple_orderbook::Rate;
///
/// let cheap = Rate::new(108, 100); // 1.08
/// let pricey = Rate::new(11, 10);  // 1.10
/// assert!(cheap < pricey);
/// let paid = cheap.apply("50".parse().unwrap());
/// assert_eq!(paid.to_string(), "54");
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Rate {
    num: u64,
    den: u64,
}

impl Rate {
    /// The identity rate (1:1).
    pub const UNIT: Rate = Rate { num: 1, den: 1 };

    /// Builds `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` or `num` is zero (offers always exchange something
    /// for something).
    pub fn new(num: u64, den: u64) -> Rate {
        assert!(num > 0 && den > 0, "rates must be positive");
        Rate { num, den }
    }

    /// Builds the rate implied by an offer: wants `pays` in exchange for
    /// `gets`. Returns `None` if either side is non-positive.
    pub fn from_amounts(pays: Value, gets: Value) -> Option<Rate> {
        if !pays.is_positive() || !gets.is_positive() {
            return None;
        }
        // Values are i128 micro-units; keep exactness via u64 clamp only
        // when safe, else reduce by gcd first.
        let (mut n, mut d) = (pays.raw() as u128, gets.raw() as u128);
        let g = gcd(n, d);
        n /= g;
        d /= g;
        if n > u64::MAX as u128 || d > u64::MAX as u128 {
            return None;
        }
        Some(Rate {
            num: n as u64,
            den: d as u64,
        })
    }

    /// The price the taker pays for `amount` of the gets-currency
    /// (rounded toward zero at ledger precision).
    pub fn apply(&self, amount: Value) -> Value {
        amount.mul_ratio(self.num, self.den)
    }

    /// The inverse conversion: how much of the gets-currency `paid`
    /// purchases.
    pub fn invert_apply(&self, paid: Value) -> Value {
        paid.mul_ratio(self.den, self.num)
    }

    /// Composes two legs (e.g. EUR→XRP then XRP→USD) into one effective
    /// rate, saturating on overflow by reducing first.
    pub fn compose(&self, other: &Rate) -> Rate {
        let n = self.num as u128 * other.num as u128;
        let d = self.den as u128 * other.den as u128;
        let g = gcd(n, d);
        let (n, d) = (n / g, d / g);
        if n > u64::MAX as u128 || d > u64::MAX as u128 {
            // Degrade gracefully to a float-derived approximation.
            let approx = (n as f64 / d as f64 * 1_000_000.0).round() as u64;
            return Rate::new(approx.max(1), 1_000_000);
        }
        Rate::new(n as u64, d as u64)
    }

    /// The rate as a float (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl PartialEq for Rate {
    fn eq(&self, other: &Self) -> bool {
        self.num as u128 * other.den as u128 == other.num as u128 * self.den as u128
    }
}

impl Eq for Rate {}

impl PartialOrd for Rate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_uses_cross_multiplication() {
        assert!(Rate::new(1, 3) < Rate::new(1, 2));
        assert_eq!(Rate::new(2, 4), Rate::new(1, 2));
        assert!(Rate::new(3, 2) > Rate::UNIT);
    }

    #[test]
    fn apply_and_invert_round_trip_exactly_for_clean_ratios() {
        let r = Rate::new(3, 2);
        let amount: Value = "10".parse().unwrap();
        let paid = r.apply(amount);
        assert_eq!(paid.to_string(), "15");
        assert_eq!(r.invert_apply(paid), amount);
    }

    #[test]
    fn from_amounts_reduces() {
        let r = Rate::from_amounts("110".parse().unwrap(), "100".parse().unwrap()).unwrap();
        assert_eq!(r, Rate::new(11, 10));
        assert!(Rate::from_amounts(Value::ZERO, "1".parse().unwrap()).is_none());
    }

    #[test]
    fn compose_chains_legs() {
        // EUR->XRP at 4 XRP/EUR, XRP->USD at 0.3 USD/XRP => 1.2 USD/EUR.
        let leg1 = Rate::new(4, 1);
        let leg2 = Rate::new(3, 10);
        assert_eq!(leg1.compose(&leg2), Rate::new(12, 10));
    }

    proptest! {
        #[test]
        fn compare_consistent_with_floats(a in 1u64..10_000, b in 1u64..10_000,
                                          c in 1u64..10_000, d in 1u64..10_000) {
            let (r1, r2) = (Rate::new(a, b), Rate::new(c, d));
            let float_cmp = (a as f64 / b as f64).partial_cmp(&(c as f64 / d as f64)).unwrap();
            // Floats can misjudge near-equality; only check strict cases.
            if (a as f64 / b as f64 - c as f64 / d as f64).abs() > 1e-9 {
                prop_assert_eq!(r1.cmp(&r2), float_cmp);
            }
        }

        #[test]
        fn apply_never_inflates_then_deflates(amount in 1i64..1_000_000, n in 1u64..1000, d in 1u64..1000) {
            let r = Rate::new(n, d);
            let v = Value::from_int(amount);
            let there = r.apply(v);
            let back = r.invert_apply(there);
            // Round-trip loses at most one micro-unit per conversion.
            prop_assert!((back.raw() - v.raw()).abs() <= (d as i128));
        }
    }
}
