//! Reference exchange rates for the study period.
//!
//! Used in two places: the synthetic workload prices its offers around these
//! mid-rates, and the Figure 7(c) balance analysis aggregates every
//! currency into EUR ("the balance aggregated and shown in EUR").

use std::collections::HashMap;

use ripple_ledger::{Currency, Value};

use crate::rate::Rate;

/// A table of mid-market rates into a reference currency.
#[derive(Debug, Clone)]
pub struct RateTable {
    reference: Currency,
    rates: HashMap<Currency, Rate>,
}

impl RateTable {
    /// Creates an empty table with the given reference currency.
    pub fn new(reference: Currency) -> RateTable {
        let mut rates = HashMap::new();
        rates.insert(reference, Rate::UNIT);
        RateTable { reference, rates }
    }

    /// Approximate 2015-era rates into EUR, covering the paper's leading
    /// currencies (Fig. 4/5): BTC ≈ 230 EUR, USD ≈ 0.9 EUR, CNY ≈ 0.14 EUR,
    /// JPY ≈ 0.0074 EUR, XRP ≈ 0.007 EUR, and nominal rates for the spam
    /// codes.
    pub fn eur_2015() -> RateTable {
        let mut t = RateTable::new(Currency::EUR);
        t.set(Currency::USD, Rate::new(9, 10));
        t.set(Currency::BTC, Rate::new(230, 1));
        t.set(Currency::CNY, Rate::new(14, 100));
        t.set(Currency::JPY, Rate::new(74, 10_000));
        t.set(Currency::GBP, Rate::new(135, 100));
        t.set(Currency::AUD, Rate::new(65, 100));
        t.set(Currency::KRW, Rate::new(75, 100_000));
        t.set(Currency::XRP, Rate::new(7, 1_000));
        t.set(Currency::XAU, Rate::new(1_000, 1));
        t.set(Currency::XAG, Rate::new(14, 1));
        t.set(Currency::XPT, Rate::new(900, 1));
        t.set(Currency::STR, Rate::new(2, 1_000));
        // Spam currencies have no real market; give them dust values.
        t.set(Currency::CCK, Rate::new(1, 1_000));
        t.set(Currency::MTL, Rate::new(1, 1_000_000));
        t
    }

    /// The reference currency.
    pub fn reference(&self) -> Currency {
        self.reference
    }

    /// Sets the rate of `currency` into the reference.
    pub fn set(&mut self, currency: Currency, rate: Rate) {
        self.rates.insert(currency, rate);
    }

    /// The rate of `currency` into the reference, if known.
    pub fn rate(&self, currency: Currency) -> Option<Rate> {
        self.rates.get(&currency).copied()
    }

    /// Converts an amount of `currency` into the reference currency.
    /// Unknown currencies convert at a nominal dust rate (1:10⁶) so spam
    /// codes never dominate aggregate balances.
    pub fn to_reference(&self, currency: Currency, amount: Value) -> Value {
        match self.rates.get(&currency) {
            Some(rate) => {
                if amount.is_negative() {
                    -rate.apply(-amount)
                } else {
                    rate.apply(amount)
                }
            }
            None => amount.mul_ratio(1, 1_000_000),
        }
    }

    /// The cross rate between two currencies (via the reference).
    pub fn cross(&self, from: Currency, to: Currency) -> Option<Rate> {
        let f = self.rate(from)?;
        let t = self.rate(to)?;
        // from->ref->to: (f.num/f.den) / (t.num/t.den)
        Some(Rate::new(1, 1).compose(&f).compose(&invert(t)))
    }
}

fn invert(rate: Rate) -> Rate {
    // Safe: Rate's invariants guarantee positivity.
    let f = rate.to_f64();
    Rate::from_amounts(Value::from_f64(1.0), Value::from_f64(f)).unwrap_or(Rate::UNIT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_unit() {
        let t = RateTable::eur_2015();
        assert_eq!(t.rate(Currency::EUR).unwrap(), Rate::UNIT);
        assert_eq!(
            t.to_reference(Currency::EUR, "5".parse().unwrap()),
            "5".parse().unwrap()
        );
    }

    #[test]
    fn btc_is_worth_hundreds_of_eur() {
        let t = RateTable::eur_2015();
        let one_btc = t.to_reference(Currency::BTC, "1".parse().unwrap());
        assert_eq!(one_btc, "230".parse().unwrap());
    }

    #[test]
    fn negative_amounts_stay_negative() {
        let t = RateTable::eur_2015();
        let debt = t.to_reference(Currency::USD, "-100".parse().unwrap());
        assert_eq!(debt, "-90".parse().unwrap());
    }

    #[test]
    fn unknown_currency_converts_at_dust() {
        let t = RateTable::eur_2015();
        let v = t.to_reference(Currency::code("ZZZ"), "1000000".parse().unwrap());
        assert_eq!(v, "1".parse().unwrap());
    }

    #[test]
    fn cross_rate_roundtrip_is_close() {
        let t = RateTable::eur_2015();
        let usd_to_cny = t.cross(Currency::USD, Currency::CNY).unwrap();
        // 0.9 EUR / 0.14 EUR ≈ 6.43 CNY per USD.
        let f = usd_to_cny.to_f64();
        assert!((6.3..6.6).contains(&f), "rate = {f}");
    }
}
