//! Price-time-priority order books and XRP auto-bridging.

use std::collections::HashMap;

use ripple_crypto::AccountId;
use ripple_ledger::{Amount, Currency, LedgerState, Value};

use crate::rate::Rate;

/// A resting offer inside a book: the owner gives the book's *base*
/// currency, wants the *quote* currency at `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BookEntry {
    /// Offer owner.
    pub owner: AccountId,
    /// Offer identity (creating transaction's sequence).
    pub offer_seq: u32,
    /// Remaining base-currency amount on offer.
    pub remaining: Value,
    /// Price in quote per base.
    pub rate: Rate,
    /// Arrival order (price-time priority tiebreak).
    pub arrival: u64,
}

/// One consumed slice of a resting offer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillPart {
    /// Offer owner whose liquidity was taken.
    pub owner: AccountId,
    /// Offer identity.
    pub offer_seq: u32,
    /// Base currency taken from the offer.
    pub taken: Value,
    /// Quote currency owed to the owner.
    pub paid: Value,
}

/// Outcome of walking a book.
#[derive(Debug, Clone, PartialEq)]
pub struct FillOutcome {
    /// Total base currency obtained (≤ requested on thin books).
    pub filled: Value,
    /// Total quote currency paid.
    pub paid: Value,
    /// The per-offer slices, best rate first.
    pub parts: Vec<FillPart>,
}

impl FillOutcome {
    fn empty() -> FillOutcome {
        FillOutcome {
            filled: Value::ZERO,
            paid: Value::ZERO,
            parts: Vec::new(),
        }
    }

    /// Whether the requested amount was fully available.
    pub fn is_complete(&self, requested: Value) -> bool {
        self.filled == requested
    }
}

/// An order book for one currency pair: offers *selling* `base` priced in
/// `quote`, sorted by ascending rate then arrival.
#[derive(Debug, Clone)]
pub struct OrderBook {
    base: Currency,
    quote: Currency,
    entries: Vec<BookEntry>,
    arrivals: u64,
}

impl OrderBook {
    /// Creates an empty book for the pair.
    pub fn new(base: Currency, quote: Currency) -> OrderBook {
        OrderBook {
            base,
            quote,
            entries: Vec::new(),
            arrivals: 0,
        }
    }

    /// The base (sold) currency.
    pub fn base(&self) -> Currency {
        self.base
    }

    /// The quote (payment) currency.
    pub fn quote(&self) -> Currency {
        self.quote
    }

    /// Number of resting offers.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Total base-currency liquidity on the book.
    pub fn liquidity(&self) -> Value {
        self.entries.iter().map(|e| e.remaining).sum()
    }

    /// The best (lowest) rate, if any offer rests.
    pub fn best_rate(&self) -> Option<Rate> {
        self.entries.first().map(|e| e.rate)
    }

    /// Inserts an offer selling `remaining` of base at `rate`.
    pub fn insert(&mut self, owner: AccountId, offer_seq: u32, remaining: Value, rate: Rate) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        let entry = BookEntry {
            owner,
            offer_seq,
            remaining,
            rate,
            arrival,
        };
        let pos = self
            .entries
            .partition_point(|e| (e.rate, e.arrival) <= (rate, arrival));
        self.entries.insert(pos, entry);
    }

    /// Removes an offer by identity; returns whether it was present.
    pub fn remove(&mut self, owner: AccountId, offer_seq: u32) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.owner == owner && e.offer_seq == offer_seq));
        self.entries.len() != before
    }

    /// Iterates entries best-first.
    pub fn iter(&self) -> impl Iterator<Item = &BookEntry> {
        self.entries.iter()
    }

    /// Quotes (without consuming) the cost of buying `amount` of base.
    /// Returns `None` if the book cannot cover the amount.
    pub fn quote_buy(&self, amount: Value) -> Option<Value> {
        let mut need = amount;
        let mut cost = Value::ZERO;
        for entry in &self.entries {
            if !need.is_positive() {
                break;
            }
            let take = if entry.remaining < need {
                entry.remaining
            } else {
                need
            };
            cost = cost + entry.rate.apply(take);
            need = need - take;
        }
        if need.is_positive() {
            None
        } else {
            Some(cost)
        }
    }

    /// Consumes liquidity to buy up to `amount` of base, best rate first.
    /// Thin books fill partially; the caller inspects
    /// [`FillOutcome::is_complete`].
    pub fn fill(&mut self, amount: Value) -> FillOutcome {
        if !amount.is_positive() {
            return FillOutcome::empty();
        }
        let mut need = amount;
        let mut out = FillOutcome::empty();
        let mut consumed = 0usize;
        for entry in self.entries.iter_mut() {
            if !need.is_positive() {
                break;
            }
            let take = if entry.remaining < need {
                entry.remaining
            } else {
                need
            };
            let paid = entry.rate.apply(take);
            out.parts.push(FillPart {
                owner: entry.owner,
                offer_seq: entry.offer_seq,
                taken: take,
                paid,
            });
            out.filled = out.filled + take;
            out.paid = out.paid + paid;
            need = need - take;
            entry.remaining = entry.remaining - take;
            if entry.remaining.is_zero() {
                consumed += 1;
            }
        }
        if consumed > 0 {
            self.entries.retain(|e| !e.remaining.is_zero());
        }
        out
    }
}

/// All order books in the system, keyed by `(base, quote)` pair, with XRP
/// auto-bridging quotes.
#[derive(Debug, Clone, Default)]
pub struct BookSet {
    books: HashMap<(Currency, Currency), OrderBook>,
}

impl BookSet {
    /// Creates an empty book set.
    pub fn new() -> BookSet {
        BookSet::default()
    }

    /// Builds the book set from the offers resting in a ledger. Offers are
    /// interpreted as selling `taker_gets.currency` for
    /// `taker_pays.currency`.
    pub fn from_ledger(state: &LedgerState) -> BookSet {
        let mut set = BookSet::new();
        for offer in state.offers() {
            let (gets_cur, gets_val) = flatten(&offer.taker_gets);
            let (pays_cur, pays_val) = flatten(&offer.taker_pays);
            if let Some(rate) = Rate::from_amounts(pays_val, gets_val) {
                set.book_mut(gets_cur, pays_cur).insert(
                    offer.owner,
                    offer.offer_seq,
                    gets_val,
                    rate,
                );
            }
        }
        set
    }

    /// The book for `(base, quote)`, creating it lazily.
    pub fn book_mut(&mut self, base: Currency, quote: Currency) -> &mut OrderBook {
        self.books
            .entry((base, quote))
            .or_insert_with(|| OrderBook::new(base, quote))
    }

    /// The book for `(base, quote)`, if it exists.
    pub fn book(&self, base: Currency, quote: Currency) -> Option<&OrderBook> {
        self.books.get(&(base, quote))
    }

    /// Number of non-empty books.
    pub fn book_count(&self) -> usize {
        self.books.values().filter(|b| b.depth() > 0).count()
    }

    /// Total resting offers across all books.
    pub fn total_offers(&self) -> usize {
        self.books.values().map(OrderBook::depth).sum()
    }

    /// Best effective rate to buy `amount` of `base` paying `quote`:
    /// considers the direct book and the XRP auto-bridge (`base` bought with
    /// XRP, XRP bought with `quote`). Returns the quote cost and whether the
    /// bridge was used.
    ///
    /// "XRPs can be used as a universal bridge between markets — any
    /// currency to XRP, then from XRP to any other currency." (§III.C)
    pub fn quote_with_bridge(
        &self,
        base: Currency,
        quote: Currency,
        amount: Value,
    ) -> Option<(Value, bool)> {
        let direct = self.book(base, quote).and_then(|b| b.quote_buy(amount));
        let bridged = if base != Currency::XRP && quote != Currency::XRP {
            self.book(base, Currency::XRP)
                .and_then(|leg1| leg1.quote_buy(amount))
                .and_then(|xrp_needed| {
                    self.book(Currency::XRP, quote)
                        .and_then(|leg2| leg2.quote_buy(xrp_needed))
                })
        } else {
            None
        };
        match (direct, bridged) {
            (Some(d), Some(b)) if b < d => Some((b, true)),
            (Some(d), _) => Some((d, false)),
            (None, Some(b)) => Some((b, true)),
            (None, None) => None,
        }
    }
}

fn flatten(amount: &Amount) -> (Currency, Value) {
    (amount.currency(), amount.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_ledger::Drops;

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn v(s: &str) -> Value {
        s.parse().unwrap()
    }

    #[test]
    fn best_rate_first() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("100"), Rate::new(12, 10));
        book.insert(acct(2), 1, v("100"), Rate::new(11, 10));
        assert_eq!(book.best_rate().unwrap(), Rate::new(11, 10));
        let fill = book.fill(v("50"));
        assert_eq!(fill.parts[0].owner, acct(2));
        assert_eq!(fill.paid, v("55"));
    }

    #[test]
    fn time_priority_within_same_rate() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("10"), Rate::UNIT);
        book.insert(acct(2), 1, v("10"), Rate::UNIT);
        let fill = book.fill(v("10"));
        assert_eq!(fill.parts.len(), 1);
        assert_eq!(fill.parts[0].owner, acct(1), "earlier offer fills first");
    }

    #[test]
    fn partial_fill_across_offers() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("30"), Rate::UNIT);
        book.insert(acct(2), 1, v("30"), Rate::new(2, 1));
        let fill = book.fill(v("50"));
        assert_eq!(fill.filled, v("50"));
        assert_eq!(fill.paid, v("30") + v("40"));
        assert_eq!(book.depth(), 1);
        assert_eq!(book.liquidity(), v("10"));
    }

    #[test]
    fn thin_book_fills_partially() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("5"), Rate::UNIT);
        let fill = book.fill(v("50"));
        assert_eq!(fill.filled, v("5"));
        assert!(!fill.is_complete(v("50")));
        assert_eq!(book.depth(), 0);
    }

    #[test]
    fn quote_does_not_mutate() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("100"), Rate::new(3, 2));
        assert_eq!(book.quote_buy(v("10")).unwrap(), v("15"));
        assert!(book.quote_buy(v("200")).is_none());
        assert_eq!(book.liquidity(), v("100"));
    }

    #[test]
    fn remove_by_identity() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 7, v("10"), Rate::UNIT);
        assert!(book.remove(acct(1), 7));
        assert!(!book.remove(acct(1), 7));
        assert_eq!(book.depth(), 0);
    }

    #[test]
    fn zero_amount_fill_is_empty() {
        let mut book = OrderBook::new(Currency::EUR, Currency::USD);
        book.insert(acct(1), 1, v("10"), Rate::UNIT);
        let fill = book.fill(Value::ZERO);
        assert!(fill.parts.is_empty());
        assert_eq!(book.depth(), 1);
    }

    #[test]
    fn bookset_builds_from_ledger_offers() {
        let mut state = LedgerState::new();
        state.create_account(acct(1), Drops::from_xrp(1_000));
        state
            .place_offer(
                acct(1),
                1,
                ripple_ledger::IouAmount::new(v("100"), Currency::EUR, acct(1)).into(),
                ripple_ledger::IouAmount::new(v("110"), Currency::USD, acct(1)).into(),
            )
            .unwrap();
        let set = BookSet::from_ledger(&state);
        assert_eq!(set.total_offers(), 1);
        let book = set.book(Currency::EUR, Currency::USD).unwrap();
        assert_eq!(book.best_rate().unwrap(), Rate::new(11, 10));
    }

    #[test]
    fn bridge_beats_expensive_direct() {
        let mut set = BookSet::new();
        // Direct EUR/USD is expensive: 2.0.
        set.book_mut(Currency::EUR, Currency::USD)
            .insert(acct(1), 1, v("1000"), Rate::new(2, 1));
        // Bridge: EUR costs 4 XRP, 1 XRP costs 0.3 USD => 1.2 USD/EUR.
        set.book_mut(Currency::EUR, Currency::XRP)
            .insert(acct(2), 1, v("1000"), Rate::new(4, 1));
        set.book_mut(Currency::XRP, Currency::USD)
            .insert(acct(3), 1, v("10000"), Rate::new(3, 10));
        let (cost, bridged) = set
            .quote_with_bridge(Currency::EUR, Currency::USD, v("100"))
            .unwrap();
        assert!(bridged);
        assert_eq!(cost, v("120"));
    }

    #[test]
    fn direct_used_when_cheaper() {
        let mut set = BookSet::new();
        set.book_mut(Currency::EUR, Currency::USD)
            .insert(acct(1), 1, v("1000"), Rate::new(11, 10));
        set.book_mut(Currency::EUR, Currency::XRP)
            .insert(acct(2), 1, v("1000"), Rate::new(4, 1));
        set.book_mut(Currency::XRP, Currency::USD)
            .insert(acct(3), 1, v("10000"), Rate::new(1, 2));
        let (cost, bridged) = set
            .quote_with_bridge(Currency::EUR, Currency::USD, v("100"))
            .unwrap();
        assert!(!bridged);
        assert_eq!(cost, v("110"));
    }

    #[test]
    fn no_liquidity_no_quote() {
        let set = BookSet::new();
        assert!(set
            .quote_with_bridge(Currency::EUR, Currency::USD, v("1"))
            .is_none());
    }
}
