//! Arbitrage detection and execution.
//!
//! "Ripple users can also try to take advantage of the exchange offers,
//! exploiting the price skew between two or more markets. This process,
//! called arbitrage, consists in buying assets at a competitive exchange
//! rate and then selling them immediately at a higher price. Arbitrage is
//! allowed by design in the Ripple exchange system and can also be
//! performed automatically, for example by a financial bot." (§III.C)

use ripple_ledger::{Currency, Value};
use serde::{Deserialize, Serialize};

use crate::book::BookSet;

/// A detected risk-free cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArbitrageOpportunity {
    /// The currency cycle, starting and ending at the funding currency
    /// (e.g. `[USD, EUR, USD]` for two legs, `[USD, BTC, EUR, USD]` for a
    /// triangle).
    pub cycle: Vec<Currency>,
    /// Gross multiplier per unit of the funding currency (> 1.0 means
    /// profit; 1.05 = 5% per round trip at the top of the books).
    pub multiplier: f64,
}

impl ArbitrageOpportunity {
    /// Profit per unit of funding currency (multiplier − 1).
    pub fn profit_rate(&self) -> f64 {
        self.multiplier - 1.0
    }
}

/// Scans every ordered currency pair for two-leg skews: buy `x` with `y`
/// on the `(x, y)` book, sell it back through the `(y, x)` book. Profitable
/// when the product of the two best rates is below 1.
pub fn find_two_leg(books: &BookSet, currencies: &[Currency]) -> Vec<ArbitrageOpportunity> {
    let mut out = Vec::new();
    for (i, &x) in currencies.iter().enumerate() {
        for &y in currencies.iter().skip(i + 1) {
            let Some(r1) = books.book(x, y).and_then(|b| b.best_rate()) else {
                continue;
            };
            let Some(r2) = books.book(y, x).and_then(|b| b.best_rate()) else {
                continue;
            };
            let product = r1.to_f64() * r2.to_f64();
            if product < 1.0 - 1e-9 {
                out.push(ArbitrageOpportunity {
                    cycle: vec![y, x, y],
                    multiplier: 1.0 / product,
                });
            }
        }
    }
    out.sort_by(|a, b| b.multiplier.partial_cmp(&a.multiplier).expect("finite"));
    out
}

/// Scans ordered currency triples for triangular skews: `y → x → z → y`
/// through the `(x, y)`, `(z, x)` and `(y, z)` books.
pub fn find_triangular(books: &BookSet, currencies: &[Currency]) -> Vec<ArbitrageOpportunity> {
    let mut out = Vec::new();
    for &x in currencies {
        for &y in currencies {
            for &z in currencies {
                if x == y || y == z || x == z {
                    continue;
                }
                let legs = [
                    books.book(x, y).and_then(|b| b.best_rate()),
                    books.book(z, x).and_then(|b| b.best_rate()),
                    books.book(y, z).and_then(|b| b.best_rate()),
                ];
                let [Some(r1), Some(r2), Some(r3)] = legs else {
                    continue;
                };
                let product = r1.to_f64() * r2.to_f64() * r3.to_f64();
                if product < 1.0 - 1e-9 {
                    out.push(ArbitrageOpportunity {
                        cycle: vec![y, x, z, y],
                        multiplier: 1.0 / product,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| b.multiplier.partial_cmp(&a.multiplier).expect("finite"));
    out
}

/// Outcome of executing a two-leg cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbitrageExecution {
    /// Funding currency spent.
    pub spent: Value,
    /// Funding currency received after the round trip.
    pub received: Value,
}

impl ArbitrageExecution {
    /// Net profit in the funding currency.
    pub fn profit(&self) -> Value {
        self.received - self.spent
    }
}

/// Executes a two-leg cycle `y → x → y` against the books, taking at most
/// `budget` of the funding currency. Consumes liquidity (the bot's trades
/// move the market: running it again finds a smaller or no skew).
///
/// Returns `None` if either side lacks a book or the top-of-book skew is
/// not profitable.
pub fn execute_two_leg(
    books: &mut BookSet,
    x: Currency,
    y: Currency,
    budget: Value,
) -> Option<ArbitrageExecution> {
    let r1 = books.book(x, y)?.best_rate()?;
    let r2 = books.book(y, x)?.best_rate()?;
    if r1.to_f64() * r2.to_f64() >= 1.0 - 1e-9 {
        return None;
    }
    // Size: the x obtainable for the budget, capped by both books' top
    // liquidity.
    let buy_book = books.book(x, y).expect("checked");
    let x_affordable = r1.invert_apply(budget);
    let x_available = buy_book.iter().next().map(|e| e.remaining)?;
    let sell_book = books.book(y, x).expect("checked");
    let y_available = sell_book.iter().next().map(|e| e.remaining)?;
    // Selling x for y on the (y, x) book: we *take* y liquidity, paying x
    // at rate r2 (x per y). x needed to exhaust that level: r2.apply(y).
    let x_sellable = r2.apply(y_available);
    let size_x = [x_affordable, x_available, x_sellable]
        .into_iter()
        .min()
        .expect("non-empty");
    if !size_x.is_positive() {
        return None;
    }
    // Leg 1: buy size_x of x, paying y.
    let leg1 = books.book_mut(x, y).fill(size_x);
    // Leg 2: spend the x to take y liquidity.
    let y_target = r2.invert_apply(leg1.filled);
    let leg2 = books.book_mut(y, x).fill(y_target);
    Some(ArbitrageExecution {
        spent: leg1.paid,
        received: leg2.filled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Rate;
    use ripple_crypto::AccountId;

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn v(s: &str) -> Value {
        s.parse().unwrap()
    }

    /// EUR/USD skew: buy EUR at 1.00 USD, sell EUR at 1.10 USD.
    fn skewed_books() -> BookSet {
        let mut books = BookSet::new();
        // (EUR, USD): someone sells EUR cheap.
        books
            .book_mut(Currency::EUR, Currency::USD)
            .insert(acct(1), 1, v("1000"), Rate::new(1, 1));
        // (USD, EUR): someone sells USD cheap in EUR terms — i.e. buys EUR
        // dear: 1 USD costs 0.9 EUR => selling 1 EUR nets ~1.11 USD.
        books.book_mut(Currency::USD, Currency::EUR).insert(
            acct(2),
            1,
            v("1000"),
            Rate::new(9, 10),
        );
        books
    }

    fn consistent_books() -> BookSet {
        let mut books = BookSet::new();
        books.book_mut(Currency::EUR, Currency::USD).insert(
            acct(1),
            1,
            v("1000"),
            Rate::new(11, 10),
        );
        books.book_mut(Currency::USD, Currency::EUR).insert(
            acct(2),
            1,
            v("1000"),
            Rate::new(10, 11),
        );
        books
    }

    #[test]
    fn detects_two_leg_skew() {
        let books = skewed_books();
        let found = find_two_leg(&books, &[Currency::EUR, Currency::USD]);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].profit_rate() > 0.1,
            "rate = {}",
            found[0].profit_rate()
        );
        assert_eq!(found[0].cycle.len(), 3);
    }

    #[test]
    fn no_false_positive_on_consistent_rates() {
        let books = consistent_books();
        assert!(find_two_leg(&books, &[Currency::EUR, Currency::USD]).is_empty());
    }

    #[test]
    fn execution_realizes_profit_and_closes_the_gap() {
        let mut books = skewed_books();
        let execution =
            execute_two_leg(&mut books, Currency::EUR, Currency::USD, v("500")).expect("skew");
        assert!(
            execution.profit().is_positive(),
            "profit = {}",
            execution.profit()
        );
        // The consumed liquidity removes (or shrinks) the opportunity.
        let remaining = find_two_leg(&books, &[Currency::EUR, Currency::USD]);
        if let Some(op) = remaining.first() {
            // Any residue must not exceed the original skew.
            assert!(op.multiplier <= 1.12);
        }
    }

    #[test]
    fn execution_declines_unprofitable_cycles() {
        let mut books = consistent_books();
        assert!(execute_two_leg(&mut books, Currency::EUR, Currency::USD, v("500")).is_none());
    }

    #[test]
    fn detects_triangular_cycle() {
        let mut books = BookSet::new();
        // USD -> BTC -> EUR -> USD with a 5% total skew.
        // (BTC, USD): 1 BTC costs 100 USD.
        books
            .book_mut(Currency::BTC, Currency::USD)
            .insert(acct(1), 1, v("10"), Rate::new(100, 1));
        // (EUR, BTC): 1 EUR costs 0.011 BTC => 1 BTC buys ~90.9 EUR.
        books.book_mut(Currency::EUR, Currency::BTC).insert(
            acct(2),
            1,
            v("1000"),
            Rate::new(11, 1000),
        );
        // (USD, EUR): 1 USD costs 0.85 EUR => 90.9 EUR buys ~107 USD.
        books.book_mut(Currency::USD, Currency::EUR).insert(
            acct(3),
            1,
            v("1000"),
            Rate::new(85, 100),
        );
        let found = find_triangular(&books, &[Currency::USD, Currency::EUR, Currency::BTC]);
        assert!(!found.is_empty());
        let best = &found[0];
        assert!(best.multiplier > 1.0);
        assert_eq!(best.cycle.len(), 4);
        assert_eq!(best.cycle.first(), best.cycle.last());
    }

    #[test]
    fn missing_books_are_skipped() {
        let books = BookSet::new();
        assert!(find_two_leg(&books, &[Currency::EUR, Currency::USD]).is_empty());
        assert!(find_triangular(&books, &[Currency::EUR, Currency::USD, Currency::BTC]).is_empty());
    }
}
