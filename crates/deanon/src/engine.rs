//! The sharded, single-pass Figure 3 information-gain engine.
//!
//! At paper scale the Fig. 3 sweep fingerprints 23M payments under 10
//! resolution specs. The naive approach — one full pass per spec, each
//! building a `HashMap` keyed by 40+-byte [`Fingerprint`] structs — reads
//! the history ten times and hashes ten large keys per payment. This engine
//! does the whole sweep in **one pass**:
//!
//! 1. **Shard.** The record slice is partitioned across scoped worker
//!    threads (`std::thread::scope`; no external dependencies).
//! 2. **Scan.** Each worker walks its shard once. Per record it memoizes
//!    the *coarsening ladder* — every [`TimeResolution`] truncation and
//!    every `(CurrencyStrength, AmountResolution)` rounding is computed
//!    once — then derives, for **all** specs, a compact 16-byte digest of
//!    the coarsened tuple ([`ripple_crypto::mix128`]) and bumps a per-shard
//!    `digest → (count, sender, mixed)` table.
//! 3. **Merge.** Shard tables are pre-partitioned by digest key-range, so
//!    the merge fans out over `(spec, key-range)` tasks with no locking;
//!    each task folds the shard maps for its range and emits class counts.
//!
//! The output carries both Fig. 3 metrics per row — the strict
//! [`information_gain`] (`count == 1` classes) and the attacker-friendly
//! [`sender_information_gain`] (single-sender classes) — plus engine
//! telemetry: per-phase wall time, peak class count, payments/sec.
//!
//! The engine is *exactly* equivalent to the serial metrics (see the
//! `fig3_engine_equiv` golden test): digests are 128 bits, so an accidental
//! class merge needs a `mix128` collision (~2⁻¹²⁸ per pair).
//!
//! [`Fingerprint`]: crate::fingerprint::Fingerprint
//! [`information_gain`]: crate::ig::information_gain
//! [`sender_information_gain`]: crate::ig::sender_information_gain

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

use ripple_crypto::{mix128, AccountId};
use ripple_ledger::PaymentRecord;
use ripple_obs::{metrics, span, LazyCounter, LazyHistogram, LazyTimer};

use crate::fingerprint::ResolutionSpec;
use crate::ig::IgResult;
use crate::resolution::{AmountResolution, CurrencyStrength, TimeResolution};

/// Tuning knobs for the sweep engine. `0` (the default) means "pick a sane
/// default": available parallelism for `shards`, 16 for `merge_ranges`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Scan workers (and record partitions). `0` → available parallelism.
    pub shards: usize,
    /// Key-range partitions per spec for the merge phase. `0` → 16.
    pub merge_ranges: usize,
}

impl EngineConfig {
    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    fn resolved_ranges(&self) -> usize {
        if self.merge_ranges > 0 {
            self.merge_ranges
        } else {
            16
        }
    }
}

/// One Figure 3 row as computed by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowSweep {
    /// The paper's notation label, e.g. `<Am; Tsc; -; D>`.
    pub label: &'static str,
    /// The resolution spec behind the label.
    pub spec: ResolutionSpec,
    /// Strict metric: payments whose fingerprint is globally unique.
    pub strict: IgResult,
    /// Attack metric: payments in single-sender fingerprint classes.
    pub sender: IgResult,
    /// Number of distinct fingerprint classes under this spec.
    pub classes: u64,
}

/// Engine telemetry for one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Payments scanned.
    pub payments: u64,
    /// Scan workers used.
    pub shards: usize,
    /// Key-range partitions per spec in the merge phase.
    pub merge_ranges: usize,
    /// Wall time of the scan phase (seconds).
    pub scan_secs: f64,
    /// Wall time of the merge phase (seconds).
    pub merge_secs: f64,
    /// End-to-end wall time (seconds).
    pub total_secs: f64,
    /// Largest class count across specs (memory high-water proxy).
    pub peak_classes: u64,
}

impl EngineStats {
    /// Sweep throughput: payments scanned per wall-clock second (all specs
    /// covered in that single scan).
    pub fn payments_per_sec(&self) -> f64 {
        if self.total_secs > 0.0 {
            self.payments as f64 / self.total_secs
        } else {
            0.0
        }
    }
}

/// The full result of a sweep: per-row metrics plus telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Sweep {
    /// One entry per requested row, in request order.
    pub rows: Vec<RowSweep>,
    /// Engine telemetry.
    pub stats: EngineStats,
}

/// Per-class accumulator: enough state for both Fig. 3 metrics.
#[derive(Debug, Clone, Copy)]
struct ClassAcc {
    count: u64,
    sender: AccountId,
    mixed: bool,
}

/// The memoized coarsening ladder of one record: every time truncation and
/// every amount rounding computed exactly once, indexed by resolution.
struct Ladder {
    times: [u64; 4],
    amounts: [i128; 4],
}

fn amount_slot(res: AmountResolution) -> usize {
    match res {
        AmountResolution::Maximum => 0,
        AmountResolution::High => 1,
        AmountResolution::Average => 2,
        AmountResolution::Low => 3,
    }
}

fn time_slot(res: TimeResolution) -> usize {
    match res {
        TimeResolution::Seconds => 0,
        TimeResolution::Minutes => 1,
        TimeResolution::Hours => 2,
        TimeResolution::Days => 3,
    }
}

impl Ladder {
    fn of(record: &PaymentRecord) -> Ladder {
        let strength = CurrencyStrength::of(record.currency);
        let t = record.timestamp;
        let mut times = [0u64; 4];
        for res in TimeResolution::all() {
            times[time_slot(res)] = res.coarsen(t).seconds();
        }
        let mut amounts = [0i128; 4];
        for res in AmountResolution::all() {
            amounts[amount_slot(res)] = res.round_for(strength, record.amount).raw();
        }
        Ladder { times, amounts }
    }
}

/// A [`ResolutionSpec`] with its ladder slots resolved once per sweep, so
/// the per-record digest loop does no enum matching.
#[derive(Clone, Copy)]
struct SpecPlan {
    amount_slot: Option<usize>,
    time_slot: Option<usize>,
    currency: bool,
    destination: bool,
}

impl SpecPlan {
    fn of(spec: ResolutionSpec) -> SpecPlan {
        SpecPlan {
            amount_slot: spec.amount.map(amount_slot),
            time_slot: spec.time.map(time_slot),
            currency: spec.currency,
            destination: spec.destination,
        }
    }
}

/// Packs the coarsened tuple of `record` under `plan` and digests it to 16
/// bytes. A leading presence bitmask keeps absent fields distinct from
/// zero-valued ones.
fn digest(record: &PaymentRecord, ladder: &Ladder, plan: &SpecPlan) -> u128 {
    let mut buf = [0u8; 48];
    let mut flags = 0u8;
    if let Some(slot) = plan.amount_slot {
        flags |= 1;
        buf[1..17].copy_from_slice(&ladder.amounts[slot].to_le_bytes());
    }
    if let Some(slot) = plan.time_slot {
        flags |= 2;
        buf[17..25].copy_from_slice(&ladder.times[slot].to_le_bytes());
    }
    if plan.currency {
        flags |= 4;
        buf[25..28].copy_from_slice(record.currency.as_bytes());
    }
    if plan.destination {
        flags |= 8;
        buf[28..48].copy_from_slice(record.destination.as_bytes());
    }
    buf[0] = flags;
    mix128(&buf)
}

/// Digest keys are already uniformly mixed by [`mix128`]; re-hashing them
/// through SipHash would dominate the scan. This hasher passes the low 64
/// bits of the digest straight through (the merge phase partitions on the
/// *high* 64 bits, so bucket index and key-range stay independent).
#[derive(Default)]
struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only `u128` digests are ever keyed; fold whatever arrives.
        for chunk in bytes.chunks(8) {
            let mut lo = [0u8; 8];
            lo[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(lo);
        }
    }

    fn write_u128(&mut self, n: u128) {
        self.0 = n as u64;
    }
}

/// A digest-keyed class table with pass-through hashing.
type ClassMap = HashMap<u128, ClassAcc, BuildHasherDefault<DigestHasher>>;

/// Merge-phase partition of a digest: high 64 bits, cheap `u64` modulo
/// (a `u128` modulo lowers to a libcall and shows up at 23M-payment scale).
fn range_of(key: u128, ranges: usize) -> usize {
    ((key >> 64) as u64 % ranges as u64) as usize
}

/// `[spec][key-range] → digest → class accumulator` for one shard.
type ShardTable = Vec<Vec<ClassMap>>;

/// Records digested per buffered block of the scan. Blocking matters for
/// locality: with ten specs' class tables live at once the working set far
/// exceeds cache, so interleaving probes across all ten maps per record
/// thrashes. Digesting a block first and then flushing it one spec at a
/// time keeps each burst of probes inside a single spec's tables.
const SCAN_BLOCK: usize = 1024;

// Engine instrumentation. Record counts, per-task class sizes, and digest
// collisions depend only on the data and the (fixed) range partitioning,
// so they live in the deterministic sections of the metrics snapshot;
// per-shard and per-task wall times are timers.
static SCAN_RECORDS: LazyCounter = LazyCounter::new("deanon.scan.records");
static SCAN_SHARD_NS: LazyTimer = LazyTimer::new("deanon.scan.shard_ns");
static MERGE_TASK_NS: LazyTimer = LazyTimer::new("deanon.merge.task_ns");
static MERGE_CLASSES: LazyHistogram = LazyHistogram::new("deanon.merge.classes");
static DIGEST_COLLISIONS: LazyCounter = LazyCounter::new("deanon.merge.low64_collisions");

fn scan_chunk<R: Borrow<PaymentRecord>>(
    chunk: &[R],
    specs: &[ResolutionSpec],
    ranges: usize,
) -> ShardTable {
    let _span = span("deanon", "scan_shard");
    let t_shard = Instant::now();
    let plans: Vec<SpecPlan> = specs.iter().map(|&spec| SpecPlan::of(spec)).collect();
    let mut table: ShardTable = specs
        .iter()
        .map(|_| (0..ranges).map(|_| ClassMap::default()).collect())
        .collect();
    let mut keys = vec![0u128; plans.len() * SCAN_BLOCK];
    for block in chunk.chunks(SCAN_BLOCK) {
        for (i, record) in block.iter().enumerate() {
            let record = record.borrow();
            let ladder = Ladder::of(record);
            for (spec_idx, plan) in plans.iter().enumerate() {
                keys[spec_idx * SCAN_BLOCK + i] = digest(record, &ladder, plan);
            }
        }
        for (spec_idx, maps) in table.iter_mut().enumerate() {
            for (i, record) in block.iter().enumerate() {
                let sender = record.borrow().sender;
                let key = keys[spec_idx * SCAN_BLOCK + i];
                maps[range_of(key, ranges)]
                    .entry(key)
                    .and_modify(|acc| {
                        acc.count += 1;
                        if acc.sender != sender {
                            acc.mixed = true;
                        }
                    })
                    .or_insert(ClassAcc {
                        count: 1,
                        sender,
                        mixed: false,
                    });
            }
        }
    }
    SCAN_RECORDS.add(chunk.len() as u64);
    SCAN_SHARD_NS.record(t_shard.elapsed());
    table
}

/// Folded statistics of one `(spec, key-range)` merge task.
struct RangeStats {
    spec_idx: usize,
    classes: u64,
    strict_unique: u64,
    sender_unique: u64,
}

fn merge_task(spec_idx: usize, mut maps: Vec<ClassMap>) -> RangeStats {
    let _span = span("deanon", "merge_task");
    let t_task = Instant::now();
    // Fold into the largest shard map to minimize rehashing.
    let base_idx = maps
        .iter()
        .enumerate()
        .max_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut acc = if maps.is_empty() {
        ClassMap::default()
    } else {
        maps.swap_remove(base_idx)
    };
    for map in maps {
        for (key, class) in map {
            acc.entry(key)
                .and_modify(|a| {
                    a.count += class.count;
                    if a.sender != class.sender {
                        a.mixed = true;
                    }
                    a.mixed |= class.mixed;
                })
                .or_insert(class);
        }
    }
    let mut stats = RangeStats {
        spec_idx,
        classes: acc.len() as u64,
        strict_unique: 0,
        sender_unique: 0,
    };
    for class in acc.values() {
        if class.count == 1 {
            stats.strict_unique += 1;
        }
        if !class.mixed {
            stats.sender_unique += class.count;
        }
    }
    if metrics::enabled() {
        // Distinct digests sharing low 64 bits: these collide in the
        // pass-through-hashed class tables (same bucket, different class).
        // Counting them validates the DigestHasher shortcut from artifacts
        // instead of trusting the 2^-64 birthday argument blindly.
        let mut low: Vec<u64> = acc.keys().map(|&k| k as u64).collect();
        low.sort_unstable();
        let collisions = low.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        DIGEST_COLLISIONS.add(collisions);
        MERGE_CLASSES.record(acc.len() as u64);
    }
    MERGE_TASK_NS.record(t_task.elapsed());
    stats
}

/// Runs the sharded single-pass sweep over `records` for the given
/// `(label, spec)` rows.
///
/// Generic over `&[PaymentRecord]` and `&[&PaymentRecord]` so both owned
/// arenas and borrowed views feed the engine without copying.
pub fn sweep<R: Borrow<PaymentRecord> + Sync>(
    records: &[R],
    rows: &[(&'static str, ResolutionSpec)],
    config: EngineConfig,
) -> Fig3Sweep {
    let t_start = Instant::now();
    let shards = config.resolved_shards().max(1);
    let ranges = config.resolved_ranges().max(1);
    let specs: Vec<ResolutionSpec> = rows.iter().map(|&(_, spec)| spec).collect();

    // Phase 1: sharded scan.
    let shard_tables: Vec<ShardTable> = if records.is_empty() {
        Vec::new()
    } else {
        let chunk_size = records.len().div_ceil(shards);
        let specs_ref = &specs;
        std::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || scan_chunk(chunk, specs_ref, ranges)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker must not panic"))
                .collect()
        })
    };
    let scan_secs = t_start.elapsed().as_secs_f64();

    // Phase 2: transpose to (spec, key-range) tasks and merge in parallel.
    let t_merge = Instant::now();
    let mut tasks: Vec<(usize, Vec<ClassMap>)> = (0..specs.len())
        .flat_map(|spec_idx| (0..ranges).map(move |_| (spec_idx, Vec::new())))
        .collect();
    for table in shard_tables {
        for (spec_idx, spec_maps) in table.into_iter().enumerate() {
            for (range, map) in spec_maps.into_iter().enumerate() {
                tasks[spec_idx * ranges + range].1.push(map);
            }
        }
    }
    let workers = shards.min(tasks.len()).max(1);
    let mut groups: Vec<Vec<(usize, Vec<ClassMap>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        groups[i % workers].push(task);
    }
    let range_stats: Vec<RangeStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || {
                    group
                        .into_iter()
                        .map(|(spec_idx, maps)| merge_task(spec_idx, maps))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("merge worker must not panic"))
            .collect()
    });
    let merge_secs = t_merge.elapsed().as_secs_f64();

    // Phase 3: reduce ranges into per-row results.
    let total = records.len() as u64;
    let mut out: Vec<RowSweep> = rows
        .iter()
        .map(|&(label, spec)| RowSweep {
            label,
            spec,
            strict: IgResult { unique: 0, total },
            sender: IgResult { unique: 0, total },
            classes: 0,
        })
        .collect();
    for stats in range_stats {
        let row = &mut out[stats.spec_idx];
        row.strict.unique += stats.strict_unique;
        row.sender.unique += stats.sender_unique;
        row.classes += stats.classes;
    }
    let peak_classes = out.iter().map(|r| r.classes).max().unwrap_or(0);

    Fig3Sweep {
        rows: out,
        stats: EngineStats {
            payments: total,
            shards,
            merge_ranges: ranges,
            scan_secs,
            merge_secs,
            total_secs: t_start.elapsed().as_secs_f64(),
            peak_classes,
        },
    }
}

/// Runs the engine over the paper's ten Figure 3 rows.
pub fn figure3_sweep<R: Borrow<PaymentRecord> + Sync>(
    records: &[R],
    config: EngineConfig,
) -> Fig3Sweep {
    sweep(records, &ResolutionSpec::figure3_rows(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ig::{information_gain, sender_information_gain};
    use ripple_crypto::sha512_half;
    use ripple_ledger::{Currency, PathSummary, RippleTime};

    fn rec(sender: u8, amount: &str, secs: u64, currency: Currency, dest: u8) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[sender, dest, secs as u8]),
            sender: AccountId::from_bytes([sender; 20]),
            destination: AccountId::from_bytes([dest; 20]),
            currency,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    fn mixed_history() -> Vec<PaymentRecord> {
        let mut records = Vec::new();
        for i in 0..60u8 {
            records.push(rec(i % 7, "44", (i as u64) * 61, Currency::USD, 1));
            records.push(rec(
                i % 5,
                &format!("{}", 100 + i as u32 * 3),
                i as u64 * 61 + 13,
                Currency::BTC,
                2,
            ));
            records.push(rec(3, "1234567", i as u64 * 7, Currency::MTL, 3));
        }
        records
    }

    #[test]
    fn engine_matches_serial_metrics_for_every_row() {
        let records = mixed_history();
        for shards in [1, 2, 5] {
            let sweep = figure3_sweep(
                &records,
                EngineConfig {
                    shards,
                    merge_ranges: 4,
                },
            );
            for row in &sweep.rows {
                let strict = information_gain(records.iter(), row.spec);
                let sender = sender_information_gain(records.iter(), row.spec);
                assert_eq!(row.strict, strict, "{} strict ({shards} shards)", row.label);
                assert_eq!(row.sender, sender, "{} sender ({shards} shards)", row.label);
            }
        }
    }

    #[test]
    fn empty_history_sweeps_to_zero() {
        let records: Vec<PaymentRecord> = Vec::new();
        let sweep = figure3_sweep(&records, EngineConfig::default());
        assert_eq!(sweep.rows.len(), 10);
        for row in &sweep.rows {
            assert_eq!(row.strict.total, 0);
            assert_eq!(row.strict.unique, 0);
            assert_eq!(row.classes, 0);
        }
        assert_eq!(sweep.stats.payments, 0);
    }

    #[test]
    fn ref_slices_and_owned_slices_agree() {
        let records = mixed_history();
        let refs: Vec<&PaymentRecord> = records.iter().collect();
        let owned = figure3_sweep(&records, EngineConfig::default());
        let borrowed = figure3_sweep(&refs, EngineConfig::default());
        assert_eq!(owned.rows, borrowed.rows);
    }

    #[test]
    fn stats_are_instrumented() {
        let records = mixed_history();
        let sweep = figure3_sweep(
            &records,
            EngineConfig {
                shards: 2,
                merge_ranges: 0,
            },
        );
        assert_eq!(sweep.stats.payments, records.len() as u64);
        assert_eq!(sweep.stats.shards, 2);
        assert_eq!(sweep.stats.merge_ranges, 16);
        assert!(sweep.stats.total_secs > 0.0);
        assert!(sweep.stats.payments_per_sec() > 0.0);
        // The full-resolution row dominates the class count.
        let full_classes = sweep.rows[0].classes;
        assert_eq!(sweep.stats.peak_classes, full_classes);
    }

    #[test]
    fn classes_count_distinct_fingerprints() {
        // 3 distinct full-resolution fingerprints: two identical lattes and
        // one rent payment at another time/destination.
        let records = vec![
            rec(1, "4.5", 100, Currency::USD, 9),
            rec(2, "4.5", 100, Currency::USD, 9),
            rec(1, "850", 999, Currency::USD, 7),
        ];
        let sweep = figure3_sweep(&records, EngineConfig::default());
        assert_eq!(sweep.rows[0].classes, 2);
        assert_eq!(sweep.rows[0].strict.unique, 1);
        assert_eq!(sweep.rows[0].sender.unique, 1);
    }
}
