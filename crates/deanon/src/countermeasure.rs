//! The countermeasure §V discusses — and why it fails in Ripple.
//!
//! "A possible solution is to create multiple Bitcoin wallets unique to
//! every single transaction […] However, a similar approach is difficult to
//! achieve in Ripple due to its underlying trust backbone — every new
//! wallet would need to create enough new trustlines in order to perform
//! transactions. This makes the bootstrapping very complex and expensive.
//! In addition, each wallet would require to be trusted by the receiver of
//! the payment, decreasing the usability of the system and possibly
//! allowing the different wallets to be linked back together."
//!
//! This module quantifies all three claims:
//!
//! 1. [`split_wallets`] rewrites a history as if every user rotated across
//!    `k` wallets; [`WalletSplitReport`] shows how much of a user's profile
//!    a single de-anonymized observation still exposes.
//! 2. The bootstrapping bill: new trust lines and XRP reserves per wallet.
//! 3. [`link_wallets_by_habit`] re-links the split wallets through shared
//!    rare destinations — the habit structure that defeated the split.

use std::collections::HashMap;

use ripple_crypto::{sha512_half, AccountId};
use ripple_ledger::{Currency, FeeSchedule, PaymentRecord};
use serde::{Deserialize, Serialize};

use crate::fingerprint::ResolutionSpec;
use crate::ig::{information_gain, IgResult};

/// Cost and privacy outcome of a `k`-wallet split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalletSplitReport {
    /// Wallets per original user.
    pub wallets_per_user: usize,
    /// Strict fingerprint IG before the split.
    pub ig_before: IgResult,
    /// Strict fingerprint IG after (barely moves: single payments stay
    /// unique — the split protects the *profile*, not the payment).
    pub ig_after: IgResult,
    /// Average fraction of a user's payments exposed by de-anonymizing one
    /// wallet (1.0 without the split, ≈1/k with it).
    pub profile_exposure: f64,
    /// New wallet accounts created.
    pub new_wallets: u64,
    /// New trust lines those wallets must bootstrap (one per currency each
    /// wallet transacts in).
    pub extra_trust_lines: u64,
    /// XRP locked in reserves by the split (base reserve per wallet plus
    /// owner reserve per trust line).
    pub reserve_cost_xrp: u64,
}

/// Derives the `slot`-th wallet identity of `owner`.
pub fn wallet_of(owner: AccountId, slot: usize) -> AccountId {
    let mut seed = Vec::with_capacity(28);
    seed.extend_from_slice(b"wallet:");
    seed.extend_from_slice(owner.as_bytes());
    seed.extend_from_slice(&(slot as u32).to_be_bytes());
    let digest = sha512_half(&seed);
    let mut bytes = [0u8; 20];
    bytes.copy_from_slice(&digest.as_bytes()[..20]);
    AccountId::from_bytes(bytes)
}

/// Rewrites a history as if each sender rotated round-robin across `k`
/// wallets, and prices the consequences.
///
/// # Examples
///
/// ```
/// use ripple_deanon::{split_wallets, ResolutionSpec};
/// use ripple_ledger::FeeSchedule;
///
/// let (split, report) = split_wallets(&[], 4, ResolutionSpec::full(), &FeeSchedule::mainnet());
/// assert!(split.is_empty());
/// assert_eq!(report.wallets_per_user, 4);
/// ```
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn split_wallets(
    records: &[PaymentRecord],
    k: usize,
    spec: ResolutionSpec,
    fees: &FeeSchedule,
) -> (Vec<PaymentRecord>, WalletSplitReport) {
    assert!(k > 0, "at least one wallet per user");
    let ig_before = information_gain(records.iter(), spec);

    let mut rotation: HashMap<AccountId, usize> = HashMap::new();
    let mut wallet_currencies: HashMap<AccountId, Vec<Currency>> = HashMap::new();
    let mut split: Vec<PaymentRecord> = Vec::with_capacity(records.len());
    for record in records {
        let slot = rotation.entry(record.sender).or_insert(0);
        let wallet = wallet_of(record.sender, *slot);
        *slot = (*slot + 1) % k;
        let currencies = wallet_currencies.entry(wallet).or_default();
        if !currencies.contains(&record.currency) {
            currencies.push(record.currency);
        }
        split.push(PaymentRecord {
            sender: wallet,
            ..record.clone()
        });
    }

    let ig_after = information_gain(split.iter(), spec);

    // Profile exposure: a de-anonymized wallet reveals its own payments;
    // exposure is that share of the true owner's total.
    let mut per_owner: HashMap<AccountId, u64> = HashMap::new();
    for record in records {
        *per_owner.entry(record.sender).or_insert(0) += 1;
    }
    let mut per_wallet: HashMap<AccountId, (AccountId, u64)> = HashMap::new();
    let mut rotation2: HashMap<AccountId, usize> = HashMap::new();
    for record in records {
        let slot = rotation2.entry(record.sender).or_insert(0);
        let wallet = wallet_of(record.sender, *slot);
        *slot = (*slot + 1) % k;
        let entry = per_wallet.entry(wallet).or_insert((record.sender, 0));
        entry.1 += 1;
    }
    let exposure_sum: f64 = per_wallet
        .values()
        .map(|&(owner, count)| count as f64 / per_owner[&owner] as f64 * count as f64)
        .sum();
    let profile_exposure = exposure_sum / records.len().max(1) as f64;

    let new_wallets = per_wallet.len() as u64;
    let extra_trust_lines: u64 = wallet_currencies
        .values()
        .map(|currencies| currencies.iter().filter(|c| !c.is_xrp()).count() as u64)
        .sum();
    let reserve_cost_xrp = (new_wallets * fees.base_reserve.as_drops()
        + extra_trust_lines * fees.owner_reserve.as_drops())
        / 1_000_000;

    let report = WalletSplitReport {
        wallets_per_user: k,
        ig_before,
        ig_after,
        profile_exposure,
        new_wallets,
        extra_trust_lines,
        reserve_cost_xrp,
    };
    (split, report)
}

/// Result of the habit-linking attack against a wallet split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Wallet clusters found (each a set of wallets believed co-owned).
    pub clusters: Vec<Vec<AccountId>>,
    /// Fraction of correctly re-linked wallet pairs among all true pairs.
    pub recall: f64,
    /// Fraction of proposed pairs that are actually co-owned.
    pub precision: f64,
}

/// Re-links split wallets through shared *habits*: if two wallets repeat
/// the same rare `(destination, amount)` pair (the user's exact latte at
/// the same bar), they are probably the same person — the linkage §V
/// warns about. `max_popularity` bounds how many distinct wallets may
/// share a habit pair before it stops being evidence (popular menu prices
/// at popular merchants prove nothing).
pub fn link_wallets_by_habit(
    split_records: &[PaymentRecord],
    true_owner: &HashMap<AccountId, AccountId>,
    max_popularity: usize,
) -> LinkReport {
    // (destination, exact amount) -> distinct paying wallets.
    let mut payers: HashMap<(AccountId, i128), Vec<AccountId>> = HashMap::new();
    for record in split_records {
        let entry = payers
            .entry((record.destination, record.amount.raw()))
            .or_default();
        if !entry.contains(&record.sender) {
            entry.push(record.sender);
        }
    }
    // Union-find over wallets sharing a rare destination.
    let mut parent: HashMap<AccountId, AccountId> = HashMap::new();
    fn find(parent: &mut HashMap<AccountId, AccountId>, x: AccountId) -> AccountId {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    for wallets in payers.values() {
        if wallets.len() < 2 || wallets.len() > max_popularity {
            continue;
        }
        let first = wallets[0];
        for &other in &wallets[1..] {
            let a = find(&mut parent, first);
            let b = find(&mut parent, other);
            if a != b {
                parent.insert(a, b);
            }
        }
    }
    // Materialize clusters.
    let mut clusters_map: HashMap<AccountId, Vec<AccountId>> = HashMap::new();
    let wallets: Vec<AccountId> = parent.keys().copied().collect();
    for wallet in wallets {
        let root = find(&mut parent, wallet);
        clusters_map.entry(root).or_default().push(wallet);
    }
    let clusters: Vec<Vec<AccountId>> =
        clusters_map.into_values().filter(|c| c.len() > 1).collect();

    // Score proposed pairs against ground truth.
    let mut proposed_pairs = 0u64;
    let mut correct_pairs = 0u64;
    for cluster in &clusters {
        for i in 0..cluster.len() {
            for j in i + 1..cluster.len() {
                proposed_pairs += 1;
                if true_owner.get(&cluster[i]) == true_owner.get(&cluster[j]) {
                    correct_pairs += 1;
                }
            }
        }
    }
    // All true co-owned pairs.
    let mut per_owner: HashMap<AccountId, u64> = HashMap::new();
    for owner in true_owner.values() {
        *per_owner.entry(*owner).or_insert(0) += 1;
    }
    let true_pairs: u64 = per_owner.values().map(|&n| n * (n - 1) / 2).sum();

    LinkReport {
        clusters,
        recall: if true_pairs == 0 {
            0.0
        } else {
            correct_pairs as f64 / true_pairs as f64
        },
        precision: if proposed_pairs == 0 {
            0.0
        } else {
            correct_pairs as f64 / proposed_pairs as f64
        },
    }
}

/// Builds the wallet → owner ground-truth map for a `k`-split of a
/// history (test/evaluation helper).
pub fn ground_truth(records: &[PaymentRecord], k: usize) -> HashMap<AccountId, AccountId> {
    let mut out = HashMap::new();
    for record in records {
        for slot in 0..k {
            out.insert(wallet_of(record.sender, slot), record.sender);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_ledger::{PathSummary, RippleTime, Value};

    fn rec(sender: u8, dest: u8, amount: i64, secs: u64) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[sender, dest, secs as u8]),
            sender: AccountId::from_bytes([sender; 20]),
            destination: AccountId::from_bytes([dest; 20]),
            currency: Currency::USD,
            issuer: None,
            amount: Value::from_int(amount),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    fn history() -> Vec<PaymentRecord> {
        let mut records = Vec::new();
        // Three users, each with a personal merchant habit + noise.
        for user in 1..=3u8 {
            for i in 0..12u64 {
                // Habit: user's own favourite merchant at a fixed price
                // (a rare (destination, amount) pair).
                records.push(rec(user, 100 + user, 7, user as u64 * 10_000 + i * 60));
                // Noise: a shared popular destination with user-specific
                // amounts.
                records.push(rec(
                    user,
                    200,
                    user as i64 * 1_000 + 30 + i as i64,
                    user as u64 * 10_000 + i * 60 + 7,
                ));
            }
            // An identical "menu price" paid repeatedly by everyone:
            // popular pairs must not count as evidence.
            for j in 0..4u64 {
                records.push(rec(user, 200, 50, user as u64 * 10_000 + 900 + j));
            }
        }
        records
    }

    #[test]
    fn wallets_are_deterministic_and_distinct() {
        let owner = AccountId::from_bytes([1; 20]);
        assert_eq!(wallet_of(owner, 0), wallet_of(owner, 0));
        assert_ne!(wallet_of(owner, 0), wallet_of(owner, 1));
        assert_ne!(
            wallet_of(owner, 0),
            wallet_of(AccountId::from_bytes([2; 20]), 0)
        );
    }

    #[test]
    fn split_reduces_profile_exposure_roughly_by_k() {
        let records = history();
        let fees = FeeSchedule::mainnet();
        let (_, r1) = split_wallets(&records, 1, ResolutionSpec::full(), &fees);
        assert!((r1.profile_exposure - 1.0).abs() < 1e-9, "k=1 exposes all");
        let (_, r4) = split_wallets(&records, 4, ResolutionSpec::full(), &fees);
        assert!(
            r4.profile_exposure < 0.35,
            "k=4 fragments profiles: {}",
            r4.profile_exposure
        );
        assert!(r4.profile_exposure > 0.15, "but not below ~1/k");
    }

    #[test]
    fn split_does_not_protect_single_payments() {
        let records = history();
        let fees = FeeSchedule::mainnet();
        let (_, report) = split_wallets(&records, 4, ResolutionSpec::full(), &fees);
        // Strict fingerprint uniqueness is about the payment tuple, which
        // the split does not change.
        assert_eq!(report.ig_before.unique, report.ig_after.unique);
    }

    #[test]
    fn split_costs_scale_with_k() {
        let records = history();
        let fees = FeeSchedule::mainnet();
        let (_, r2) = split_wallets(&records, 2, ResolutionSpec::full(), &fees);
        let (_, r4) = split_wallets(&records, 4, ResolutionSpec::full(), &fees);
        assert!(r4.new_wallets > r2.new_wallets);
        assert!(r4.extra_trust_lines > r2.extra_trust_lines);
        assert!(r4.reserve_cost_xrp > r2.reserve_cost_xrp);
        // 3 users × 4 wallets × 20 XRP base + lines × 5 XRP.
        assert_eq!(r4.new_wallets, 12);
        assert!(r4.reserve_cost_xrp >= 12 * 20);
    }

    #[test]
    fn habits_relink_the_wallets() {
        let records = history();
        let k = 3;
        let (split, _) =
            split_wallets(&records, k, ResolutionSpec::full(), &FeeSchedule::mainnet());
        let truth = ground_truth(&records, k);
        // The bound must admit a user's own k wallets but reject broader
        // crowds.
        let report = link_wallets_by_habit(&split, &truth, k);
        assert!(
            report.recall > 0.5,
            "rare-destination habits re-link most wallets: {}",
            report.recall
        );
        assert!(
            report.precision > 0.9,
            "rare destinations rarely lie: {}",
            report.precision
        );
        assert!(!report.clusters.is_empty());
    }

    #[test]
    fn popular_destinations_are_not_evidence() {
        let records = history();
        let k = 3;
        let (split, _) =
            split_wallets(&records, k, ResolutionSpec::full(), &FeeSchedule::mainnet());
        let truth = ground_truth(&records, k);
        // With the popularity bound disabled (huge threshold), the shared
        // menu price at destination 200 merges unrelated users: precision
        // collapses relative to the bounded heuristic.
        let naive = link_wallets_by_habit(&split, &truth, usize::MAX);
        let careful = link_wallets_by_habit(&split, &truth, k);
        assert!(
            careful.precision > naive.precision,
            "careful {} vs naive {}",
            careful.precision,
            naive.precision
        );
    }

    #[test]
    #[should_panic(expected = "at least one wallet")]
    fn zero_wallets_rejected() {
        let _ = split_wallets(
            &history(),
            0,
            ResolutionSpec::full(),
            &FeeSchedule::mainnet(),
        );
    }
}
