//! Transaction fingerprinting and sender de-anonymization — the paper's
//! headline contribution (§V).
//!
//! The attack: given a *single* observed payment — even at coarse
//! resolution (the "latte" example: Alice overhears the bar's address, the
//! price, the currency and roughly when) — find the unique sender account
//! whose transaction matches, then unroll that account's entire financial
//! life from the public ledger.
//!
//! The crate provides:
//!
//! * [`resolution`] — Table I's rounding grid (currency-strength groups ×
//!   amount resolutions) and the timestamp coarsening ladder;
//! * [`fingerprint`] — feature extraction `⟨A_res, T_res, C_res, D_res⟩`;
//! * [`ig`] — the *information gain* metric: the fraction of payments whose
//!   fingerprint pins down a unique sender (Fig. 3);
//! * [`engine`] — the sharded single-pass sweep computing every Fig. 3 row
//!   (both metrics) in one scan of the history, with throughput telemetry;
//! * [`attack`] — the end-to-end attacker API: build an index, query an
//!   observation, profile the de-anonymized account.
//!
//! # Examples
//!
//! ```
//! use ripple_deanon::{DeanonIndex, Observation, ResolutionSpec};
//! use ripple_ledger::{Currency, PathSummary, PaymentRecord, RippleTime};
//! use ripple_crypto::{sha512_half, AccountId};
//!
//! let bob = AccountId::from_bytes([7; 20]);
//! let bar = AccountId::from_bytes([9; 20]);
//! let latte = PaymentRecord {
//!     tx_hash: sha512_half(b"latte"),
//!     sender: bob,
//!     destination: bar,
//!     currency: Currency::USD,
//!     issuer: None,
//!     amount: "4.5".parse().unwrap(),
//!     timestamp: RippleTime::from_ymd_hms(2015, 8, 24, 8, 3, 21),
//!     ledger_seq: 99,
//!     paths: PathSummary::direct(),
//!     cross_currency: false,
//!     source_currency: None,
//! };
//!
//! let spec = ResolutionSpec::full();
//! let index = DeanonIndex::build([latte.clone()].iter(), spec);
//! let candidates = index.query(&Observation::of(&latte));
//! assert_eq!(candidates, vec![bob]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod countermeasure;
pub mod engine;
pub mod fingerprint;
pub mod ig;
pub mod resolution;

pub use attack::{DeanonIndex, FinancialProfile, Observation};
pub use countermeasure::{link_wallets_by_habit, split_wallets, LinkReport, WalletSplitReport};
pub use engine::{figure3_sweep, EngineConfig, EngineStats, Fig3Sweep, RowSweep};
pub use fingerprint::{Fingerprint, ResolutionSpec};
pub use ig::{information_gain, sender_information_gain, IgResult};
pub use resolution::{AmountResolution, CurrencyStrength, TimeResolution};
