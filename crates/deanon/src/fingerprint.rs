//! Feature extraction: `⟨A_res, T_res, C_res, D_res⟩`.

use ripple_crypto::AccountId;
use ripple_ledger::{Currency, PaymentRecord};
use serde::{Deserialize, Serialize};

use crate::resolution::{AmountResolution, TimeResolution};

/// Which fields enter the fingerprint, and at what resolution.
///
/// `None` on amount/time (or `false` on currency/destination) excludes the
/// field entirely — the paper's `−` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResolutionSpec {
    /// Amount resolution, or `None` to drop `A`.
    pub amount: Option<AmountResolution>,
    /// Timestamp resolution, or `None` to drop `T`.
    pub time: Option<TimeResolution>,
    /// Include the delivered currency `C`?
    pub currency: bool,
    /// Include the destination `D`?
    pub destination: bool,
}

impl ResolutionSpec {
    /// The strongest attacker: `⟨A_m, T_sc, C, D⟩`.
    pub fn full() -> ResolutionSpec {
        ResolutionSpec {
            amount: Some(AmountResolution::Maximum),
            time: Some(TimeResolution::Seconds),
            currency: true,
            destination: true,
        }
    }

    /// The paper's Figure 3 feature lists, in row order, with their
    /// notation labels.
    pub fn figure3_rows() -> Vec<(&'static str, ResolutionSpec)> {
        use AmountResolution as A;
        use TimeResolution as T;
        let spec = |amount: Option<A>, time: Option<T>, currency: bool, destination: bool| {
            ResolutionSpec {
                amount,
                time,
                currency,
                destination,
            }
        };
        vec![
            (
                "<Am; Tsc; C; D>",
                spec(Some(A::Maximum), Some(T::Seconds), true, true),
            ),
            (
                "<Am; Tsc; -; D>",
                spec(Some(A::Maximum), Some(T::Seconds), false, true),
            ),
            (
                "<Am; Tsc; C; ->",
                spec(Some(A::Maximum), Some(T::Seconds), true, false),
            ),
            ("<- ; Tsc; C; D>", spec(None, Some(T::Seconds), true, true)),
            (
                "<Ah; Tmn; C; D>",
                spec(Some(A::High), Some(T::Minutes), true, true),
            ),
            (
                "<Aa; Thr; C; D>",
                spec(Some(A::Average), Some(T::Hours), true, true),
            ),
            (
                "<Al; Tdy; C; D>",
                spec(Some(A::Low), Some(T::Days), true, true),
            ),
            ("<Am; - ; C; D>", spec(Some(A::Maximum), None, true, true)),
            ("<Am; - ; -; ->", spec(Some(A::Maximum), None, false, false)),
            (
                "<Al; Tdy; -; ->",
                spec(Some(A::Low), Some(T::Days), false, false),
            ),
        ]
    }

    /// Whether `other` is a coarsening of `self` (every field is equal or
    /// strictly coarser / dropped). Used by the monotonicity property
    /// tests: coarsening can never *increase* information gain.
    pub fn coarsens_to(&self, other: &ResolutionSpec) -> bool {
        fn amount_rank(a: Option<AmountResolution>) -> u8 {
            match a {
                Some(AmountResolution::Maximum) => 0,
                Some(AmountResolution::High) => 1,
                Some(AmountResolution::Average) => 2,
                Some(AmountResolution::Low) => 3,
                None => 4,
            }
        }
        fn time_rank(t: Option<TimeResolution>) -> u8 {
            match t {
                Some(TimeResolution::Seconds) => 0,
                Some(TimeResolution::Minutes) => 1,
                Some(TimeResolution::Hours) => 2,
                Some(TimeResolution::Days) => 3,
                None => 4,
            }
        }
        amount_rank(other.amount) >= amount_rank(self.amount)
            && time_rank(other.time) >= time_rank(self.time)
            && (self.currency || !other.currency)
            && (self.destination || !other.destination)
    }
}

/// A fingerprint: the coarsened feature tuple. Hashable and comparable, so
/// it can key the attack index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Rounded amount (raw micro-units), if included.
    pub amount: Option<i128>,
    /// Coarsened timestamp (seconds), if included.
    pub time: Option<u64>,
    /// Currency, if included.
    pub currency: Option<Currency>,
    /// Destination, if included.
    pub destination: Option<AccountId>,
}

impl Fingerprint {
    /// Extracts the fingerprint of a payment under `spec`.
    ///
    /// Note: amount rounding depends on the currency's strength group even
    /// when the currency itself is excluded from the fingerprint — the
    /// attacker knows roughly what was paid, in what kind of money, without
    /// keying on the exact code.
    pub fn of(record: &PaymentRecord, spec: ResolutionSpec) -> Fingerprint {
        Fingerprint {
            amount: spec
                .amount
                .map(|res| res.round(record.currency, record.amount).raw()),
            time: spec.time.map(|res| res.coarsen(record.timestamp).seconds()),
            currency: spec.currency.then_some(record.currency),
            destination: spec.destination.then_some(record.destination),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{PathSummary, RippleTime, Value};

    fn rec(amount: &str, secs: u64, currency: Currency, dest: u8) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&secs.to_be_bytes()),
            sender: AccountId::from_bytes([1; 20]),
            destination: AccountId::from_bytes([dest; 20]),
            currency,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn figure3_has_ten_rows() {
        let rows = ResolutionSpec::figure3_rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].0, "<Am; Tsc; C; D>");
        assert_eq!(rows[9].0, "<Al; Tdy; -; ->");
    }

    #[test]
    fn full_spec_keeps_all_fields() {
        let r = rec("123", 1000, Currency::USD, 5);
        let fp = Fingerprint::of(&r, ResolutionSpec::full());
        assert!(fp.amount.is_some());
        assert!(fp.time.is_some());
        assert_eq!(fp.currency, Some(Currency::USD));
        assert!(fp.destination.is_some());
    }

    #[test]
    fn dropped_fields_are_none() {
        let r = rec("123", 1000, Currency::USD, 5);
        let spec = ResolutionSpec {
            amount: None,
            time: None,
            currency: false,
            destination: false,
        };
        let fp = Fingerprint::of(&r, spec);
        assert_eq!(
            fp,
            Fingerprint {
                amount: None,
                time: None,
                currency: None,
                destination: None
            }
        );
    }

    #[test]
    fn nearby_amounts_collide_after_rounding() {
        // 44 and 46 USD both round to 40/50 boundary? 44 -> 40, 46 -> 50.
        let spec = ResolutionSpec::full();
        let a = Fingerprint::of(&rec("44", 1000, Currency::USD, 5), spec);
        let b = Fingerprint::of(&rec("43", 1000, Currency::USD, 5), spec);
        assert_eq!(a.amount, b.amount, "both round to 40");
        let c = Fingerprint::of(&rec("46", 1000, Currency::USD, 5), spec);
        assert_ne!(a.amount, c.amount, "46 rounds to 50");
    }

    #[test]
    fn coarser_time_merges_same_minute() {
        let spec = ResolutionSpec {
            time: Some(TimeResolution::Minutes),
            ..ResolutionSpec::full()
        };
        let a = Fingerprint::of(&rec("100", 60, Currency::USD, 5), spec);
        let b = Fingerprint::of(&rec("100", 119, Currency::USD, 5), spec);
        assert_eq!(a, b);
    }

    #[test]
    fn coarsens_to_is_a_partial_order() {
        let rows = ResolutionSpec::figure3_rows();
        let full = ResolutionSpec::full();
        for (_, spec) in &rows {
            assert!(full.coarsens_to(spec), "full refines every row");
        }
        let last = rows[9].1;
        assert!(!last.coarsens_to(&full), "coarse does not refine fine");
    }

    mod partial_order {
        use super::super::*;
        use crate::resolution::{AmountResolution, TimeResolution};
        use proptest::prelude::*;

        fn amount_level(rank: u8) -> Option<AmountResolution> {
            match rank {
                0 => Some(AmountResolution::Maximum),
                1 => Some(AmountResolution::High),
                2 => Some(AmountResolution::Average),
                3 => Some(AmountResolution::Low),
                _ => None,
            }
        }

        fn time_level(rank: u8) -> Option<TimeResolution> {
            match rank {
                0 => Some(TimeResolution::Seconds),
                1 => Some(TimeResolution::Minutes),
                2 => Some(TimeResolution::Hours),
                3 => Some(TimeResolution::Days),
                _ => None,
            }
        }

        // Packs one random spec: amount/time ladders (4 levels + dropped)
        // and the 4 include-flag combinations of currency × destination —
        // jointly covering all 16 present/absent field combinations.
        fn spec_from(a: u8, t: u8, flags: u8) -> ResolutionSpec {
            ResolutionSpec {
                amount: amount_level(a),
                time: time_level(t),
                currency: flags & 1 != 0,
                destination: flags & 2 != 0,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            #[test]
            fn reflexive(a in 0u8..=4, t in 0u8..=4, f in 0u8..4) {
                let s = spec_from(a, t, f);
                prop_assert!(s.coarsens_to(&s));
            }

            #[test]
            fn antisymmetric(
                a1 in 0u8..=4, t1 in 0u8..=4, f1 in 0u8..4,
                a2 in 0u8..=4, t2 in 0u8..=4, f2 in 0u8..4,
            ) {
                let x = spec_from(a1, t1, f1);
                let y = spec_from(a2, t2, f2);
                if x.coarsens_to(&y) && y.coarsens_to(&x) {
                    prop_assert_eq!(x, y);
                }
            }

            #[test]
            fn transitive(
                a1 in 0u8..=4, t1 in 0u8..=4, f1 in 0u8..4,
                a2 in 0u8..=4, t2 in 0u8..=4, f2 in 0u8..4,
                a3 in 0u8..=4, t3 in 0u8..=4, f3 in 0u8..4,
            ) {
                let x = spec_from(a1, t1, f1);
                let y = spec_from(a2, t2, f2);
                let z = spec_from(a3, t3, f3);
                if x.coarsens_to(&y) && y.coarsens_to(&z) {
                    prop_assert!(x.coarsens_to(&z));
                }
            }
        }
    }

    #[test]
    fn rounding_uses_strength_even_without_currency_field() {
        let spec = ResolutionSpec {
            currency: false,
            ..ResolutionSpec::full()
        };
        // 4.5 USD (medium group) rounds to 0 at max resolution.
        let fp = Fingerprint::of(&rec("4.5", 0, Currency::USD, 5), spec);
        assert_eq!(fp.amount, Some(0));
        // 4.5 BTC (powerful group) keeps its value.
        let fp = Fingerprint::of(&rec("4.5", 0, Currency::BTC, 5), spec);
        assert_eq!(fp.amount, Some(Value::from_f64(4.5).raw()));
    }
}
