//! Table I: the rounding grid, and the timestamp coarsening ladder.
//!
//! "Currencies have different market strengths. […] We group currencies
//! with similar market strength together and we apply the same rounding
//! process to members of the same strength group."
//!
//! | Strength | Currencies            | Max (m) | Average (a) | Low (l) |
//! |----------|-----------------------|---------|-------------|---------|
//! | Powerful | BTC, XAG, XAU, XPT    | 10⁻³    | 10⁻²        | 10⁻¹    |
//! | Medium   | CNY, EUR, USD, AUD, GBP, JPY | 10¹ | 10²     | 10³     |
//! | Weak     | XRP, CCK, STR, KRW, MTL (and all other codes) | 10⁵ | 10⁶ | 10⁷ |
//!
//! Figure 3 additionally uses a *high* (`h`) amount level paired with
//! minute timestamps. Table I defines only three exponents, so we model
//! `High` with the maximum-resolution exponent — the figure's `⟨A_h, T_mn⟩`
//! row then differs from `⟨A_m, T_sc⟩` in its timestamp resolution, which
//! is the dominant term.

use ripple_ledger::{Currency, RippleTime, Value};
use serde::{Deserialize, Serialize};

/// Market-strength group of a currency (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurrencyStrength {
    /// BTC and precious metals: single units are worth hundreds of euro.
    Powerful,
    /// The major fiat currencies.
    Medium,
    /// Everything else, including XRP and the spam codes.
    Weak,
}

impl CurrencyStrength {
    /// Classifies a currency.
    pub fn of(currency: Currency) -> CurrencyStrength {
        match currency.as_bytes() {
            b"BTC" | b"XAG" | b"XAU" | b"XPT" => CurrencyStrength::Powerful,
            b"CNY" | b"EUR" | b"USD" | b"AUD" | b"GBP" | b"JPY" => CurrencyStrength::Medium,
            _ => CurrencyStrength::Weak,
        }
    }
}

/// Amount resolution level (Fig. 3's `m`, `h`, `a`, `l` subscripts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmountResolution {
    /// Maximum resolution (`A_m`).
    Maximum,
    /// High resolution (`A_h`) — see the module docs for its mapping.
    High,
    /// Average resolution (`A_a`).
    Average,
    /// Low resolution (`A_l`).
    Low,
}

impl AmountResolution {
    /// The rounding exponent for a strength group at this resolution:
    /// amounts are rounded to the closest `10^exponent`. This is Table I's
    /// primitive — the grid is keyed by strength group, not by individual
    /// currency, so an attacker who only knows "what kind of money" can
    /// still round correctly.
    pub fn exponent_for(self, strength: CurrencyStrength) -> i32 {
        let base = match strength {
            CurrencyStrength::Powerful => -3,
            CurrencyStrength::Medium => 1,
            CurrencyStrength::Weak => 5,
        };
        match self {
            AmountResolution::Maximum | AmountResolution::High => base,
            AmountResolution::Average => base + 1,
            AmountResolution::Low => base + 2,
        }
    }

    /// The rounding exponent for a currency at this resolution: amounts are
    /// rounded to the closest `10^exponent`.
    pub fn exponent(self, currency: Currency) -> i32 {
        self.exponent_for(CurrencyStrength::of(currency))
    }

    /// Rounds `amount` of a currency in `strength` at this resolution.
    ///
    /// # Examples
    ///
    /// ```
    /// use ripple_deanon::{AmountResolution, CurrencyStrength};
    ///
    /// let v = "47".parse().unwrap();
    /// let rounded = AmountResolution::Maximum.round_for(CurrencyStrength::Medium, v);
    /// assert_eq!(rounded.to_string(), "50");
    /// ```
    pub fn round_for(self, strength: CurrencyStrength, amount: Value) -> Value {
        amount.round_to_pow10(self.exponent_for(strength))
    }

    /// Rounds `amount` of `currency` at this resolution.
    ///
    /// # Examples
    ///
    /// ```
    /// use ripple_deanon::AmountResolution;
    /// use ripple_ledger::Currency;
    ///
    /// let v = "4.5".parse().unwrap();
    /// // USD at maximum resolution rounds to the closest tens: 4.5 -> 0.
    /// assert!(AmountResolution::Maximum.round(Currency::USD, v).is_zero());
    /// ```
    pub fn round(self, currency: Currency, amount: Value) -> Value {
        self.round_for(CurrencyStrength::of(currency), amount)
    }

    /// All levels, finest first.
    pub fn all() -> [AmountResolution; 4] {
        [
            AmountResolution::Maximum,
            AmountResolution::High,
            AmountResolution::Average,
            AmountResolution::Low,
        ]
    }

    /// The subscript used in the paper's notation.
    pub fn subscript(self) -> &'static str {
        match self {
            AmountResolution::Maximum => "m",
            AmountResolution::High => "h",
            AmountResolution::Average => "a",
            AmountResolution::Low => "l",
        }
    }
}

/// Timestamp resolution level (Fig. 3's `sc`, `mn`, `hr`, `dy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeResolution {
    /// Seconds (`T_sc`) — the ledger's native precision.
    Seconds,
    /// Minutes (`T_mn`).
    Minutes,
    /// Hours (`T_hr`).
    Hours,
    /// Days (`T_dy`).
    Days,
}

impl TimeResolution {
    /// Coarsens a timestamp to this resolution.
    ///
    /// # Examples
    ///
    /// ```
    /// use ripple_deanon::TimeResolution;
    /// use ripple_ledger::RippleTime;
    ///
    /// let t = RippleTime::from_ymd_hms(2015, 8, 24, 15, 41, 3);
    /// assert_eq!(
    ///     TimeResolution::Days.coarsen(t).to_string(),
    ///     "2015-08-24 00:00:00",
    /// );
    /// ```
    pub fn coarsen(self, t: RippleTime) -> RippleTime {
        match self {
            TimeResolution::Seconds => t,
            TimeResolution::Minutes => t.truncate_to_minute(),
            TimeResolution::Hours => t.truncate_to_hour(),
            TimeResolution::Days => t.truncate_to_day(),
        }
    }

    /// All levels, finest first.
    pub fn all() -> [TimeResolution; 4] {
        [
            TimeResolution::Seconds,
            TimeResolution::Minutes,
            TimeResolution::Hours,
            TimeResolution::Days,
        ]
    }

    /// The subscript used in the paper's notation.
    pub fn subscript(self) -> &'static str {
        match self {
            TimeResolution::Seconds => "sc",
            TimeResolution::Minutes => "mn",
            TimeResolution::Hours => "hr",
            TimeResolution::Days => "dy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_groups_match_table1() {
        for cur in [Currency::BTC, Currency::XAG, Currency::XAU, Currency::XPT] {
            assert_eq!(CurrencyStrength::of(cur), CurrencyStrength::Powerful);
        }
        for code in ["CNY", "EUR", "USD", "AUD", "GBP", "JPY"] {
            assert_eq!(
                CurrencyStrength::of(Currency::code(code)),
                CurrencyStrength::Medium
            );
        }
        for code in ["XRP", "CCK", "STR", "KRW", "MTL", "ZZZ"] {
            assert_eq!(
                CurrencyStrength::of(Currency::code(code)),
                CurrencyStrength::Weak
            );
        }
    }

    #[test]
    fn exponents_match_table1() {
        use AmountResolution::*;
        // Powerful: 10^-3, 10^-2, 10^-1.
        assert_eq!(Maximum.exponent(Currency::BTC), -3);
        assert_eq!(Average.exponent(Currency::BTC), -2);
        assert_eq!(Low.exponent(Currency::BTC), -1);
        // Medium: 10^1, 10^2, 10^3.
        assert_eq!(Maximum.exponent(Currency::EUR), 1);
        assert_eq!(Average.exponent(Currency::EUR), 2);
        assert_eq!(Low.exponent(Currency::EUR), 3);
        // Weak: 10^5, 10^6, 10^7.
        assert_eq!(Maximum.exponent(Currency::XRP), 5);
        assert_eq!(Average.exponent(Currency::MTL), 6);
        assert_eq!(Low.exponent(Currency::KRW), 7);
    }

    #[test]
    fn paper_examples_round_as_described() {
        // "For the EUR currency […] maximum (Am), achieved by rounding to
        // the closest tens".
        let v: Value = "47".parse().unwrap();
        assert_eq!(
            AmountResolution::Maximum
                .round(Currency::EUR, v)
                .to_string(),
            "50"
        );
        // "for BTC […] Am, rounding to the closest thousandth".
        let v: Value = "0.0154".parse().unwrap();
        assert_eq!(
            AmountResolution::Maximum
                .round(Currency::BTC, v)
                .to_string(),
            "0.015"
        );
        // MTL spam amounts of order 1e9 survive weak-group rounding with
        // plenty of distinct buckets.
        let v: Value = "1234567890".parse().unwrap();
        assert_eq!(
            AmountResolution::Maximum
                .round(Currency::MTL, v)
                .to_string(),
            "1234600000"
        );
    }

    #[test]
    fn high_aliases_maximum_exponent() {
        assert_eq!(
            AmountResolution::High.exponent(Currency::USD),
            AmountResolution::Maximum.exponent(Currency::USD)
        );
    }

    #[test]
    fn time_ladder_coarsens_progressively() {
        let t = RippleTime::from_ymd_hms(2015, 8, 24, 15, 41, 3);
        assert_eq!(TimeResolution::Seconds.coarsen(t), t);
        assert_eq!(
            TimeResolution::Minutes.coarsen(t).to_string(),
            "2015-08-24 15:41:00"
        );
        assert_eq!(
            TimeResolution::Hours.coarsen(t).to_string(),
            "2015-08-24 15:00:00"
        );
        assert_eq!(
            TimeResolution::Days.coarsen(t).to_string(),
            "2015-08-24 00:00:00"
        );
    }

    #[test]
    fn subscripts_match_paper_notation() {
        assert_eq!(AmountResolution::Maximum.subscript(), "m");
        assert_eq!(TimeResolution::Days.subscript(), "dy");
    }
}
