//! The end-to-end attacker API: index, query, profile.
//!
//! This is §V's "Alice in the coffee line" made executable: Alice observes
//! the bar's address, the price, the currency and the time; the index maps
//! that observation to candidate senders; if a single candidate remains,
//! [`DeanonIndex::profile`] unrolls "the entire financial life of the
//! user": balance flows, previous payments, monthly income, the places
//! they shop, the people they trust.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ripple_crypto::AccountId;
use ripple_ledger::{Currency, PaymentRecord, RippleTime, Value};

use crate::fingerprint::{Fingerprint, ResolutionSpec};
use crate::resolution::CurrencyStrength;

/// What the attacker observed about one payment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Observed amount (pre-rounding; the index rounds it).
    pub amount: Option<Value>,
    /// Observed time (pre-coarsening).
    pub time: Option<RippleTime>,
    /// Observed currency.
    pub currency: Option<Currency>,
    /// Market-strength hint for amount rounding when the exact currency was
    /// *not* observed: Alice may not catch the currency code, yet still know
    /// what kind of money changed hands ("a few dollars" vs "a pile of
    /// XRP"). Ignored when [`Observation::currency`] is set — the observed
    /// currency's own group always wins.
    pub strength: Option<CurrencyStrength>,
    /// Observed destination (the bar's address).
    pub destination: Option<AccountId>,
}

impl Observation {
    /// The observation corresponding to a full view of `record` — useful
    /// in tests and examples.
    pub fn of(record: &PaymentRecord) -> Observation {
        Observation {
            amount: Some(record.amount),
            time: Some(record.timestamp),
            currency: Some(record.currency),
            strength: Some(CurrencyStrength::of(record.currency)),
            destination: Some(record.destination),
        }
    }

    /// The strength group used to round the observed amount: the observed
    /// currency's group when known, otherwise the explicit [`strength`]
    /// hint, otherwise `Weak` (the XRP-like catch-all).
    ///
    /// The index rounds every record with its *true* strength group, so an
    /// observation of a currency-dropped spec (`⟨A, T, −, D⟩`) must round
    /// the same way or real matches are silently missed — that is what the
    /// hint is for.
    ///
    /// [`strength`]: Observation::strength
    pub fn rounding_strength(&self) -> CurrencyStrength {
        self.currency
            .map(CurrencyStrength::of)
            .or(self.strength)
            .unwrap_or(CurrencyStrength::Weak)
    }

    fn fingerprint(&self, spec: ResolutionSpec) -> Fingerprint {
        let strength = self.rounding_strength();
        Fingerprint {
            amount: match (spec.amount, self.amount) {
                (Some(res), Some(v)) => Some(res.round_for(strength, v).raw()),
                _ => None,
            },
            time: match (spec.time, self.time) {
                (Some(res), Some(t)) => Some(res.coarsen(t).seconds()),
                _ => None,
            },
            currency: if spec.currency { self.currency } else { None },
            destination: if spec.destination {
                self.destination
            } else {
                None
            },
        }
    }
}

/// Everything the ledger reveals about one account once de-anonymized.
#[derive(Debug, Clone, PartialEq)]
pub struct FinancialProfile {
    /// The account.
    pub account: AccountId,
    /// Number of payments sent.
    pub payments_sent: u64,
    /// Number of payments received.
    pub payments_received: u64,
    /// Total sent per currency.
    pub sent_by_currency: Vec<(Currency, Value)>,
    /// The account's favourite destinations ("the places where we shop"),
    /// most frequent first.
    pub top_destinations: Vec<(AccountId, u64)>,
    /// First payment seen.
    pub first_seen: Option<RippleTime>,
    /// Last payment seen.
    pub last_seen: Option<RippleTime>,
    /// Mean sent volume per 30-day window, in the account's most-used
    /// currency ("our monthly income" mirror-image).
    pub monthly_outflow: Option<(Currency, Value)>,
}

/// The attack index: fingerprints of an entire payment history under one
/// resolution spec.
///
/// The history lives in a shared `Arc<[PaymentRecord]>` arena: building ten
/// indexes (one per Figure 3 row) over the same history shares one copy of
/// the records instead of cloning 23M payments per spec.
#[derive(Debug)]
pub struct DeanonIndex {
    spec: ResolutionSpec,
    by_fingerprint: HashMap<Fingerprint, Vec<u32>>,
    records: Arc<[PaymentRecord]>,
}

impl DeanonIndex {
    /// Builds the index over a history, copying the records into a private
    /// arena. Prefer [`DeanonIndex::build_shared`] when several indexes are
    /// built over the same history.
    pub fn build<'a>(
        records: impl Iterator<Item = &'a PaymentRecord>,
        spec: ResolutionSpec,
    ) -> DeanonIndex {
        let records: Arc<[PaymentRecord]> = records.cloned().collect();
        DeanonIndex::build_shared(records, spec)
    }

    /// Builds the index over a shared record arena without cloning the
    /// history.
    pub fn build_shared(records: Arc<[PaymentRecord]>, spec: ResolutionSpec) -> DeanonIndex {
        assert!(
            records.len() <= u32::MAX as usize,
            "index supports at most 2^32 - 1 payments"
        );
        let mut by_fingerprint: HashMap<Fingerprint, Vec<u32>> = HashMap::new();
        for (i, record) in records.iter().enumerate() {
            by_fingerprint
                .entry(Fingerprint::of(record, spec))
                .or_default()
                .push(i as u32);
        }
        DeanonIndex {
            spec,
            by_fingerprint,
            records,
        }
    }

    /// The resolution spec the index was built with.
    pub fn spec(&self) -> ResolutionSpec {
        self.spec
    }

    /// Number of indexed payments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The candidate senders matching an observation (deduplicated,
    /// insertion order). A singleton means the observation de-anonymizes
    /// its sender.
    pub fn query(&self, observation: &Observation) -> Vec<AccountId> {
        let fp = observation.fingerprint(self.spec);
        let mut out = Vec::new();
        if let Some(indices) = self.by_fingerprint.get(&fp) {
            // Spam campaigns (MTL/CCK) make single classes huge, so dedup
            // through a seen-set rather than a quadratic `contains` scan.
            let mut seen = HashSet::with_capacity(indices.len());
            for &i in indices {
                let sender = self.records[i as usize].sender;
                if seen.insert(sender) {
                    out.push(sender);
                }
            }
        }
        out
    }

    /// The matching payments themselves (for the attacker's forensics).
    pub fn matching_payments(&self, observation: &Observation) -> Vec<&PaymentRecord> {
        let fp = observation.fingerprint(self.spec);
        self.by_fingerprint
            .get(&fp)
            .map(|indices| indices.iter().map(|&i| &self.records[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Unrolls the full financial profile of `account` from the indexed
    /// history — everything §V says an attacker gains after linking a
    /// single payment.
    pub fn profile(&self, account: AccountId) -> FinancialProfile {
        let mut payments_sent = 0u64;
        let mut payments_received = 0u64;
        let mut sent_by_currency: HashMap<Currency, Value> = HashMap::new();
        let mut destinations: HashMap<AccountId, u64> = HashMap::new();
        let mut first_seen: Option<RippleTime> = None;
        let mut last_seen: Option<RippleTime> = None;
        for record in self.records.iter() {
            if record.sender == account {
                payments_sent += 1;
                let entry = sent_by_currency
                    .entry(record.currency)
                    .or_insert(Value::ZERO);
                *entry = *entry + record.amount;
                *destinations.entry(record.destination).or_insert(0) += 1;
                first_seen = Some(first_seen.map_or(record.timestamp, |t| t.min(record.timestamp)));
                last_seen = Some(last_seen.map_or(record.timestamp, |t| t.max(record.timestamp)));
            }
            if record.destination == account {
                payments_received += 1;
            }
        }
        let mut sent_by_currency: Vec<(Currency, Value)> = sent_by_currency.into_iter().collect();
        sent_by_currency.sort_by_key(|&(_, total)| std::cmp::Reverse(total));
        let mut top_destinations: Vec<(AccountId, u64)> = destinations.into_iter().collect();
        top_destinations.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top_destinations.truncate(10);

        let monthly_outflow = match (first_seen, last_seen, sent_by_currency.first()) {
            (Some(first), Some(last), Some(&(currency, total))) => {
                let days = ((last.seconds() - first.seconds()) / 86_400).max(30);
                let months = (days as i64 / 30).max(1);
                Some((currency, Value::from_raw(total.raw() / months as i128)))
            }
            _ => None,
        };

        FinancialProfile {
            account,
            payments_sent,
            payments_received,
            sent_by_currency,
            top_destinations,
            first_seen,
            last_seen,
            monthly_outflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::PathSummary;

    fn rec(sender: u8, dest: u8, amount: &str, secs: u64, currency: Currency) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[sender, dest, secs as u8]),
            sender: AccountId::from_bytes([sender; 20]),
            destination: AccountId::from_bytes([dest; 20]),
            currency,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    fn history() -> Vec<PaymentRecord> {
        vec![
            // Bob(7)'s latte at the bar(9).
            rec(7, 9, "4.5", 1_000, Currency::USD),
            // Bob's other life.
            rec(7, 11, "120", 5_000, Currency::USD),
            rec(7, 9, "4.5", 90_000, Currency::USD),
            rec(7, 12, "0.3", 95_000, Currency::BTC),
            // Unrelated traffic.
            rec(2, 9, "15", 2_000, Currency::USD),
            rec(3, 13, "4.5", 1_000, Currency::USD),
            rec(3, 7, "9", 3_000, Currency::USD),
        ]
    }

    #[test]
    fn latte_observation_identifies_bob() {
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let observation = Observation {
            amount: Some("4.5".parse().unwrap()),
            time: Some(RippleTime::from_seconds(1_000)),
            currency: Some(Currency::USD),
            strength: None,
            destination: Some(AccountId::from_bytes([9; 20])),
        };
        let candidates = index.query(&observation);
        assert_eq!(candidates, vec![AccountId::from_bytes([7; 20])]);
    }

    #[test]
    fn approximate_amount_still_matches_after_rounding() {
        // Alice misheard the price: 4.9 instead of 4.5 — both round to 0
        // at the USD maximum resolution (closest tens).
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let observation = Observation {
            amount: Some("4.9".parse().unwrap()),
            time: Some(RippleTime::from_seconds(1_000)),
            currency: Some(Currency::USD),
            strength: None,
            destination: Some(AccountId::from_bytes([9; 20])),
        };
        assert_eq!(
            index.query(&observation),
            vec![AccountId::from_bytes([7; 20])]
        );
    }

    #[test]
    fn ambiguous_observation_returns_multiple_candidates() {
        let history = history();
        // Drop the destination: (amount 4.5, second 1000, USD) matches both
        // Bob's latte and sender 3's payment.
        let spec = ResolutionSpec {
            destination: false,
            ..ResolutionSpec::full()
        };
        let index = DeanonIndex::build(history.iter(), spec);
        let observation = Observation {
            amount: Some("4.5".parse().unwrap()),
            time: Some(RippleTime::from_seconds(1_000)),
            currency: Some(Currency::USD),
            strength: None,
            destination: None,
        };
        let candidates = index.query(&observation);
        assert_eq!(candidates.len(), 2);
    }

    #[test]
    fn profile_unrolls_financial_life() {
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let bob = AccountId::from_bytes([7; 20]);
        let profile = index.profile(bob);
        assert_eq!(profile.payments_sent, 4);
        assert_eq!(profile.payments_received, 1);
        // Favourite place: the bar, twice.
        assert_eq!(
            profile.top_destinations[0],
            (AccountId::from_bytes([9; 20]), 2)
        );
        // USD dominates his outflow.
        assert_eq!(profile.sent_by_currency[0].0, Currency::USD);
        assert_eq!(
            profile.sent_by_currency[0].1,
            "129".parse::<Value>().unwrap()
        );
        assert_eq!(profile.first_seen, Some(RippleTime::from_seconds(1_000)));
        assert_eq!(profile.last_seen, Some(RippleTime::from_seconds(95_000)));
        assert!(profile.monthly_outflow.is_some());
    }

    #[test]
    fn no_match_returns_empty() {
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let observation = Observation {
            amount: Some("123456".parse().unwrap()),
            time: Some(RippleTime::from_seconds(77)),
            currency: Some(Currency::EUR),
            strength: None,
            destination: Some(AccountId::from_bytes([50; 20])),
        };
        assert!(index.query(&observation).is_empty());
        assert!(index.matching_payments(&observation).is_empty());
    }

    #[test]
    fn currency_dropped_spec_finds_usd_payment_via_strength_hint() {
        // The <Am; Tsc; -; D> row: currency is excluded from the
        // fingerprint, but amounts are still rounded by the record's true
        // strength group. Bob's 120 USD payment is indexed as
        // round_medium(120) = 120; the old query path rounded the observed
        // amount with an XRP (Weak, 10^5) exponent, producing 0 — a silent
        // false negative. With a Medium strength hint the match survives.
        let history = history();
        let spec = ResolutionSpec {
            currency: false,
            ..ResolutionSpec::full()
        };
        let index = DeanonIndex::build(history.iter(), spec);
        let observation = Observation {
            amount: Some("120".parse().unwrap()),
            time: Some(RippleTime::from_seconds(5_000)),
            currency: None,
            strength: Some(CurrencyStrength::Medium),
            destination: Some(AccountId::from_bytes([11; 20])),
        };
        assert_eq!(
            index.query(&observation),
            vec![AccountId::from_bytes([7; 20])],
            "the USD payment must be found when the attacker knows the money kind"
        );

        // The same observation without the hint falls back to Weak rounding
        // and (correctly, per the documented fallback) misses — showing the
        // hint is what carries the match.
        let hintless = Observation {
            strength: None,
            ..observation
        };
        assert!(index.query(&hintless).is_empty());
    }

    #[test]
    fn observed_currency_overrides_strength_hint() {
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        // A wrong hint must not derail rounding when the currency itself
        // was observed.
        let observation = Observation {
            amount: Some("4.5".parse().unwrap()),
            time: Some(RippleTime::from_seconds(1_000)),
            currency: Some(Currency::USD),
            strength: Some(CurrencyStrength::Powerful),
            destination: Some(AccountId::from_bytes([9; 20])),
        };
        assert_eq!(
            index.query(&observation),
            vec![AccountId::from_bytes([7; 20])]
        );
    }

    #[test]
    fn query_dedups_spam_scale_classes_in_order() {
        // One fingerprint class with many repeats from two senders: dedup
        // must preserve first-seen order and stay linear.
        let mut history = Vec::new();
        for i in 0..500 {
            history.push(rec(
                if i % 2 == 0 { 3 } else { 2 },
                9,
                "15",
                2_000,
                Currency::MTL,
            ));
        }
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let candidates = index.query(&Observation::of(&history[0]));
        assert_eq!(
            candidates,
            vec![
                AccountId::from_bytes([3; 20]),
                AccountId::from_bytes([2; 20])
            ]
        );
    }

    #[test]
    fn build_shared_reuses_one_arena() {
        let arena: std::sync::Arc<[PaymentRecord]> = history().into();
        let full = DeanonIndex::build_shared(arena.clone(), ResolutionSpec::full());
        let coarse = DeanonIndex::build_shared(
            arena.clone(),
            ResolutionSpec {
                destination: false,
                ..ResolutionSpec::full()
            },
        );
        assert_eq!(full.len(), arena.len());
        assert_eq!(coarse.len(), arena.len());
        // Three owners: the local arena handle plus the two indexes.
        assert_eq!(std::sync::Arc::strong_count(&arena), 3);
    }

    #[test]
    fn matching_payments_expose_records() {
        let history = history();
        let index = DeanonIndex::build(history.iter(), ResolutionSpec::full());
        let observation = Observation::of(&history[0]);
        let matches = index.matching_payments(&observation);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].amount, "4.5".parse().unwrap());
    }
}
