//! The information-gain metric (Fig. 3).
//!
//! The paper's Figure 3 caption defines the plotted quantity as the
//! "percentage of Ripple payments producing a **unique fingerprint**": a
//! payment counts only if *no other payment in the history* shares its
//! coarsened `⟨A, T, C, D⟩` tuple. That strict reading is implemented by
//! [`information_gain`].
//!
//! A weaker — attacker-friendlier — reading also appears in §V's prose
//! ("the percentage of Ripple transactions whose sender address field S can
//! be uniquely identified"): a fingerprint shared only by payments of the
//! *same sender* still de-anonymizes that sender. That variant is
//! [`sender_information_gain`]; it upper-bounds the strict metric.

use std::collections::HashMap;

use ripple_ledger::PaymentRecord;
use serde::{Deserialize, Serialize};

use crate::fingerprint::{Fingerprint, ResolutionSpec};

/// Result of an information-gain computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IgResult {
    /// Payments counted as de-anonymized.
    pub unique: u64,
    /// Total payments considered.
    pub total: u64,
}

impl IgResult {
    /// The IG as a fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.unique as f64 / self.total as f64
        }
    }

    /// The IG as a percentage.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// Strict Figure 3 metric: the fraction of payments whose fingerprint is
/// shared by **no other payment**.
///
/// # Examples
///
/// ```
/// use ripple_deanon::{information_gain, ResolutionSpec};
///
/// let ig = information_gain(std::iter::empty(), ResolutionSpec::full());
/// assert_eq!(ig.total, 0);
/// ```
pub fn information_gain<'a>(
    records: impl Iterator<Item = &'a PaymentRecord>,
    spec: ResolutionSpec,
) -> IgResult {
    let mut classes: HashMap<Fingerprint, u64> = HashMap::new();
    let mut total = 0u64;
    for record in records {
        total += 1;
        *classes.entry(Fingerprint::of(record, spec)).or_insert(0) += 1;
    }
    let unique = classes.values().filter(|&&count| count == 1).count() as u64;
    IgResult { unique, total }
}

/// Attack-oriented metric: the fraction of payments whose fingerprint class
/// contains a **single sender** (repeats by the same account still
/// de-anonymize it). Always ≥ [`information_gain`].
pub fn sender_information_gain<'a>(
    records: impl Iterator<Item = &'a PaymentRecord>,
    spec: ResolutionSpec,
) -> IgResult {
    let mut classes: HashMap<Fingerprint, (ripple_crypto::AccountId, u64, bool)> = HashMap::new();
    let mut total = 0u64;
    for record in records {
        total += 1;
        let fp = Fingerprint::of(record, spec);
        match classes.get_mut(&fp) {
            None => {
                classes.insert(fp, (record.sender, 1, false));
            }
            Some((sender, count, mixed)) => {
                *count += 1;
                if *sender != record.sender {
                    *mixed = true;
                }
            }
        }
    }
    let unique: u64 = classes
        .values()
        .filter(|(_, _, mixed)| !mixed)
        .map(|(_, count, _)| count)
        .sum();
    IgResult { unique, total }
}

/// Computes the strict IG of every Figure 3 row over the same history,
/// returning `(label, result)` pairs in the paper's row order.
///
/// At paper scale (23M payments) this is the pipeline's hottest analysis,
/// so it delegates to the sharded single-pass engine
/// ([`crate::engine::figure3_sweep`]): one scan of the history covers all
/// ten rows, with the coarsening ladder memoized per record. Use the engine
/// directly for the sender metric and throughput telemetry.
pub fn figure3(records: &[&PaymentRecord]) -> Vec<(&'static str, IgResult)> {
    crate::engine::figure3_sweep(records, crate::engine::EngineConfig::default())
        .rows
        .into_iter()
        .map(|row| (row.label, row.strict))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolution::{AmountResolution, TimeResolution};
    use ripple_crypto::{sha512_half, AccountId};
    use ripple_ledger::{Currency, PathSummary, RippleTime};

    fn rec(sender: u8, amount: &str, secs: u64, dest: u8) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[sender, dest]),
            sender: AccountId::from_bytes([sender; 20]),
            destination: AccountId::from_bytes([dest; 20]),
            currency: Currency::USD,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::from_seconds(secs),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn distinct_fingerprints_are_unique() {
        let records = [
            rec(1, "100", 10, 5),
            rec(2, "200", 20, 6),
            rec(3, "300", 30, 7),
        ];
        let ig = information_gain(records.iter(), ResolutionSpec::full());
        assert_eq!(ig.unique, 3);
        assert_eq!(ig.percent(), 100.0);
    }

    #[test]
    fn any_fingerprint_collision_kills_strict_uniqueness() {
        // Same rounded amount, same second, same destination — regardless
        // of sender.
        let cross_sender = [rec(1, "100", 10, 5), rec(2, "100", 10, 5)];
        let ig = information_gain(cross_sender.iter(), ResolutionSpec::full());
        assert_eq!(ig.unique, 0);
        let same_sender = [rec(1, "100", 10, 5), rec(1, "100", 10, 5)];
        let ig = information_gain(same_sender.iter(), ResolutionSpec::full());
        assert_eq!(ig.unique, 0, "strict metric ignores sender identity");
    }

    #[test]
    fn sender_metric_forgives_same_sender_repeats() {
        let same_sender = [rec(1, "100", 10, 5), rec(1, "100", 10, 5)];
        let ig = sender_information_gain(same_sender.iter(), ResolutionSpec::full());
        assert_eq!(ig.unique, 2, "one account repeating is still identified");
        let mixed = [rec(1, "100", 10, 5), rec(2, "100", 10, 5)];
        let ig = sender_information_gain(mixed.iter(), ResolutionSpec::full());
        assert_eq!(ig.unique, 0);
    }

    #[test]
    fn sender_metric_dominates_strict_metric() {
        let records = [
            rec(1, "100", 10, 5),
            rec(1, "100", 10, 5),
            rec(2, "200", 20, 5),
            rec(3, "200", 20, 5),
            rec(4, "300", 30, 5),
        ];
        for (_, spec) in ResolutionSpec::figure3_rows() {
            let strict = information_gain(records.iter(), spec).fraction();
            let sender = sender_information_gain(records.iter(), spec).fraction();
            assert!(sender >= strict, "sender IG must dominate strict IG");
        }
    }

    #[test]
    fn coarsening_time_merges_and_reduces_ig() {
        let records = [rec(1, "100", 60, 5), rec(2, "100", 65, 5)];
        let fine = information_gain(records.iter(), ResolutionSpec::full());
        assert_eq!(fine.unique, 2);
        let coarse_spec = ResolutionSpec {
            time: Some(TimeResolution::Minutes),
            ..ResolutionSpec::full()
        };
        let coarse = information_gain(records.iter(), coarse_spec);
        assert_eq!(coarse.unique, 0);
    }

    #[test]
    fn dropping_fields_reduces_ig() {
        let records = [rec(1, "100", 10, 5), rec(2, "100", 20, 5)];
        let full = information_gain(records.iter(), ResolutionSpec::full());
        assert_eq!(full.unique, 2);
        let no_time = ResolutionSpec {
            time: None,
            ..ResolutionSpec::full()
        };
        let ig = information_gain(records.iter(), no_time);
        assert_eq!(ig.unique, 0);
    }

    #[test]
    fn amount_resolution_ladder_is_monotone() {
        let records: Vec<PaymentRecord> = (0..40u8)
            .map(|i| rec(i, &format!("{}", 100 + i as u32 * 7), 0, 1))
            .collect();
        let mut prev = f64::INFINITY;
        for res in AmountResolution::all() {
            let spec = ResolutionSpec {
                amount: Some(res),
                time: None,
                currency: true,
                destination: true,
            };
            let ig = information_gain(records.iter(), spec).fraction();
            assert!(ig <= prev + 1e-12, "coarser must not increase IG");
            prev = ig;
        }
    }

    #[test]
    fn figure3_rows_ordering_sanity() {
        let mut records = Vec::new();
        for i in 0..30u8 {
            records.push(rec(i, "40", (i as u64) * 100, 1));
            records.push(rec(i, &format!("{}", 50 + i as u32), i as u64 * 100 + 7, 2));
        }
        let refs: Vec<&PaymentRecord> = records.iter().collect();
        let rows = figure3(&refs);
        assert_eq!(rows.len(), 10);
        let get = |label: &str| {
            rows.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, ig)| ig.fraction())
                .unwrap()
        };
        assert!(get("<Am; Tsc; C; D>") >= get("<Al; Tdy; C; D>"));
        assert!(get("<Al; Tdy; C; D>") >= get("<Al; Tdy; -; ->"));
    }

    #[test]
    fn empty_history_has_zero_ig() {
        let ig = information_gain(std::iter::empty(), ResolutionSpec::full());
        assert_eq!(ig.fraction(), 0.0);
        assert_eq!(ig.percent(), 0.0);
    }
}
