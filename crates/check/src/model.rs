//! An obviously-correct reference ledger.
//!
//! [`ModelLedger`] re-implements `LedgerState::apply` with plain
//! `BTreeMap`s, straight-line validation, and none of the production
//! code's structural sharing or ordering tricks. The differential runner
//! applies every generated transaction to both and demands identical
//! results — including the exact [`LedgerError`] on rejection — and
//! identical state after every step.

use std::collections::BTreeMap;

use ripple_crypto::AccountId;
use ripple_ledger::{
    Amount, Currency, Drops, FeeSchedule, LedgerError, LedgerState, Transaction, TxKind, TxResult,
    Value,
};

/// A model account: `(balance in drops, next sequence, owner count)`.
type ModelAccount = (u64, u32, u32);

/// The naive reference ledger.
#[derive(Debug, Clone)]
pub struct ModelLedger {
    accounts: BTreeMap<AccountId, ModelAccount>,
    /// `(truster, trustee, currency) -> raw limit`.
    trust: BTreeMap<(AccountId, AccountId, Currency), i128>,
    /// Canonical pair balances: `(low, high, currency) -> raw amount high
    /// owes low`; zero entries are removed.
    owed: BTreeMap<(AccountId, AccountId, Currency), i128>,
    /// `(owner, offer_seq) -> (taker_gets, taker_pays)`.
    offers: BTreeMap<(AccountId, u32), (Amount, Amount)>,
    fees: FeeSchedule,
    burned: u64,
}

impl Default for ModelLedger {
    fn default() -> Self {
        ModelLedger::new()
    }
}

impl ModelLedger {
    /// An empty model with the main-net fee schedule (matching
    /// `LedgerState::new`).
    pub fn new() -> ModelLedger {
        ModelLedger {
            accounts: BTreeMap::new(),
            trust: BTreeMap::new(),
            owed: BTreeMap::new(),
            offers: BTreeMap::new(),
            fees: FeeSchedule::mainnet(),
            burned: 0,
        }
    }

    /// Funds a new account (sequence starts at 1, like the real ledger).
    pub fn create_account(&mut self, id: AccountId, balance: Drops) {
        let prev = self.accounts.insert(id, (balance.as_drops(), 1, 0));
        assert!(prev.is_none(), "model account already exists");
    }

    /// The signed amount `holder` is owed by `counterparty` (raw units).
    fn claim(&self, holder: AccountId, counterparty: AccountId, currency: Currency) -> i128 {
        if holder <= counterparty {
            *self
                .owed
                .get(&(holder, counterparty, currency))
                .unwrap_or(&0)
        } else {
            -*self
                .owed
                .get(&(counterparty, holder, currency))
                .unwrap_or(&0)
        }
    }

    /// Grows `holder`'s claim on `counterparty` by `delta` raw units.
    fn adjust_claim(
        &mut self,
        holder: AccountId,
        counterparty: AccountId,
        currency: Currency,
        delta: i128,
    ) {
        let (key, sign) = if holder <= counterparty {
            ((holder, counterparty, currency), 1)
        } else {
            ((counterparty, holder, currency), -1)
        };
        let entry = self.owed.entry(key).or_insert(0);
        *entry += sign * delta;
        if *entry == 0 {
            self.owed.remove(&key);
        }
    }

    /// Capacity of the hop `from -> to`: trust extended by `to` minus the
    /// claim `to` already holds on `from`.
    fn hop_capacity(&self, from: AccountId, to: AccountId, currency: Currency) -> i128 {
        let limit = *self.trust.get(&(to, from, currency)).unwrap_or(&0);
        limit - self.claim(to, from, currency)
    }

    fn reserve_for(&self, owned: u32) -> u64 {
        self.fees.reserve_for(owned).as_drops()
    }

    fn charge_fee(&mut self, account: AccountId, fee: u64) {
        let root = self.accounts.get_mut(&account).expect("caller validated");
        root.0 -= fee;
        self.burned += fee;
    }

    fn refund_fee(&mut self, account: AccountId, fee: u64) {
        let root = self.accounts.get_mut(&account).expect("caller validated");
        root.0 += fee;
        self.burned -= fee;
    }

    /// Applies one signed transaction, mirroring `LedgerState::apply`'s
    /// exact validation order and error values.
    pub fn apply(&mut self, tx: &Transaction) -> Result<TxResult, LedgerError> {
        let &(balance, sequence, owner_count) = self
            .accounts
            .get(&tx.account)
            .ok_or(LedgerError::NoSuchAccount(tx.account))?;
        if sequence != tx.sequence {
            return Err(LedgerError::BadSequence {
                expected: sequence,
                got: tx.sequence,
            });
        }
        let fee = tx.fee.as_drops();
        if fee < self.fees.base_fee.as_drops() {
            return Err(LedgerError::FeeTooLow {
                fee: tx.fee,
                minimum: self.fees.base_fee,
            });
        }
        let spendable = balance.saturating_sub(self.reserve_for(owner_count));
        if fee > spendable {
            return Err(LedgerError::InsufficientXrp {
                account: tx.account,
                needed: tx.fee,
                available: Drops::new(spendable),
            });
        }

        match &tx.kind {
            TxKind::Payment {
                destination,
                amount,
                send_max: _,
                paths,
            } => match amount {
                Amount::Xrp(drops) => {
                    self.charge_fee(tx.account, fee);
                    if let Err(e) = self.xrp_transfer(tx.account, *destination, drops.as_drops()) {
                        self.refund_fee(tx.account, fee);
                        return Err(e);
                    }
                }
                Amount::Iou(iou) => {
                    if iou.currency.is_xrp() {
                        return Err(LedgerError::XrpOnTrustLine);
                    }
                    if !iou.value.is_positive() {
                        return Err(LedgerError::NonPositiveAmount);
                    }
                    if tx.account == *destination {
                        return Err(LedgerError::SelfPayment);
                    }
                    let hops: &[AccountId] = match paths.as_slice() {
                        [] => &[],
                        [only] => only.as_slice(),
                        more => {
                            return Err(LedgerError::MultiPathUnsupported { paths: more.len() })
                        }
                    };
                    let mut chain = vec![tx.account];
                    chain.extend_from_slice(hops);
                    chain.push(*destination);
                    for stop in &chain[1..] {
                        if !self.accounts.contains_key(stop) {
                            return Err(LedgerError::NoSuchAccount(*stop));
                        }
                    }
                    // Two-phase like the real ledger: validate every hop
                    // against the *pre* state, then apply all of them.
                    for pair in chain.windows(2) {
                        let capacity = self.hop_capacity(pair[0], pair[1], iou.currency);
                        if iou.value.raw() > capacity {
                            return Err(LedgerError::TrustLimitExceeded {
                                from: pair[0],
                                to: pair[1],
                                capacity: Value::from_raw(capacity),
                                requested: iou.value,
                            });
                        }
                    }
                    self.charge_fee(tx.account, fee);
                    for pair in chain.windows(2) {
                        self.adjust_claim(pair[1], pair[0], iou.currency, iou.value.raw());
                    }
                }
            },
            TxKind::TrustSet {
                trustee,
                currency,
                limit,
            } => {
                self.set_trust(tx.account, *trustee, *currency, *limit)?;
                self.charge_fee(tx.account, fee);
            }
            TxKind::OfferCreate {
                taker_gets,
                taker_pays,
            } => {
                let root = self.accounts.get_mut(&tx.account).expect("checked above");
                root.2 += 1;
                self.offers
                    .insert((tx.account, tx.sequence), (*taker_gets, *taker_pays));
                self.charge_fee(tx.account, fee);
            }
            TxKind::OfferCancel { offer_seq } => {
                if self.offers.remove(&(tx.account, *offer_seq)).is_none() {
                    return Err(LedgerError::NoSuchOffer {
                        owner: tx.account,
                        offer_seq: *offer_seq,
                    });
                }
                let root = self.accounts.get_mut(&tx.account).expect("checked above");
                root.2 = root.2.saturating_sub(1);
                self.charge_fee(tx.account, fee);
            }
            TxKind::AccountSet { .. } => {
                self.charge_fee(tx.account, fee);
            }
        }

        let root = self.accounts.get_mut(&tx.account).expect("checked above");
        root.1 += 1;
        Ok(TxResult::Applied)
    }

    fn xrp_transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        drops: u64,
    ) -> Result<(), LedgerError> {
        if drops == 0 {
            return Err(LedgerError::NonPositiveAmount);
        }
        if from == to {
            return Err(LedgerError::SelfPayment);
        }
        if !self.accounts.contains_key(&to) {
            return Err(LedgerError::NoSuchAccount(to));
        }
        let &(balance, _, owner_count) = self
            .accounts
            .get(&from)
            .ok_or(LedgerError::NoSuchAccount(from))?;
        let spendable = balance.saturating_sub(self.reserve_for(owner_count));
        if drops > spendable {
            return Err(LedgerError::InsufficientXrp {
                account: from,
                needed: Drops::new(drops),
                available: Drops::new(spendable),
            });
        }
        self.accounts.get_mut(&from).expect("checked").0 -= drops;
        self.accounts.get_mut(&to).expect("checked").0 += drops;
        Ok(())
    }

    fn set_trust(
        &mut self,
        truster: AccountId,
        trustee: AccountId,
        currency: Currency,
        limit: Value,
    ) -> Result<(), LedgerError> {
        if currency.is_xrp() {
            return Err(LedgerError::XrpOnTrustLine);
        }
        if limit.is_negative() {
            return Err(LedgerError::NegativeLimit);
        }
        if !self.accounts.contains_key(&trustee) {
            return Err(LedgerError::NoSuchAccount(trustee));
        }
        let key = (truster, trustee, currency);
        let existed = self.trust.contains_key(&key);
        let root = self
            .accounts
            .get_mut(&truster)
            .ok_or(LedgerError::NoSuchAccount(truster))?;
        if limit.is_zero() {
            if existed {
                root.2 = root.2.saturating_sub(1);
                self.trust.remove(&key);
            }
        } else {
            if !existed {
                root.2 += 1;
            }
            self.trust.insert(key, limit.raw());
        }
        Ok(())
    }

    /// Compares the model against a production [`LedgerState`], returning
    /// a description of the first mismatch.
    pub fn compare(&self, state: &LedgerState) -> Result<(), String> {
        let theirs: BTreeMap<AccountId, ModelAccount> = state
            .accounts()
            .map(|(&id, root)| {
                (
                    id,
                    (root.balance.as_drops(), root.sequence, root.owner_count),
                )
            })
            .collect();
        if theirs != self.accounts {
            return Err(first_map_diff("account", &self.accounts, &theirs));
        }
        let their_trust: BTreeMap<(AccountId, AccountId, Currency), i128> = state
            .trust_lines()
            .map(|l| ((l.truster, l.trustee, l.currency), l.limit.raw()))
            .collect();
        if their_trust != self.trust {
            return Err(first_map_diff("trust line", &self.trust, &their_trust));
        }
        let their_owed: BTreeMap<(AccountId, AccountId, Currency), i128> = state
            .pair_balances()
            .map(|(low, high, cur, val)| ((low, high, cur), val.raw()))
            .collect();
        if their_owed != self.owed {
            return Err(first_map_diff("pair balance", &self.owed, &their_owed));
        }
        let their_offers: BTreeMap<(AccountId, u32), (Amount, Amount)> = state
            .offers()
            .map(|o| ((o.owner, o.offer_seq), (o.taker_gets, o.taker_pays)))
            .collect();
        if their_offers != self.offers {
            return Err(format!(
                "offer books differ: model holds {}, ledger holds {}",
                self.offers.len(),
                their_offers.len()
            ));
        }
        if state.total_burned().as_drops() != self.burned {
            return Err(format!(
                "burned drops differ: model {}, ledger {}",
                self.burned,
                state.total_burned().as_drops()
            ));
        }
        Ok(())
    }

    /// Sum of all XRP balances plus the burn, in drops (for the
    /// conservation invariant).
    pub fn total_drops(&self) -> u128 {
        self.accounts
            .values()
            .map(|&(b, _, _)| b as u128)
            .sum::<u128>()
            + self.burned as u128
    }
}

fn first_map_diff<K: Ord + std::fmt::Debug + Clone, V: PartialEq + std::fmt::Debug>(
    what: &str,
    model: &BTreeMap<K, V>,
    ledger: &BTreeMap<K, V>,
) -> String {
    for (k, v) in model {
        match ledger.get(k) {
            None => return format!("{what} {k:?} present in model, missing in ledger"),
            Some(w) if w != v => return format!("{what} {k:?} differs: model {v:?}, ledger {w:?}"),
            _ => {}
        }
    }
    for k in ledger.keys() {
        if !model.contains_key(k) {
            return format!("{what} {k:?} present in ledger, missing in model");
        }
    }
    format!("{what} maps differ in an unexpected way")
}
