//! Brute-force oracles: a small-graph max-flow path oracle and a naive
//! order-book matcher.
//!
//! Both are deliberately slow and simple — quadratic scans, full-width
//! `i128` arithmetic, no shared state — so a disagreement with the
//! production engines points at the engine, not the oracle.

use ripple_crypto::AccountId;
use ripple_ledger::{Currency, LedgerState};

/// Maximum IOU value (raw units) deliverable from `sender` to
/// `destination` over the current trust graph, computed with
/// Edmonds–Karp max-flow over per-hop capacities. Capped at `cap` so the
/// caller can ask "is at least X feasible?" without running the flow dry.
pub fn max_deliverable(
    state: &LedgerState,
    sender: AccountId,
    destination: AccountId,
    currency: Currency,
    cap: i128,
) -> i128 {
    if cap <= 0 || sender == destination {
        return 0;
    }
    let nodes: Vec<AccountId> = state.accounts().map(|(&id, _)| id).collect();
    let index = |id: AccountId| nodes.iter().position(|&n| n == id);
    let (Some(s), Some(t)) = (index(sender), index(destination)) else {
        return 0;
    };
    let n = nodes.len();
    // Residual capacities; back-edges start at zero and grow as flow is
    // pushed (this nets opposing flow exactly like the engine's Residual).
    let mut residual = vec![vec![0i128; n]; n];
    for (u, &from) in nodes.iter().enumerate() {
        for (v, &to) in nodes.iter().enumerate() {
            if u == v {
                continue;
            }
            let capacity = state.hop_capacity(from, to, currency).raw();
            if capacity > 0 {
                residual[u][v] = capacity;
            }
        }
    }
    let mut flow = 0i128;
    while flow < cap {
        // BFS for a shortest augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && residual[u][v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            break;
        }
        let mut bottleneck = cap - flow;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(residual[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            residual[u][v] -= bottleneck;
            residual[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
    flow
}

/// [`max_deliverable`] on a sparse residual graph: identical semantics
/// (Edmonds–Karp, back-edge netting, capped at `cap`) but edges come from
/// the trust-line and pair-balance tables instead of an all-pairs dense
/// matrix, so it scales to ledgers where `accounts²` cells would not fit
/// in memory. Still a brute-force per-query oracle — it rebuilds the
/// residual graph every call and caches nothing — which makes it the
/// honest baseline the cached router is benchmarked against at
/// 100k-account scale (`experiments liquidity`).
pub fn max_deliverable_sparse(
    state: &LedgerState,
    sender: AccountId,
    destination: AccountId,
    currency: Currency,
    cap: i128,
) -> i128 {
    use std::collections::HashMap;

    if cap <= 0 || sender == destination {
        return 0;
    }
    if state.account(&sender).is_none() || state.account(&destination).is_none() {
        return 0;
    }
    // Candidate edges of the currency's trust graph (capacity evaluated
    // live below, like the router's adjacency): trustee -> truster per
    // trust line, plus debt-implied edges from pair balances.
    let mut adjacency: HashMap<AccountId, Vec<AccountId>> = HashMap::new();
    let mut add_edge = |from: AccountId, to: AccountId| {
        let entry = adjacency.entry(from).or_default();
        if !entry.contains(&to) {
            entry.push(to);
        }
    };
    for line in state.trust_lines() {
        if line.currency == currency {
            add_edge(line.trustee, line.truster);
        }
    }
    for (low, high, cur, balance) in state.pair_balances() {
        if cur != currency {
            continue;
        }
        if balance.is_positive() {
            add_edge(low, high);
        } else if balance.is_negative() {
            add_edge(high, low);
        }
    }
    // Make the edge set symmetric so back-edges exist for netting, then
    // load residual capacities.
    let mut residual: HashMap<(AccountId, AccountId), i128> = HashMap::new();
    for (&from, tos) in &adjacency {
        for &to in tos {
            residual
                .entry((from, to))
                .or_insert_with(|| state.hop_capacity(from, to, currency).raw().max(0));
            residual
                .entry((to, from))
                .or_insert_with(|| state.hop_capacity(to, from, currency).raw().max(0));
        }
    }
    let neighbours: HashMap<AccountId, Vec<AccountId>> = {
        let mut out: HashMap<AccountId, Vec<AccountId>> = HashMap::new();
        for &(from, to) in residual.keys() {
            out.entry(from).or_default().push(to);
        }
        out
    };
    let mut flow = 0i128;
    while flow < cap {
        let mut parent: HashMap<AccountId, AccountId> = HashMap::new();
        parent.insert(sender, sender);
        let mut queue = std::collections::VecDeque::from([sender]);
        'bfs: while let Some(u) = queue.pop_front() {
            let Some(nexts) = neighbours.get(&u) else {
                continue;
            };
            for &v in nexts {
                if !parent.contains_key(&v) && residual.get(&(u, v)).copied().unwrap_or(0) > 0 {
                    parent.insert(v, u);
                    if v == destination {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !parent.contains_key(&destination) {
            break;
        }
        let mut bottleneck = cap - flow;
        let mut v = destination;
        while v != sender {
            let u = parent[&v];
            bottleneck = bottleneck.min(residual[&(u, v)]);
            v = u;
        }
        let mut v = destination;
        while v != sender {
            let u = parent[&v];
            *residual.get_mut(&(u, v)).expect("edge exists") -= bottleneck;
            *residual.get_mut(&(v, u)).expect("edge exists") += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
    flow
}

/// One resting entry in the naive book.
#[derive(Debug, Clone)]
pub struct NaiveEntry {
    /// Owner cast index.
    pub owner: u8,
    /// Offer identity.
    pub offer_seq: u32,
    /// Raw base value still on offer.
    pub remaining: i128,
    num: u128,
    den: u128,
    arrival: u64,
}

/// One consumed slice of a naive fill:
/// `(owner, offer_seq, taken raw, paid raw)`.
pub type NaivePart = (u8, u32, i128, i128);

/// The outcome of a naive fill.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NaiveFill {
    /// Raw base value bought.
    pub filled: i128,
    /// Raw quote value spent.
    pub paid: i128,
    /// Per-offer slices in consumption order.
    pub parts: Vec<NaivePart>,
}

/// A quadratic reference order book: entries live in a plain `Vec`; every
/// fill re-scans for the best rate.
#[derive(Debug, Clone, Default)]
pub struct NaiveBook {
    entries: Vec<NaiveEntry>,
    next_arrival: u64,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// `floor(amount * num / den)` in full-width arithmetic — the exact value
/// `Rate::apply` computes for in-range operands.
fn apply_rate(amount: i128, num: u128, den: u128) -> i128 {
    amount * num as i128 / den as i128
}

impl NaiveBook {
    /// An empty book.
    pub fn new() -> NaiveBook {
        NaiveBook::default()
    }

    /// Inserts an offer giving `gets_raw` base for `pays_raw` quote.
    /// Returns `false` (and inserts nothing) when no rate can be formed —
    /// non-positive legs or a reduced ratio overflowing `u64` — mirroring
    /// `Rate::from_amounts`.
    pub fn insert(&mut self, owner: u8, offer_seq: u32, gets_raw: i128, pays_raw: i128) -> bool {
        if gets_raw <= 0 || pays_raw <= 0 {
            return false;
        }
        let (p, g) = (pays_raw as u128, gets_raw as u128);
        let d = gcd(p, g);
        let (num, den) = (p / d, g / d);
        if num > u64::MAX as u128 || den > u64::MAX as u128 {
            return false;
        }
        self.entries.push(NaiveEntry {
            owner,
            offer_seq,
            remaining: gets_raw,
            num,
            den,
            arrival: self.next_arrival,
        });
        self.next_arrival += 1;
        true
    }

    /// Number of resting entries.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Total raw base value resting in the book.
    pub fn liquidity(&self) -> i128 {
        self.entries.iter().map(|e| e.remaining).sum()
    }

    /// The resting entries sorted cheapest-first (rate, then arrival) —
    /// the order the production book keeps internally.
    pub fn sorted_entries(&self) -> Vec<NaiveEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| {
            (a.num * b.den)
                .cmp(&(b.num * a.den))
                .then(a.arrival.cmp(&b.arrival))
        });
        sorted
    }

    /// Index into `entries` of the cheapest entry, if any.
    fn best(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            best = match best {
                None => Some(i),
                Some(j) => {
                    let b = &self.entries[j];
                    // e < b  <=>  e.num/e.den < b.num/b.den (cross-multiplied)
                    if e.num * b.den < b.num * e.den
                        || (e.num * b.den == b.num * e.den && e.arrival < b.arrival)
                    {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        best
    }

    /// Cost in raw quote units of buying `amount_raw` base, or `None` when
    /// the book is too shallow. Does not mutate the book.
    pub fn quote(&self, amount_raw: i128) -> Option<i128> {
        let mut need = amount_raw;
        let mut paid = 0i128;
        for e in self.sorted_entries() {
            if need <= 0 {
                break;
            }
            let take = e.remaining.min(need);
            paid += apply_rate(take, e.num, e.den);
            need -= take;
        }
        if need > 0 {
            None
        } else {
            Some(paid)
        }
    }

    /// Buys up to `amount_raw` base, consuming the cheapest entries first.
    pub fn fill(&mut self, amount_raw: i128) -> NaiveFill {
        let mut outcome = NaiveFill::default();
        if amount_raw <= 0 {
            return outcome;
        }
        let mut need = amount_raw;
        while need > 0 {
            let Some(i) = self.best() else { break };
            let take = self.entries[i].remaining.min(need);
            let paid = apply_rate(take, self.entries[i].num, self.entries[i].den);
            outcome
                .parts
                .push((self.entries[i].owner, self.entries[i].offer_seq, take, paid));
            outcome.filled += take;
            outcome.paid += paid;
            need -= take;
            self.entries[i].remaining -= take;
            if self.entries[i].remaining == 0 {
                self.entries.remove(i);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{case_currency, cast_account, gen_engine_plan};
    use ripple_ledger::{Drops, Value};

    /// The sparse oracle must agree with the dense one on every randomized
    /// engine-plan ledger — it exists to scale, not to answer differently.
    #[test]
    fn sparse_oracle_matches_dense() {
        for seed in 0..40u64 {
            let plan = gen_engine_plan(seed);
            let cast_len = plan.genesis.len().max(1) as u8;
            let mut state = LedgerState::new();
            for (i, &drops) in plan.genesis.iter().enumerate() {
                state.create_account(cast_account(i as u8), Drops::new(drops));
            }
            for &(truster, trustee, cur, limit) in &plan.trust {
                let _ = state.set_trust(
                    cast_account(truster % cast_len),
                    cast_account(trustee % cast_len),
                    case_currency(cur % 3),
                    Value::from_raw(limit),
                );
            }
            for &(from, to, cur, amount) in &plan.hops {
                let _ = state.ripple_hop(
                    cast_account(from % cast_len),
                    cast_account(to % cast_len),
                    case_currency(cur % 3),
                    Value::from_raw(amount),
                );
            }
            let sender = cast_account(plan.sender % cast_len);
            let destination = cast_account(plan.destination % cast_len);
            let currency = case_currency(plan.currency % 3);
            for cap in [1i128, plan.amount, i128::MAX / 4] {
                let dense = max_deliverable(&state, sender, destination, currency, cap);
                let sparse = max_deliverable_sparse(&state, sender, destination, currency, cap);
                assert_eq!(dense, sparse, "seed {seed} cap {cap}");
            }
        }
    }
}
