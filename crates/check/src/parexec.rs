//! Differential target: the sharded parallel executor vs. the serial path.
//!
//! The pipelined generator promises a byte-identical history for every
//! `exec_workers` count. This target stress-tests that promise the same
//! way the other targets exercise their engines: generate a randomized
//! plan (seed, payment volume, chunk size, worker count), run the same
//! configuration through the serial executor and the optimistic parallel
//! one, and diverge if the event streams or the final ledger states
//! disagree. Shrinking halves the payment count while the divergence
//! persists, so a counterexample replays in seconds rather than minutes.

use ripple_synth::{Generator, PipelineConfig, PipelineRun, SynthConfig};

use crate::diff::fingerprint;

/// A plan for one serial-vs-parallel differential run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParexecPlan {
    /// History seed handed to [`SynthConfig`].
    pub seed: u64,
    /// Payments in the generated history.
    pub payments: u64,
    /// Script chunk size (small chunks raise cross-chunk conflict odds).
    pub chunk_size: u64,
    /// Worker count for the parallel run (the serial run always uses 1).
    pub exec_workers: u64,
    /// Communities in the cast; `1` funnels traffic through a single hub
    /// cluster and maximizes speculation conflicts.
    pub communities: u64,
}

/// splitmix64 over the plan seed — decorrelates the plan dimensions.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates a randomized parallel-execution plan from a case seed.
pub fn gen_parexec_plan(seed: u64) -> ParexecPlan {
    ParexecPlan {
        seed,
        payments: 400 + mix(seed, 1) % 500,
        chunk_size: 64 << (mix(seed, 2) % 3), // 64, 128, or 256
        exec_workers: 2 + mix(seed, 3) % 7,   // 2..=8
        communities: 1 + mix(seed, 4) % 3,    // 1..=3
    }
}

fn pipelined(plan: &ParexecPlan, exec_workers: usize) -> Result<PipelineRun, String> {
    let config = SynthConfig {
        seed: plan.seed,
        communities: plan.communities as usize,
        ..SynthConfig::small(plan.payments as usize)
    };
    Generator::new(config)
        .run_pipelined(&PipelineConfig {
            workers: 2,
            chunk_size: plan.chunk_size as usize,
            archive: false,
            exec_workers,
            ..PipelineConfig::default()
        })
        .map_err(|e| e.to_string())
}

/// Runs the plan's configuration serially and in parallel, returning a
/// divergence description if the two histories disagree anywhere.
pub fn run_parexec_plan(plan: &ParexecPlan) -> Option<String> {
    let serial = match pipelined(plan, 1) {
        Ok(run) => run,
        Err(e) => return Some(format!("serial pipeline failed: {e}")),
    };
    let parallel = match pipelined(plan, plan.exec_workers as usize) {
        Ok(run) => run,
        Err(e) => {
            return Some(format!(
                "parallel pipeline ({} workers) failed: {e}",
                plan.exec_workers
            ))
        }
    };
    if serial.output.events.len() != parallel.output.events.len() {
        return Some(format!(
            "event count diverged: serial {} vs parallel {}",
            serial.output.events.len(),
            parallel.output.events.len()
        ));
    }
    if let Some(i) = serial
        .output
        .events
        .iter()
        .zip(&parallel.output.events)
        .position(|(a, b)| a != b)
    {
        return Some(format!(
            "event streams diverged at index {i} of {}",
            serial.output.events.len()
        ));
    }
    let serial_state = fingerprint(&serial.output.final_state);
    let parallel_state = fingerprint(&parallel.output.final_state);
    if serial_state != parallel_state {
        let line = serial_state
            .lines()
            .zip(parallel_state.lines())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Some(format!(
            "final ledger state diverged at fingerprint line {line}"
        ));
    }
    if serial.tallies.payments != parallel.tallies.payments
        || serial.tallies.currency_counts != parallel.tallies.currency_counts
        || serial.tallies.hop_histogram != parallel.tallies.hop_histogram
    {
        return Some("streaming tallies diverged".to_string());
    }
    None
}

/// Shrinks a diverging plan by halving the payment count while the
/// divergence persists. Returns the smallest still-failing plan and the
/// number of candidate evaluations spent.
pub fn shrink_parexec_plan(plan: &ParexecPlan) -> (ParexecPlan, u64) {
    let mut best = plan.clone();
    let mut steps = 0u64;
    while best.payments >= 100 {
        let candidate = ParexecPlan {
            payments: best.payments / 2,
            ..best.clone()
        };
        steps += 1;
        if run_parexec_plan(&candidate).is_some() {
            best = candidate;
        } else {
            break;
        }
    }
    (best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_bounded() {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let a = gen_parexec_plan(seed);
            assert_eq!(a, gen_parexec_plan(seed), "plan gen must be pure");
            assert!((400..900).contains(&a.payments));
            assert!(matches!(a.chunk_size, 64 | 128 | 256));
            assert!((2..=8).contains(&a.exec_workers));
            assert!((1..=3).contains(&a.communities));
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_a_sample_plan() {
        let plan = gen_parexec_plan(42);
        assert_eq!(run_parexec_plan(&plan), None);
    }
}
