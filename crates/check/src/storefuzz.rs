//! Store fuzzing: mutation corpora through the archive reader's resync
//! path, asserting it never panics and its recovery stats stay honest.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple_crypto::AccountId;
use ripple_ledger::{Currency, RippleTime, Value};
use ripple_store::{corrupt_bytes, CorruptionPlan, HistoryEvent, Reader, Writer};

/// One serialized corruption step (mirrors `store::CorruptionOp`, kept as
/// local data so plans shrink and serialize independently of the store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// XOR one bit of the byte at `offset`.
    FlipBit {
        /// Byte position.
        offset: u64,
        /// Bit index, 0–7.
        bit: u8,
    },
    /// Remove `len` bytes at `offset` (torn write).
    DropRange {
        /// Start of the torn region.
        offset: u64,
        /// Bytes removed.
        len: u64,
    },
    /// Zero `len` bytes at `offset`.
    ZeroRange {
        /// Start of the zeroed region.
        offset: u64,
        /// Bytes zeroed.
        len: u64,
    },
    /// Truncate the stream at `offset`.
    TruncateAt {
        /// New stream length.
        offset: u64,
    },
}

/// A replayable store-fuzz case: the archive is regenerated from
/// `corpus_seed`/`events`, then damaged by `ops`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorePlan {
    /// Seed for the event corpus.
    pub corpus_seed: u64,
    /// Number of corpus events.
    pub events: usize,
    /// Corruption steps applied to the clean archive.
    pub ops: Vec<StoreOp>,
}

/// A deterministic mixed corpus of history events.
pub fn corpus_events(seed: u64, n: usize) -> Vec<HistoryEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5704e);
    (0..n)
        .map(|i| {
            let t = RippleTime::from_seconds(i as u64 * 10);
            match rng.gen_range(0u8..3) {
                0 => HistoryEvent::AccountCreated {
                    account: AccountId::from_bytes([rng.gen(); 20]),
                    timestamp: t,
                },
                1 => HistoryEvent::TrustSet {
                    truster: AccountId::from_bytes([rng.gen(); 20]),
                    trustee: AccountId::from_bytes([rng.gen(); 20]),
                    currency: Currency::USD,
                    limit: Value::from_raw(rng.gen_range(1i128..1_000_000_000)),
                    timestamp: t,
                },
                _ => HistoryEvent::OfferPlaced {
                    owner: AccountId::from_bytes([rng.gen(); 20]),
                    offer_seq: rng.gen_range(1u32..1_000),
                    base: Currency::EUR,
                    quote: Currency::USD,
                    gets: Value::from_raw(rng.gen_range(1i128..1_000_000_000)),
                    pays: Value::from_raw(rng.gen_range(1i128..1_000_000_000)),
                    timestamp: t,
                },
            }
        })
        .collect()
}

/// Serializes the corpus into a clean archive.
fn write_archive(events: &[HistoryEvent]) -> Vec<u8> {
    let mut clean = Vec::new();
    let mut writer = Writer::new(&mut clean);
    for event in events {
        writer.write(event).expect("in-memory write");
    }
    writer.finish().expect("in-memory finish");
    clean
}

fn corruption_plan(ops: &[StoreOp]) -> CorruptionPlan {
    let mut plan = CorruptionPlan::new();
    for op in ops {
        plan = match *op {
            StoreOp::FlipBit { offset, bit } => plan.flip_bit(offset, bit),
            StoreOp::DropRange { offset, len } => plan.drop_range(offset, len),
            StoreOp::ZeroRange { offset, len } => plan.zero_range(offset, len),
            StoreOp::TruncateAt { offset } => plan.truncate_at(offset),
        };
    }
    plan
}

/// Generates a store-fuzz case. Offsets are drawn within the actual
/// archive length, which is itself a pure function of the corpus seed, so
/// the case replays exactly.
pub fn gen_store_plan(seed: u64) -> StorePlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf022);
    let events = rng.gen_range(5usize..30);
    let len = write_archive(&corpus_events(seed, events)).len() as u64;
    let ops = (0..rng.gen_range(1usize..=6))
        .map(|_| match rng.gen_range(0u8..8) {
            0 => StoreOp::TruncateAt {
                offset: rng.gen_range(0..len),
            },
            1 | 2 => {
                let offset = rng.gen_range(0..len);
                StoreOp::DropRange {
                    offset,
                    len: rng.gen_range(1..=(len - offset).min(40)),
                }
            }
            3 | 4 => {
                let offset = rng.gen_range(0..len);
                StoreOp::ZeroRange {
                    offset,
                    len: rng.gen_range(1..=(len - offset).min(40)),
                }
            }
            _ => StoreOp::FlipBit {
                offset: rng.gen_range(0..len),
                bit: rng.gen_range(0..8),
            },
        })
        .collect();
    StorePlan {
        corpus_seed: seed,
        events,
        ops,
    }
}

/// Runs one store-fuzz case; `None` means the reader behaved. Violations:
/// a panic anywhere in the resync path, recovery stats disagreeing with
/// the salvaged records, salvage that is not a subsequence of what was
/// written, or an untouched archive that does not read back verbatim.
pub fn run_store_plan(plan: &StorePlan) -> Option<String> {
    let events = corpus_events(plan.corpus_seed, plan.events);
    let clean = write_archive(&events);
    let damaged = corrupt_bytes(&clean, &corruption_plan(&plan.ops));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let reader = match Reader::recovering(damaged.as_slice()) {
            Ok(reader) => reader,
            // A mangled magic prefix is a legitimate hard error.
            Err(_) => return None,
        };
        match reader.read_all_with_stats() {
            Ok((salvaged, stats)) => Some((salvaged, stats)),
            Err(_) => None,
        }
    }));
    let Ok(read) = outcome else {
        return Some(format!(
            "resync reader panicked on a {}-byte damaged archive ({} corruption ops)",
            damaged.len(),
            plan.ops.len()
        ));
    };
    // A reader error on a damaged archive is acceptable; only panics and
    // inconsistent salvage are violations.
    let (salvaged, stats) = read?;
    if stats.records as usize != salvaged.len() {
        return Some(format!(
            "recovery stats claim {} records but {} were returned",
            stats.records,
            salvaged.len()
        ));
    }
    // Salvaged records must be a subsequence of what was written: resync
    // may drop records, never invent or reorder them.
    let mut cursor = 0usize;
    for (i, record) in salvaged.iter().enumerate() {
        match events[cursor..].iter().position(|e| e == record) {
            Some(found) => cursor += found + 1,
            None => {
                return Some(format!(
                    "salvaged record {i} is not a subsequence match of the written corpus"
                ))
            }
        }
    }
    if plan.ops.is_empty() {
        if salvaged != events {
            return Some("an untouched archive did not read back verbatim".to_string());
        }
        if stats.skipped_bytes != 0 || stats.corrupt_regions != 0 {
            return Some(format!(
                "an untouched archive reported {} skipped bytes across {} corrupt regions",
                stats.skipped_bytes, stats.corrupt_regions
            ));
        }
    }
    None
}
