//! Replayable counterexamples: `CHECK_CASE.json` serialization, parsing,
//! and deterministic replay.
//!
//! A [`CheckCase`] captures everything needed to reproduce a divergence:
//! the case seed, the divergence description, and the full plan (op
//! sequence, fault schedule, or corruption recipe). Serialization goes
//! through `obs::json::JsonWriter`, which is byte-stable, so replaying a
//! case and re-serializing it reproduces the document byte-for-byte —
//! the property the `check replay` entry point asserts.
//!
//! Floating-point loss probabilities are serialized as raw IEEE-754 bits
//! (`loss_bits`) rather than decimal text, so they round-trip exactly.

use ripple_netsim::{FaultEvent, NodeId, SimTime};
use ripple_obs::json::JsonWriter;

use crate::diff::{run_book_plan, run_engine_plan, run_ledger_plan, run_router_plan};
use crate::explore::{run_consensus_plan, ConsensusPlan};
use crate::gen::{
    BookOffer, BookPlan, CaseAmount, EnginePlan, LedgerCasePlan, Op, OpKind, RouterPlan,
    RouterQuery,
};
use crate::parexec::{run_parexec_plan, ParexecPlan};
use crate::storefuzz::{run_store_plan, StoreOp, StorePlan};

/// Format version stamped into every document.
pub const SCHEMA_VERSION: u64 = 1;

/// The plan behind a counterexample, one variant per differential target.
#[derive(Debug, Clone, PartialEq)]
pub enum CasePayload {
    /// Ledger apply vs. `ModelLedger`.
    Ledger(LedgerCasePlan),
    /// Payment engine vs. max-flow oracle.
    Engine(EnginePlan),
    /// Order-book fill vs. naive matcher.
    Book(BookPlan),
    /// Consensus schedule exploration.
    Consensus(ConsensusPlan),
    /// Store corruption resync.
    Store(StorePlan),
    /// Parallel executor vs. the serial path.
    Parexec(ParexecPlan),
    /// Cached router vs. cold search, oracle, and engine replay.
    Router(RouterPlan),
}

impl CasePayload {
    /// The `kind` string used in the document.
    pub fn kind(&self) -> &'static str {
        match self {
            CasePayload::Ledger(_) => "ledger",
            CasePayload::Engine(_) => "engine",
            CasePayload::Book(_) => "book",
            CasePayload::Consensus(_) => "consensus",
            CasePayload::Store(_) => "store",
            CasePayload::Parexec(_) => "parexec",
            CasePayload::Router(_) => "router",
        }
    }
}

/// A fully replayable counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckCase {
    /// The case seed the runner was on when the divergence surfaced.
    pub seed: u64,
    /// Human-readable description of the disagreement.
    pub divergence: String,
    /// The (shrunk) plan that reproduces it.
    pub payload: CasePayload,
}

/// Outcome of replaying a serialized case.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Whether the replay reproduced *a* divergence.
    pub reproduced: bool,
    /// The divergence the replay observed, if any.
    pub divergence: Option<String>,
    /// Whether re-serializing the replayed case reproduced the input
    /// document byte-for-byte.
    pub byte_identical: bool,
    /// The re-serialized document.
    pub regenerated: String,
}

impl CheckCase {
    /// Re-executes the case's plan, returning the divergence it produces
    /// now (`None` if the disagreement no longer reproduces).
    pub fn rerun(&self) -> Option<String> {
        match &self.payload {
            CasePayload::Ledger(plan) => run_ledger_plan(plan),
            CasePayload::Engine(plan) => run_engine_plan(plan),
            CasePayload::Book(plan) => run_book_plan(plan),
            CasePayload::Consensus(plan) => run_consensus_plan(plan),
            CasePayload::Store(plan) => run_store_plan(plan),
            CasePayload::Parexec(plan) => run_parexec_plan(plan),
            CasePayload::Router(plan) => run_router_plan(plan),
        }
    }

    /// Serializes the case to the `CHECK_CASE.json` document format.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("schema_version", SCHEMA_VERSION);
        w.field_str("kind", self.payload.kind());
        w.field_u64("seed", self.seed);
        w.field_str("divergence", &self.divergence);
        w.key("payload");
        match &self.payload {
            CasePayload::Ledger(plan) => write_ledger(&mut w, plan),
            CasePayload::Engine(plan) => write_engine(&mut w, plan),
            CasePayload::Book(plan) => write_book(&mut w, plan),
            CasePayload::Consensus(plan) => write_consensus(&mut w, plan),
            CasePayload::Store(plan) => write_store(&mut w, plan),
            CasePayload::Parexec(plan) => write_parexec(&mut w, plan),
            CasePayload::Router(plan) => write_router(&mut w, plan),
        }
        w.end_object();
        w.finish()
    }

    /// Parses a `CHECK_CASE.json` document.
    pub fn from_json(doc: &str) -> Result<CheckCase, String> {
        let root = parse_json(doc)?;
        if get_u64(&root, "schema_version")? != SCHEMA_VERSION {
            return Err("unsupported schema_version".to_string());
        }
        let kind = get_str(&root, "kind")?;
        let payload_json = get(&root, "payload")?;
        let payload = match kind.as_str() {
            "ledger" => CasePayload::Ledger(read_ledger(payload_json)?),
            "engine" => CasePayload::Engine(read_engine(payload_json)?),
            "book" => CasePayload::Book(read_book(payload_json)?),
            "consensus" => CasePayload::Consensus(read_consensus(payload_json)?),
            "store" => CasePayload::Store(read_store(payload_json)?),
            "parexec" => CasePayload::Parexec(read_parexec(payload_json)?),
            "router" => CasePayload::Router(read_router(payload_json)?),
            other => return Err(format!("unknown case kind {other:?}")),
        };
        Ok(CheckCase {
            seed: get_u64(&root, "seed")?,
            divergence: get_str(&root, "divergence")?,
            payload,
        })
    }
}

/// Parses, re-executes, and re-serializes a case document, asserting the
/// replay is deterministic down to the bytes.
pub fn replay_document(doc: &str) -> Result<ReplayOutcome, String> {
    let case = CheckCase::from_json(doc)?;
    match case.rerun() {
        Some(divergence) => {
            let regenerated = CheckCase {
                divergence: divergence.clone(),
                ..case
            }
            .to_json();
            Ok(ReplayOutcome {
                reproduced: true,
                byte_identical: regenerated == doc,
                divergence: Some(divergence),
                regenerated,
            })
        }
        None => Ok(ReplayOutcome {
            reproduced: false,
            divergence: None,
            byte_identical: false,
            regenerated: String::new(),
        }),
    }
}

// ---------------------------------------------------------------- writing

fn write_raw(w: &mut JsonWriter, name: &str, raw: i128) {
    // i128 exceeds the writer's integer range; decimal strings round-trip
    // exactly.
    w.field_str(name, &raw.to_string());
}

fn write_amount(w: &mut JsonWriter, name: &str, amount: &CaseAmount) {
    w.key(name);
    w.begin_inline_object();
    w.field_u64("currency", amount.currency as u64);
    write_raw(w, "raw", amount.raw);
    w.field_u64("issuer", amount.issuer as u64);
    w.end_inline_object();
}

fn write_ledger(w: &mut JsonWriter, plan: &LedgerCasePlan) {
    w.begin_object();
    w.key("genesis");
    w.begin_array();
    for &drops in &plan.genesis {
        w.value_u64(drops);
    }
    w.end_array();
    w.key("ops");
    w.begin_array();
    for op in &plan.ops {
        write_op(w, op);
    }
    w.end_array();
    w.end_object();
}

fn write_op(w: &mut JsonWriter, op: &Op) {
    match &op.kind {
        OpKind::OfferCreate { .. } => w.begin_object(),
        _ => w.begin_inline_object(),
    }
    w.field_u64("actor", op.actor as u64);
    w.field_u64("fee", op.fee);
    w.field_u64("seq_skew", op.seq_skew as u64);
    match &op.kind {
        OpKind::XrpPay { to, drops } => {
            w.field_str("op", "xrp_pay");
            w.field_u64("to", *to as u64);
            w.field_u64("drops", *drops);
        }
        OpKind::IouPay {
            to,
            currency,
            amount,
            path,
        } => {
            w.field_str("op", "iou_pay");
            w.field_u64("to", *to as u64);
            w.field_u64("currency", *currency as u64);
            write_raw(w, "amount", *amount);
            w.key("path");
            w.begin_array();
            for &hop in path {
                w.value_u64(hop as u64);
            }
            w.end_array();
        }
        OpKind::TrustSet {
            trustee,
            currency,
            limit,
        } => {
            w.field_str("op", "trust_set");
            w.field_u64("trustee", *trustee as u64);
            w.field_u64("currency", *currency as u64);
            write_raw(w, "limit", *limit);
        }
        OpKind::OfferCreate { gets, pays } => {
            w.field_str("op", "offer_create");
            write_amount(w, "gets", gets);
            write_amount(w, "pays", pays);
        }
        OpKind::OfferCancel { offer_seq } => {
            w.field_str("op", "offer_cancel");
            w.field_u64("offer_seq", *offer_seq as u64);
        }
        OpKind::AccountSet { flags } => {
            w.field_str("op", "account_set");
            w.field_u64("flags", *flags as u64);
        }
    }
    match &op.kind {
        OpKind::OfferCreate { .. } => w.end_object(),
        _ => w.end_inline_object(),
    }
}

fn write_engine(w: &mut JsonWriter, plan: &EnginePlan) {
    w.begin_object();
    w.key("genesis");
    w.begin_array();
    for &drops in &plan.genesis {
        w.value_u64(drops);
    }
    w.end_array();
    w.key("trust");
    w.begin_array();
    for &(truster, trustee, currency, limit) in &plan.trust {
        w.begin_inline_object();
        w.field_u64("truster", truster as u64);
        w.field_u64("trustee", trustee as u64);
        w.field_u64("currency", currency as u64);
        write_raw(w, "limit", limit);
        w.end_inline_object();
    }
    w.end_array();
    w.key("hops");
    w.begin_array();
    for &(from, to, currency, amount) in &plan.hops {
        w.begin_inline_object();
        w.field_u64("from", from as u64);
        w.field_u64("to", to as u64);
        w.field_u64("currency", currency as u64);
        write_raw(w, "amount", amount);
        w.end_inline_object();
    }
    w.end_array();
    w.field_u64("sender", plan.sender as u64);
    w.field_u64("destination", plan.destination as u64);
    w.field_u64("currency", plan.currency as u64);
    write_raw(w, "amount", plan.amount);
    w.end_object();
}

fn write_router(w: &mut JsonWriter, plan: &RouterPlan) {
    w.begin_object();
    w.key("genesis");
    w.begin_array();
    for &drops in &plan.genesis {
        w.value_u64(drops);
    }
    w.end_array();
    w.key("trust");
    w.begin_array();
    for &(truster, trustee, currency, limit) in &plan.trust {
        w.begin_inline_object();
        w.field_u64("truster", truster as u64);
        w.field_u64("trustee", trustee as u64);
        w.field_u64("currency", currency as u64);
        write_raw(w, "limit", limit);
        w.end_inline_object();
    }
    w.end_array();
    w.key("hops");
    w.begin_array();
    for &(from, to, currency, amount) in &plan.hops {
        w.begin_inline_object();
        w.field_u64("from", from as u64);
        w.field_u64("to", to as u64);
        w.field_u64("currency", currency as u64);
        write_raw(w, "amount", amount);
        w.end_inline_object();
    }
    w.end_array();
    w.key("queries");
    w.begin_array();
    for q in &plan.queries {
        w.begin_inline_object();
        w.field_u64("sender", q.sender as u64);
        w.field_u64("destination", q.destination as u64);
        write_raw(w, "amount", q.amount);
        w.field_u64("mutate_truster", q.mutate_truster as u64);
        w.field_u64("mutate_trustee", q.mutate_trustee as u64);
        write_raw(w, "mutate_limit", q.mutate_limit);
        w.end_inline_object();
    }
    w.end_array();
    w.field_u64("currency", plan.currency as u64);
    w.end_object();
}

fn write_book(w: &mut JsonWriter, plan: &BookPlan) {
    w.begin_object();
    w.key("offers");
    w.begin_array();
    for offer in &plan.offers {
        w.begin_inline_object();
        w.field_u64("owner", offer.owner as u64);
        w.field_u64("offer_seq", offer.offer_seq as u64);
        write_raw(w, "gets", offer.gets_raw);
        write_raw(w, "pays", offer.pays_raw);
        w.end_inline_object();
    }
    w.end_array();
    write_raw(w, "fill", plan.fill_raw);
    w.end_object();
}

fn write_consensus(w: &mut JsonWriter, plan: &ConsensusPlan) {
    w.begin_object();
    w.field_u64("validators", plan.validators as u64);
    w.field_u64("rounds", plan.rounds);
    w.field_u64("campaign_seed", plan.campaign_seed);
    w.key("events");
    w.begin_array();
    for event in &plan.events {
        write_fault_event(w, event);
    }
    w.end_array();
    w.end_object();
}

fn write_fault_event(w: &mut JsonWriter, event: &FaultEvent) {
    match event {
        FaultEvent::PartitionAt { at, left, right } => {
            w.begin_object();
            w.field_str("event", "partition_at");
            w.field_u64("at_ms", at.as_millis());
            w.key("left");
            w.begin_array();
            for node in left {
                w.value_u64(node.0 as u64);
            }
            w.end_array();
            w.key("right");
            w.begin_array();
            for node in right {
                w.value_u64(node.0 as u64);
            }
            w.end_array();
            w.end_object();
        }
        FaultEvent::HealAt { at } => {
            w.begin_inline_object();
            w.field_str("event", "heal_at");
            w.field_u64("at_ms", at.as_millis());
            w.end_inline_object();
        }
        FaultEvent::CrashAt { at, node } => {
            w.begin_inline_object();
            w.field_str("event", "crash_at");
            w.field_u64("at_ms", at.as_millis());
            w.field_u64("node", node.0 as u64);
            w.end_inline_object();
        }
        FaultEvent::RestartAt { at, node } => {
            w.begin_inline_object();
            w.field_str("event", "restart_at");
            w.field_u64("at_ms", at.as_millis());
            w.field_u64("node", node.0 as u64);
            w.end_inline_object();
        }
        FaultEvent::LossBurst { from, until, loss } => {
            w.begin_inline_object();
            w.field_str("event", "loss_burst");
            w.field_u64("from_ms", from.as_millis());
            w.field_u64("until_ms", until.as_millis());
            w.field_u64("loss_bits", loss.to_bits());
            w.end_inline_object();
        }
        FaultEvent::DelaySpike { from, until, extra } => {
            w.begin_inline_object();
            w.field_str("event", "delay_spike");
            w.field_u64("from_ms", from.as_millis());
            w.field_u64("until_ms", until.as_millis());
            w.field_u64("extra_ms", extra.as_millis());
            w.end_inline_object();
        }
        FaultEvent::ClockSkew { node, offset } => {
            w.begin_inline_object();
            w.field_str("event", "clock_skew");
            w.field_u64("node", node.0 as u64);
            w.field_u64("offset_ms", offset.as_millis());
            w.end_inline_object();
        }
    }
}

fn write_store(w: &mut JsonWriter, plan: &StorePlan) {
    w.begin_object();
    w.field_u64("corpus_seed", plan.corpus_seed);
    w.field_u64("events", plan.events as u64);
    w.key("ops");
    w.begin_array();
    for op in &plan.ops {
        w.begin_inline_object();
        match *op {
            StoreOp::FlipBit { offset, bit } => {
                w.field_str("op", "flip_bit");
                w.field_u64("offset", offset);
                w.field_u64("bit", bit as u64);
            }
            StoreOp::DropRange { offset, len } => {
                w.field_str("op", "drop_range");
                w.field_u64("offset", offset);
                w.field_u64("len", len);
            }
            StoreOp::ZeroRange { offset, len } => {
                w.field_str("op", "zero_range");
                w.field_u64("offset", offset);
                w.field_u64("len", len);
            }
            StoreOp::TruncateAt { offset } => {
                w.field_str("op", "truncate_at");
                w.field_u64("offset", offset);
            }
        }
        w.end_inline_object();
    }
    w.end_array();
    w.end_object();
}

fn write_parexec(w: &mut JsonWriter, plan: &ParexecPlan) {
    w.begin_object();
    w.field_u64("seed", plan.seed);
    w.field_u64("payments", plan.payments);
    w.field_u64("chunk_size", plan.chunk_size);
    w.field_u64("exec_workers", plan.exec_workers);
    w.field_u64("communities", plan.communities);
    w.end_object();
}

// ---------------------------------------------------------------- parsing

/// A parsed JSON value. Numbers are integers only — the writer never
/// emits fractional values into case documents.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of document".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("unpaired surrogate in \\u escape")?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {:?}", other as char)),
            }
        }
    }
}

fn parse_json(doc: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

fn get<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    match json {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}")),
        _ => Err(format!("expected object while reading {key:?}")),
    }
}

fn get_u64(json: &Json, key: &str) -> Result<u64, String> {
    match get(json, key)? {
        Json::Int(v) if *v >= 0 && *v <= u64::MAX as i128 => Ok(*v as u64),
        _ => Err(format!("field {key:?} is not a u64")),
    }
}

fn get_u32(json: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(json, key)?).map_err(|_| format!("field {key:?} overflows u32"))
}

fn get_u8(json: &Json, key: &str) -> Result<u8, String> {
    u8::try_from(get_u64(json, key)?).map_err(|_| format!("field {key:?} overflows u8"))
}

fn get_str(json: &Json, key: &str) -> Result<String, String> {
    match get(json, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

fn get_raw(json: &Json, key: &str) -> Result<i128, String> {
    match get(json, key)? {
        Json::Str(s) => s
            .parse::<i128>()
            .map_err(|e| format!("field {key:?} is not a raw value: {e}")),
        _ => Err(format!("field {key:?} is not a raw-value string")),
    }
}

fn get_arr<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    match get(json, key)? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("field {key:?} is not an array")),
    }
}

fn as_u64(json: &Json, what: &str) -> Result<u64, String> {
    match json {
        Json::Int(v) if *v >= 0 && *v <= u64::MAX as i128 => Ok(*v as u64),
        _ => Err(format!("{what} element is not a u64")),
    }
}

fn read_amount(json: &Json, key: &str) -> Result<CaseAmount, String> {
    let obj = get(json, key)?;
    Ok(CaseAmount {
        currency: get_u8(obj, "currency")?,
        raw: get_raw(obj, "raw")?,
        issuer: get_u8(obj, "issuer")?,
    })
}

fn read_ledger(json: &Json) -> Result<LedgerCasePlan, String> {
    let genesis = get_arr(json, "genesis")?
        .iter()
        .map(|v| as_u64(v, "genesis"))
        .collect::<Result<Vec<_>, _>>()?;
    let ops = get_arr(json, "ops")?
        .iter()
        .map(read_op)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LedgerCasePlan { genesis, ops })
}

fn read_op(json: &Json) -> Result<Op, String> {
    let kind = match get_str(json, "op")?.as_str() {
        "xrp_pay" => OpKind::XrpPay {
            to: get_u8(json, "to")?,
            drops: get_u64(json, "drops")?,
        },
        "iou_pay" => OpKind::IouPay {
            to: get_u8(json, "to")?,
            currency: get_u8(json, "currency")?,
            amount: get_raw(json, "amount")?,
            path: get_arr(json, "path")?
                .iter()
                .map(|v| as_u64(v, "path").map(|h| h as u8))
                .collect::<Result<Vec<_>, _>>()?,
        },
        "trust_set" => OpKind::TrustSet {
            trustee: get_u8(json, "trustee")?,
            currency: get_u8(json, "currency")?,
            limit: get_raw(json, "limit")?,
        },
        "offer_create" => OpKind::OfferCreate {
            gets: read_amount(json, "gets")?,
            pays: read_amount(json, "pays")?,
        },
        "offer_cancel" => OpKind::OfferCancel {
            offer_seq: get_u32(json, "offer_seq")?,
        },
        "account_set" => OpKind::AccountSet {
            flags: get_u32(json, "flags")?,
        },
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Op {
        actor: get_u8(json, "actor")?,
        fee: get_u64(json, "fee")?,
        seq_skew: get_u32(json, "seq_skew")?,
        kind,
    })
}

fn read_engine(json: &Json) -> Result<EnginePlan, String> {
    let genesis = get_arr(json, "genesis")?
        .iter()
        .map(|v| as_u64(v, "genesis"))
        .collect::<Result<Vec<_>, _>>()?;
    let trust = get_arr(json, "trust")?
        .iter()
        .map(|entry| {
            Ok((
                get_u8(entry, "truster")?,
                get_u8(entry, "trustee")?,
                get_u8(entry, "currency")?,
                get_raw(entry, "limit")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hops = get_arr(json, "hops")?
        .iter()
        .map(|entry| {
            Ok((
                get_u8(entry, "from")?,
                get_u8(entry, "to")?,
                get_u8(entry, "currency")?,
                get_raw(entry, "amount")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(EnginePlan {
        genesis,
        trust,
        hops,
        sender: get_u8(json, "sender")?,
        destination: get_u8(json, "destination")?,
        currency: get_u8(json, "currency")?,
        amount: get_raw(json, "amount")?,
    })
}

fn read_router(json: &Json) -> Result<RouterPlan, String> {
    let genesis = get_arr(json, "genesis")?
        .iter()
        .map(|v| as_u64(v, "genesis"))
        .collect::<Result<Vec<_>, _>>()?;
    let trust = get_arr(json, "trust")?
        .iter()
        .map(|entry| {
            Ok((
                get_u8(entry, "truster")?,
                get_u8(entry, "trustee")?,
                get_u8(entry, "currency")?,
                get_raw(entry, "limit")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let hops = get_arr(json, "hops")?
        .iter()
        .map(|entry| {
            Ok((
                get_u8(entry, "from")?,
                get_u8(entry, "to")?,
                get_u8(entry, "currency")?,
                get_raw(entry, "amount")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let queries = get_arr(json, "queries")?
        .iter()
        .map(|entry| {
            Ok(RouterQuery {
                sender: get_u8(entry, "sender")?,
                destination: get_u8(entry, "destination")?,
                amount: get_raw(entry, "amount")?,
                mutate_truster: get_u8(entry, "mutate_truster")?,
                mutate_trustee: get_u8(entry, "mutate_trustee")?,
                mutate_limit: get_raw(entry, "mutate_limit")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RouterPlan {
        genesis,
        trust,
        hops,
        queries,
        currency: get_u8(json, "currency")?,
    })
}

fn read_book(json: &Json) -> Result<BookPlan, String> {
    let offers = get_arr(json, "offers")?
        .iter()
        .map(|entry| {
            Ok(BookOffer {
                owner: get_u8(entry, "owner")?,
                offer_seq: get_u32(entry, "offer_seq")?,
                gets_raw: get_raw(entry, "gets")?,
                pays_raw: get_raw(entry, "pays")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BookPlan {
        offers,
        fill_raw: get_raw(json, "fill")?,
    })
}

fn read_consensus(json: &Json) -> Result<ConsensusPlan, String> {
    let events = get_arr(json, "events")?
        .iter()
        .map(read_fault_event)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConsensusPlan {
        validators: get_u64(json, "validators")? as usize,
        rounds: get_u64(json, "rounds")?,
        campaign_seed: get_u64(json, "campaign_seed")?,
        events,
    })
}

fn read_nodes(json: &Json, key: &str) -> Result<Vec<NodeId>, String> {
    get_arr(json, key)?
        .iter()
        .map(|v| as_u64(v, key).map(|n| NodeId(n as usize)))
        .collect()
}

fn read_fault_event(json: &Json) -> Result<FaultEvent, String> {
    let ms =
        |key: &str| -> Result<SimTime, String> { Ok(SimTime::from_millis(get_u64(json, key)?)) };
    Ok(match get_str(json, "event")?.as_str() {
        "partition_at" => FaultEvent::PartitionAt {
            at: ms("at_ms")?,
            left: read_nodes(json, "left")?,
            right: read_nodes(json, "right")?,
        },
        "heal_at" => FaultEvent::HealAt { at: ms("at_ms")? },
        "crash_at" => FaultEvent::CrashAt {
            at: ms("at_ms")?,
            node: NodeId(get_u64(json, "node")? as usize),
        },
        "restart_at" => FaultEvent::RestartAt {
            at: ms("at_ms")?,
            node: NodeId(get_u64(json, "node")? as usize),
        },
        "loss_burst" => FaultEvent::LossBurst {
            from: ms("from_ms")?,
            until: ms("until_ms")?,
            loss: f64::from_bits(get_u64(json, "loss_bits")?),
        },
        "delay_spike" => FaultEvent::DelaySpike {
            from: ms("from_ms")?,
            until: ms("until_ms")?,
            extra: ms("extra_ms")?,
        },
        "clock_skew" => FaultEvent::ClockSkew {
            node: NodeId(get_u64(json, "node")? as usize),
            offset: ms("offset_ms")?,
        },
        other => return Err(format!("unknown fault event {other:?}")),
    })
}

fn read_store(json: &Json) -> Result<StorePlan, String> {
    let ops = get_arr(json, "ops")?
        .iter()
        .map(|entry| {
            Ok(match get_str(entry, "op")?.as_str() {
                "flip_bit" => StoreOp::FlipBit {
                    offset: get_u64(entry, "offset")?,
                    bit: get_u8(entry, "bit")?,
                },
                "drop_range" => StoreOp::DropRange {
                    offset: get_u64(entry, "offset")?,
                    len: get_u64(entry, "len")?,
                },
                "zero_range" => StoreOp::ZeroRange {
                    offset: get_u64(entry, "offset")?,
                    len: get_u64(entry, "len")?,
                },
                "truncate_at" => StoreOp::TruncateAt {
                    offset: get_u64(entry, "offset")?,
                },
                other => return Err(format!("unknown store op {other:?}")),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(StorePlan {
        corpus_seed: get_u64(json, "corpus_seed")?,
        events: get_u64(json, "events")? as usize,
        ops,
    })
}

fn read_parexec(json: &Json) -> Result<ParexecPlan, String> {
    Ok(ParexecPlan {
        seed: get_u64(json, "seed")?,
        payments: get_u64(json, "payments")?,
        chunk_size: get_u64(json, "chunk_size")?,
        exec_workers: get_u64(json, "exec_workers")?,
        communities: get_u64(json, "communities")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_book_plan, gen_engine_plan, gen_ledger_plan, gen_router_plan};
    use crate::parexec::gen_parexec_plan;
    use crate::storefuzz::gen_store_plan;

    #[test]
    fn every_payload_round_trips_byte_for_byte() {
        let cases = vec![
            CheckCase {
                seed: 7,
                divergence: "unit \"quoted\" text\nwith a newline".to_string(),
                payload: CasePayload::Ledger(gen_ledger_plan(7, 25)),
            },
            CheckCase {
                seed: 8,
                divergence: "engine".to_string(),
                payload: CasePayload::Engine(gen_engine_plan(8)),
            },
            CheckCase {
                seed: 9,
                divergence: "book".to_string(),
                payload: CasePayload::Book(gen_book_plan(9)),
            },
            CheckCase {
                seed: 10,
                divergence: "consensus".to_string(),
                payload: CasePayload::Consensus(crate::explore::gen_consensus_plan(10)),
            },
            CheckCase {
                seed: 11,
                divergence: "store".to_string(),
                payload: CasePayload::Store(gen_store_plan(11)),
            },
            CheckCase {
                seed: 12,
                divergence: "parexec".to_string(),
                payload: CasePayload::Parexec(gen_parexec_plan(12)),
            },
            CheckCase {
                seed: 13,
                divergence: "router".to_string(),
                payload: CasePayload::Router(gen_router_plan(13)),
            },
        ];
        for case in cases {
            let doc = case.to_json();
            let parsed = CheckCase::from_json(&doc).expect("parse back");
            assert_eq!(parsed, case, "structural round trip");
            assert_eq!(parsed.to_json(), doc, "byte round trip");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(CheckCase::from_json("").is_err());
        assert!(CheckCase::from_json("{}").is_err());
        assert!(CheckCase::from_json("{\"schema_version\": 1}").is_err());
        assert!(CheckCase::from_json("not json at all").is_err());
    }
}
