//! The budgeted check runner: round-robins the seven differential targets,
//! shrinks any divergence with [`ddmin`], and packages the result as a
//! replayable [`CheckCase`].

use std::time::{Duration, Instant};

use ripple_obs::LazyCounter;

use crate::case::{CasePayload, CheckCase};
use crate::diff::{run_book_plan, run_engine_plan, run_ledger_plan, run_router_plan};
use crate::explore::{gen_consensus_plan, run_consensus_plan, ConsensusPlan};
use crate::gen::{
    gen_book_plan, gen_engine_plan, gen_ledger_plan, gen_router_plan, BookPlan, EnginePlan,
    LedgerCasePlan, RouterPlan,
};
use crate::parexec::{gen_parexec_plan, run_parexec_plan, shrink_parexec_plan};
use crate::shrink::ddmin;
use crate::storefuzz::{gen_store_plan, run_store_plan, StorePlan};

static CASES_RUN: LazyCounter = LazyCounter::new("check.cases.run");
static DIVERGENCES: LazyCounter = LazyCounter::new("check.divergences");
static SHRINK_STEPS: LazyCounter = LazyCounter::new("check.shrink.steps");

/// The differential targets the runner cycles through.
pub const TARGETS: [&str; 7] = [
    "ledger",
    "engine",
    "book",
    "store",
    "consensus",
    "parexec",
    "router",
];

/// Configuration for one [`run_check`] campaign.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Campaign seed; case `i` derives its seed from `seed` and `i`.
    pub seed: u64,
    /// Operations per generated ledger case.
    pub ops: usize,
    /// Wall-clock budget; checked between cases, so the campaign overruns
    /// by at most one case.
    pub budget: Duration,
    /// Run at least this many cases even if the budget has lapsed.
    pub min_cases: u64,
    /// Hard cap on cases regardless of remaining budget.
    pub max_cases: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 7,
            ops: 40,
            budget: Duration::from_secs(10),
            min_cases: 50,
            max_cases: 1_000_000,
        }
    }
}

/// Outcome of a [`run_check`] campaign.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Total cases executed, across all targets.
    pub cases_run: u64,
    /// Cases executed per target, indexed like [`TARGETS`].
    pub per_target: [u64; 7],
    /// Every divergence found, shrunk and replayable.
    pub divergences: Vec<CheckCase>,
    /// Total shrink-candidate evaluations spent minimizing divergences.
    pub shrink_steps: u64,
    /// Wall-clock time the campaign took.
    pub elapsed: Duration,
}

impl CheckReport {
    /// True when no target diverged.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// splitmix64 — decorrelates per-case seeds from the campaign seed.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs one budgeted differential campaign over all seven targets.
///
/// Case `i` exercises target `i % 7` with seed `mix(config.seed, i)`, so a
/// campaign with the same seed and budget ordering is deterministic in
/// which cases it generates (the budget only decides how many run). Every
/// divergence is shrunk to a minimal plan before being reported.
pub fn run_check(config: &CheckConfig) -> CheckReport {
    let started = Instant::now();
    // Touch every counter up front so a clean run still reports all three
    // names in the metrics snapshot, not just the ones that incremented.
    CASES_RUN.add(0);
    DIVERGENCES.add(0);
    SHRINK_STEPS.add(0);
    let mut report = CheckReport {
        cases_run: 0,
        per_target: [0; 7],
        divergences: Vec::new(),
        shrink_steps: 0,
        elapsed: Duration::ZERO,
    };
    for i in 0..config.max_cases {
        if i >= config.min_cases && started.elapsed() >= config.budget {
            break;
        }
        let case_seed = mix(config.seed, i);
        let target = (i % 7) as usize;
        report.cases_run += 1;
        report.per_target[target] += 1;
        CASES_RUN.add(1);
        let found = match target {
            0 => check_ledger(case_seed, config.ops, &mut report),
            1 => check_engine(case_seed, &mut report),
            2 => check_book(case_seed, &mut report),
            3 => check_store(case_seed, &mut report),
            4 => check_consensus(case_seed, &mut report),
            5 => check_parexec(case_seed, &mut report),
            _ => check_router(case_seed, &mut report),
        };
        if let Some(case) = found {
            DIVERGENCES.add(1);
            report.divergences.push(case);
        }
    }
    report.elapsed = started.elapsed();
    report
}

/// Records `steps` shrink evaluations against both the report and metrics.
fn note_steps(report: &mut CheckReport, steps: u64) {
    report.shrink_steps += steps;
    SHRINK_STEPS.add(steps);
}

fn check_ledger(seed: u64, ops: usize, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_ledger_plan(seed, ops);
    run_ledger_plan(&plan)?;
    let (min_ops, steps) = ddmin(&plan.ops, |subset| {
        run_ledger_plan(&LedgerCasePlan {
            genesis: plan.genesis.clone(),
            ops: subset.to_vec(),
        })
        .is_some()
    });
    note_steps(report, steps);
    let shrunk = LedgerCasePlan {
        genesis: plan.genesis,
        ops: min_ops,
    };
    let divergence = run_ledger_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Ledger(shrunk),
    })
}

fn check_engine(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_engine_plan(seed);
    run_engine_plan(&plan)?;
    // Shrink the debt hops first (they are pure setup), then the trust
    // graph itself; the payment parameters stay fixed.
    let (min_hops, hop_steps) = ddmin(&plan.hops, |subset| {
        run_engine_plan(&EnginePlan {
            hops: subset.to_vec(),
            ..plan.clone()
        })
        .is_some()
    });
    let hop_shrunk = EnginePlan {
        hops: min_hops,
        ..plan.clone()
    };
    let (min_trust, trust_steps) = ddmin(&hop_shrunk.trust, |subset| {
        run_engine_plan(&EnginePlan {
            trust: subset.to_vec(),
            ..hop_shrunk.clone()
        })
        .is_some()
    });
    note_steps(report, hop_steps + trust_steps);
    let shrunk = EnginePlan {
        trust: min_trust,
        ..hop_shrunk
    };
    let divergence = run_engine_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Engine(shrunk),
    })
}

fn check_book(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_book_plan(seed);
    run_book_plan(&plan)?;
    let (min_offers, steps) = ddmin(&plan.offers, |subset| {
        run_book_plan(&BookPlan {
            offers: subset.to_vec(),
            fill_raw: plan.fill_raw,
        })
        .is_some()
    });
    note_steps(report, steps);
    let shrunk = BookPlan {
        offers: min_offers,
        fill_raw: plan.fill_raw,
    };
    let divergence = run_book_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Book(shrunk),
    })
}

fn check_store(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_store_plan(seed);
    run_store_plan(&plan)?;
    let (min_ops, steps) = ddmin(&plan.ops, |subset| {
        run_store_plan(&StorePlan {
            corpus_seed: plan.corpus_seed,
            events: plan.events,
            ops: subset.to_vec(),
        })
        .is_some()
    });
    note_steps(report, steps);
    let shrunk = StorePlan {
        corpus_seed: plan.corpus_seed,
        events: plan.events,
        ops: min_ops,
    };
    let divergence = run_store_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Store(shrunk),
    })
}

fn check_consensus(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_consensus_plan(seed);
    run_consensus_plan(&plan)?;
    let (min_events, steps) = ddmin(&plan.events, |subset| {
        run_consensus_plan(&ConsensusPlan {
            events: subset.to_vec(),
            ..plan.clone()
        })
        .is_some()
    });
    note_steps(report, steps);
    let shrunk = ConsensusPlan {
        events: min_events,
        ..plan
    };
    let divergence = run_consensus_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Consensus(shrunk),
    })
}

fn check_parexec(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_parexec_plan(seed);
    run_parexec_plan(&plan)?;
    let (shrunk, steps) = shrink_parexec_plan(&plan);
    note_steps(report, steps);
    let divergence = run_parexec_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Parexec(shrunk),
    })
}

fn check_router(seed: u64, report: &mut CheckReport) -> Option<CheckCase> {
    let plan = gen_router_plan(seed);
    run_router_plan(&plan)?;
    // Shrink the query stream first (later queries are usually innocent
    // bystanders), then the debt hops, then the trust graph.
    let (min_queries, query_steps) = ddmin(&plan.queries, |subset| {
        run_router_plan(&RouterPlan {
            queries: subset.to_vec(),
            ..plan.clone()
        })
        .is_some()
    });
    let query_shrunk = RouterPlan {
        queries: min_queries,
        ..plan.clone()
    };
    let (min_hops, hop_steps) = ddmin(&query_shrunk.hops, |subset| {
        run_router_plan(&RouterPlan {
            hops: subset.to_vec(),
            ..query_shrunk.clone()
        })
        .is_some()
    });
    let hop_shrunk = RouterPlan {
        hops: min_hops,
        ..query_shrunk
    };
    let (min_trust, trust_steps) = ddmin(&hop_shrunk.trust, |subset| {
        run_router_plan(&RouterPlan {
            trust: subset.to_vec(),
            ..hop_shrunk.clone()
        })
        .is_some()
    });
    note_steps(report, query_steps + hop_steps + trust_steps);
    let shrunk = RouterPlan {
        trust: min_trust,
        ..hop_shrunk
    };
    let divergence = run_router_plan(&shrunk).expect("shrunk case still fails");
    Some(CheckCase {
        seed,
        divergence,
        payload: CasePayload::Router(shrunk),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_clean_and_deterministic() {
        let config = CheckConfig {
            seed: 7,
            ops: 20,
            budget: Duration::ZERO,
            min_cases: 21,
            max_cases: 21,
        };
        let a = run_check(&config);
        assert_eq!(a.cases_run, 21);
        assert_eq!(a.per_target, [3, 3, 3, 3, 3, 3, 3]);
        assert!(
            a.clean(),
            "differential smoke campaign diverged: {}",
            a.divergences[0].divergence
        );
        let b = run_check(&config);
        assert_eq!(b.cases_run, a.cases_run);
        assert!(b.clean());
    }
}
