//! Delta-debugging minimization for failing cases.

/// Minimizes `items` with ddmin-style chunk removal: repeatedly drops
/// contiguous chunks (halving the chunk size whenever a whole pass removes
/// nothing) while `still_fails` keeps returning `true` for the remainder.
///
/// Returns the minimal failing subset and the number of candidate
/// evaluations (shrink steps) performed. The predicate is never called on
/// the unmodified input — callers establish that it fails before shrinking.
pub fn ddmin<T: Clone>(items: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> (Vec<T>, u64) {
    let mut current: Vec<T> = items.to_vec();
    let mut steps = 0u64;
    let mut chunk = current.len().div_ceil(2).max(1);
    while !current.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            steps += 1;
            if still_fails(&candidate) {
                current = candidate;
                removed_any = true;
                // The next chunk has slid into `start`; re-test in place.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        chunk = chunk.min(current.len().max(1));
    }
    (current, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolates_a_single_culprit() {
        let items: Vec<u32> = (0..50).collect();
        let (min, steps) = ddmin(&items, |subset| subset.contains(&37));
        assert_eq!(min, vec![37]);
        assert!(steps > 0);
    }

    #[test]
    fn keeps_interacting_pairs() {
        let items: Vec<u32> = (0..32).collect();
        let (min, _) = ddmin(&items, |s| s.contains(&3) && s.contains(&29));
        assert_eq!(min, vec![3, 29]);
    }

    #[test]
    fn empty_failing_subset_shrinks_to_nothing() {
        let items = vec![1, 2, 3];
        let (min, _) = ddmin(&items, |_| true);
        assert!(min.is_empty());
    }
}
