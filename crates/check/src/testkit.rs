//! Shared scaffolding for the workspace's integration tests and examples:
//! the standard cast, funded ledgers, honest validator sets, chaos-run
//! shorthand, and seeded mini-histories.
//!
//! Everything here is deterministic — same arguments, same objects — so
//! tests built on it can assert exact values.

use ripple_consensus::{ChaosCampaign, ChaosOutcome, Validator, ValidatorProfile};
use ripple_crypto::AccountId;
use ripple_ledger::{Currency, Drops, LedgerState, Value};
use ripple_netsim::{FaultPlan, SimTime};
use ripple_synth::{Generator, SynthConfig, SynthOutput};

/// The standard cast account for index `i`: `AccountId` of twenty `i`
/// bytes. Index 0 is reserved (the all-zero id reads as a placeholder in
/// dumps), so tests usually start at 1.
pub fn acct(i: u8) -> AccountId {
    AccountId::from_bytes([i; 20])
}

/// The first `n` cast accounts, indices `1..=n`.
pub fn cast(n: u8) -> Vec<AccountId> {
    (1..=n).map(acct).collect()
}

/// A ledger with cast accounts `1..=n` created and funded with `xrp` each.
pub fn funded_state(n: u8, xrp: u64) -> LedgerState {
    let mut state = LedgerState::new();
    for id in cast(n) {
        state.create_account(id, Drops::from_xrp(xrp));
    }
    state
}

/// `n` fully honest, always-available validators named `v0..`.
pub fn honest_validators(n: usize) -> Vec<Validator> {
    (0..n)
        .map(|i| {
            Validator::new(
                i,
                format!("v{i}"),
                ValidatorProfile::Reliable { availability: 1.0 },
            )
        })
        .collect()
}

/// Millisecond shorthand for [`SimTime`].
pub fn ms(t: u64) -> SimTime {
    SimTime::from_millis(t)
}

/// Runs a standard chaos campaign — five honest validators, 100ms
/// iterations (500ms rounds) — panicking if the no-fork invariant breaks,
/// so the returned outcome is always from a safe run.
pub fn chaos_run(plan: FaultPlan, rounds: u64, seed: u64) -> ChaosOutcome {
    ChaosCampaign::new(honest_validators(5), plan, rounds, seed)
        .with_iteration_timeout(ms(100))
        .run()
        .expect("no-fork invariant must hold")
}

/// The standard seeded small-history configuration used across the
/// end-to-end suites: `SynthConfig::small(payments)` with the seed set.
pub fn study_config(seed: u64, payments: usize) -> SynthConfig {
    SynthConfig {
        seed,
        ..SynthConfig::small(payments)
    }
}

/// Generates a seeded mini-history directly (for tests that want the raw
/// [`SynthOutput`] without the analysis pipeline on top).
pub fn mini_history(seed: u64, payments: usize) -> SynthOutput {
    Generator::new(study_config(seed, payments)).run()
}

/// Asserts the IOU zero-sum law: for each currency, the net positions of
/// all accounts cancel exactly — debt is moved, never created.
pub fn assert_iou_zero_sum(state: &LedgerState, currencies: &[Currency]) {
    for &currency in currencies {
        let mut total = Value::ZERO;
        let accounts: Vec<AccountId> = state.accounts().map(|(id, _)| *id).collect();
        for account in accounts {
            total = total + state.net_position(account, currency);
        }
        assert!(
            total.is_zero(),
            "net positions in {currency} must cancel, got {total}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funded_state_creates_the_cast() {
        let state = funded_state(4, 100);
        for id in cast(4) {
            assert_eq!(
                state.account(&id).expect("created").balance,
                Drops::from_xrp(100)
            );
        }
        assert_iou_zero_sum(&state, &[Currency::USD]);
    }

    #[test]
    fn mini_history_is_seed_deterministic() {
        let a = mini_history(5, 200);
        let b = mini_history(5, 200);
        assert_eq!(a.events.len(), b.events.len());
    }
}
