//! Differential runners: production engines vs. reference models.
//!
//! Each runner takes a plain-data plan from [`crate::gen`], executes it
//! against both the production code and the oracle, and returns `None`
//! when they agree or a human-readable divergence description when they
//! don't. Divergence strings are deterministic functions of the plan, so
//! a replayed case regenerates its `CHECK_CASE.json` byte-for-byte.

use ripple_crypto::AccountId;
use ripple_ledger::{Currency, Drops, LedgerState, Value};
use ripple_orderbook::{BookSet, OrderBook, Rate};
use ripple_paths::{
    find_payment_paths, PathLimits, PaymentEngine, PaymentError, PaymentRequest, Router,
};

use crate::gen::{
    case_currency, case_keypair, cast_account, op_to_tx, BookPlan, EnginePlan, LedgerCasePlan,
    OpKind, RouterPlan,
};
use crate::model::ModelLedger;
use crate::oracle::{max_deliverable, NaiveBook};

/// A deterministic, order-independent dump of the full ledger state, used
/// to assert that failed operations leave the state untouched.
pub fn fingerprint(state: &LedgerState) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let mut accounts: Vec<(AccountId, u64, u32, u32)> = state
        .accounts()
        .map(|(&id, r)| (id, r.balance.as_drops(), r.sequence, r.owner_count))
        .collect();
    accounts.sort_unstable();
    for (id, balance, seq, owned) in accounts {
        let _ = writeln!(s, "a {id} {balance} {seq} {owned}");
    }
    let mut trust: Vec<(AccountId, AccountId, Currency, i128)> = state
        .trust_lines()
        .map(|l| (l.truster, l.trustee, l.currency, l.limit.raw()))
        .collect();
    trust.sort_unstable();
    for (truster, trustee, cur, limit) in trust {
        let _ = writeln!(s, "t {truster} {trustee} {cur:?} {limit}");
    }
    let mut pairs: Vec<(AccountId, AccountId, Currency, i128)> = state
        .pair_balances()
        .map(|(low, high, cur, val)| (low, high, cur, val.raw()))
        .collect();
    pairs.sort_unstable();
    for (low, high, cur, raw) in pairs {
        let _ = writeln!(s, "p {low} {high} {cur:?} {raw}");
    }
    let mut offers: Vec<String> = state
        .offers()
        .map(|o| {
            format!(
                "o {} {} {:?} {:?}",
                o.owner, o.offer_seq, o.taker_gets, o.taker_pays
            )
        })
        .collect();
    offers.sort_unstable();
    for line in offers {
        let _ = writeln!(s, "{line}");
    }
    let _ = writeln!(s, "burned {}", state.total_burned().as_drops());
    s
}

/// Runs a ledger plan through `LedgerState::apply` and [`ModelLedger`],
/// checking result equality, state equality, XRP conservation, per-hop
/// trust limits, and end-of-case book/ledger offer consistency.
pub fn run_ledger_plan(plan: &LedgerCasePlan) -> Option<String> {
    let cast_len = (plan.genesis.len() + 1) as u8; // one extra ghost slot
    let keys = case_keypair();
    let mut state = LedgerState::new();
    let mut model = ModelLedger::new();
    let total_genesis: u128 = plan.genesis.iter().map(|&d| d as u128).sum();
    for (i, &drops) in plan.genesis.iter().enumerate() {
        state.create_account(cast_account(i as u8), Drops::new(drops));
        model.create_account(cast_account(i as u8), Drops::new(drops));
    }
    for (step, op) in plan.ops.iter().enumerate() {
        let actor = cast_account(op.actor % cast_len);
        let live_seq = state.account(&actor).map(|r| r.sequence).unwrap_or(1);
        let tx = op_to_tx(op, cast_len, live_seq, &keys);
        let got = state.apply(&tx);
        let want = model.apply(&tx);
        if got != want {
            return Some(format!(
                "step {step} ({}): ledger returned {got:?}, model returned {want:?}",
                tx.kind.label()
            ));
        }
        if let Err(msg) = model.compare(&state) {
            return Some(format!(
                "step {step} ({}): state diverged: {msg}",
                tx.kind.label()
            ));
        }
        let total: u128 = state
            .accounts()
            .map(|(_, r)| r.balance.as_drops() as u128)
            .sum::<u128>()
            + state.total_burned().as_drops() as u128;
        if total != total_genesis {
            return Some(format!(
                "step {step}: XRP not conserved: genesis {total_genesis} drops, \
                 balances + burn now {total}"
            ));
        }
        if got.is_ok() {
            if let OpKind::IouPay {
                to, currency, path, ..
            } = &op.kind
            {
                let cur = case_currency(*currency);
                let mut chain = vec![actor];
                chain.extend(path.iter().map(|&h| cast_account(h % cast_len)));
                chain.push(cast_account(to % cast_len));
                for pair in chain.windows(2) {
                    let held = state.iou_balance(pair[1], pair[0], cur);
                    let limit = state.trust_limit(pair[1], pair[0], cur);
                    if held > limit {
                        return Some(format!(
                            "step {step}: trust limit exceeded after payment: \
                             {} holds {held} of {} but trusts only {limit}",
                            pair[1], pair[0]
                        ));
                    }
                }
            }
        }
    }
    // Every ratable resting offer must surface in the book set, and
    // nothing else.
    let books = BookSet::from_ledger(&state);
    let ratable = state
        .offers()
        .filter(|o| Rate::from_amounts(o.taker_pays.value(), o.taker_gets.value()).is_some())
        .count();
    if books.total_offers() != ratable {
        return Some(format!(
            "book/ledger offer mismatch: {} ratable offers in ledger, {} in books",
            ratable,
            books.total_offers()
        ));
    }
    None
}

/// Builds a plan's starting state from genesis balances, attempted trust
/// lines and attempted debt hops (setup errors are skipped — the plan
/// describes attempts, not guaranteed effects).
fn setup_state(
    genesis: &[u64],
    trust: &[(u8, u8, u8, i128)],
    hops: &[(u8, u8, u8, i128)],
) -> (LedgerState, u8) {
    let cast_len = genesis.len().max(1) as u8;
    let mut state = LedgerState::new();
    for (i, &drops) in genesis.iter().enumerate() {
        state.create_account(cast_account(i as u8), Drops::new(drops));
    }
    for &(truster, trustee, cur, limit) in trust {
        let _ = state.set_trust(
            cast_account(truster % cast_len),
            cast_account(trustee % cast_len),
            case_currency(cur % 3),
            Value::from_raw(limit),
        );
    }
    for &(from, to, cur, amount) in hops {
        let _ = state.ripple_hop(
            cast_account(from % cast_len),
            cast_account(to % cast_len),
            case_currency(cur % 3),
            Value::from_raw(amount),
        );
    }
    (state, cast_len)
}

/// Builds the engine plan's starting state.
fn engine_state(plan: &EnginePlan) -> (LedgerState, u8) {
    setup_state(&plan.genesis, &plan.trust, &plan.hops)
}

/// Runs one engine payment against the max-flow oracle: a successful
/// payment must be oracle-feasible and move exactly the requested net
/// positions; a `NoPath` failure must leave the state untouched and be
/// confirmed infeasible (re-checked under a generous path budget, since
/// the default budget legitimately truncates).
pub fn run_engine_plan(plan: &EnginePlan) -> Option<String> {
    if plan.genesis.is_empty() || plan.amount <= 0 {
        return None;
    }
    let (state, cast_len) = engine_state(plan);
    let sender = cast_account(plan.sender % cast_len);
    let destination = cast_account(plan.destination % cast_len);
    if sender == destination {
        return None;
    }
    let currency = case_currency(plan.currency % 3);
    let amount = Value::from_raw(plan.amount);
    let before = fingerprint(&state);
    let net_before: Vec<i128> = (0..cast_len)
        .map(|i| state.net_position(cast_account(i), currency).raw())
        .collect();
    let oracle_max = max_deliverable(&state, sender, destination, currency, plan.amount);
    let request = PaymentRequest {
        sender,
        destination,
        currency,
        amount,
        source_currency: None,
        send_max: None,
    };
    let engine = PaymentEngine::with_limits(PathLimits {
        max_paths: 64,
        max_hops: 8,
    });
    let mut work = state.clone();
    match engine.pay(&mut work, &request) {
        Ok(executed) => {
            if executed.delivered != amount {
                return Some(format!(
                    "engine reported success but delivered {} of {amount}",
                    executed.delivered
                ));
            }
            if oracle_max < plan.amount {
                return Some(format!(
                    "engine delivered {amount} but max-flow oracle says only {oracle_max} \
                     raw units are feasible"
                ));
            }
            for i in 0..cast_len {
                let id = cast_account(i);
                let delta = work.net_position(id, currency).raw() - net_before[i as usize];
                let expected = if id == sender {
                    -plan.amount
                } else if id == destination {
                    plan.amount
                } else {
                    0
                };
                if delta != expected {
                    return Some(format!(
                        "net position of {id} moved by {delta} raw units (expected {expected})"
                    ));
                }
            }
            for (id, root) in work.accounts() {
                if state.account(id).map(|r| r.balance) != Some(root.balance) {
                    return Some(format!(
                        "same-currency IOU payment moved the XRP balance of {id}"
                    ));
                }
            }
        }
        Err(PaymentError::NoPath { carried, requested }) => {
            if fingerprint(&work) != before {
                return Some("failed payment left the ledger modified".to_string());
            }
            if requested != amount {
                return Some(format!(
                    "NoPath reported requested {requested}, but the request was {amount}"
                ));
            }
            if carried.raw() > oracle_max {
                return Some(format!(
                    "engine claims it carried {} raw units but the oracle caps flow at {oracle_max}",
                    carried.raw()
                ));
            }
            if oracle_max >= plan.amount {
                // The default budget can truncate; only a generous budget
                // disagreeing with the oracle is a divergence.
                let generous = PaymentEngine::with_limits(PathLimits {
                    max_paths: 4096,
                    max_hops: 8,
                });
                let mut retry = state.clone();
                if generous.pay(&mut retry, &request).is_err() {
                    return Some(format!(
                        "engine finds no path for {amount} even with 4096 paths, but the \
                         max-flow oracle delivers {oracle_max} raw units"
                    ));
                }
            }
        }
        Err(_) => {
            if fingerprint(&work) != before {
                return Some("failed payment left the ledger modified".to_string());
            }
        }
    }
    None
}

/// Runs a router plan: a persistent cache-on [`Router`] answers a stream
/// of queries interleaved with trust mutations, and every answer must
/// (1) equal a cold cache-off [`find_payment_paths`] search, (2) never
/// carry more than the max-flow oracle allows, and (3) agree with a
/// [`PaymentEngine::pay`] replay — full plans execute and deliver exactly
/// the requested amount, partial plans fail as `NoPath` with the same
/// carried total.
pub fn run_router_plan(plan: &RouterPlan) -> Option<String> {
    if plan.genesis.is_empty() {
        return None;
    }
    let limits = PathLimits {
        max_paths: 64,
        max_hops: 8,
    };
    let (mut state, cast_len) = setup_state(&plan.genesis, &plan.trust, &plan.hops);
    let currency = case_currency(plan.currency % 3);
    let mut router = Router::new(limits);
    let engine = PaymentEngine::with_limits(limits);
    for (step, q) in plan.queries.iter().enumerate() {
        if q.mutate_limit >= 0 {
            let _ = state.set_trust(
                cast_account(q.mutate_truster % cast_len),
                cast_account(q.mutate_trustee % cast_len),
                currency,
                Value::from_raw(q.mutate_limit),
            );
        }
        let sender = cast_account(q.sender % cast_len);
        let destination = cast_account(q.destination % cast_len);
        if sender == destination || q.amount <= 0 {
            continue;
        }
        let amount = Value::from_raw(q.amount);
        let cached = router.route(&state, sender, destination, currency, amount);
        let cold = find_payment_paths(&state, sender, destination, currency, amount, limits);
        if cached != cold {
            return Some(format!(
                "query {step}: cache-on router returned {} paths carrying {}, \
                 cold search returned {} paths carrying {}",
                cached.len(),
                ripple_paths::find::carried(&cached),
                cold.len(),
                ripple_paths::find::carried(&cold)
            ));
        }
        let carried = ripple_paths::find::carried(&cached);
        let oracle_max = max_deliverable(&state, sender, destination, currency, q.amount);
        if carried.raw() > oracle_max {
            return Some(format!(
                "query {step}: router plan carries {} raw units but the max-flow \
                 oracle caps flow at {oracle_max}",
                carried.raw()
            ));
        }
        let request = PaymentRequest {
            sender,
            destination,
            currency,
            amount,
            source_currency: None,
            send_max: None,
        };
        let mut work = state.clone();
        match engine.pay(&mut work, &request) {
            Ok(executed) => {
                if carried < amount {
                    return Some(format!(
                        "query {step}: router carried only {carried} of {amount} \
                         but the engine delivered the payment"
                    ));
                }
                if executed.delivered != amount {
                    return Some(format!(
                        "query {step}: engine delivered {} of {amount}",
                        executed.delivered
                    ));
                }
            }
            Err(PaymentError::NoPath {
                carried: engine_carried,
                ..
            }) => {
                if carried >= amount {
                    return Some(format!(
                        "query {step}: router found a full plan for {amount} but \
                         the engine reports NoPath carrying {engine_carried}"
                    ));
                }
                if engine_carried != carried {
                    return Some(format!(
                        "query {step}: router carried {carried}, engine NoPath \
                         carried {engine_carried}"
                    ));
                }
            }
            Err(other) => {
                return Some(format!(
                    "query {step}: engine failed with {other:?} on a plain IOU payment"
                ));
            }
        }
    }
    None
}

/// Runs a book plan through `OrderBook` and [`NaiveBook`]: quote, fill
/// outcome (including per-offer slices), and the post-fill book must all
/// agree.
pub fn run_book_plan(plan: &BookPlan) -> Option<String> {
    let mut book = OrderBook::new(Currency::EUR, Currency::USD);
    let mut naive = NaiveBook::new();
    for o in &plan.offers {
        let rate = Rate::from_amounts(Value::from_raw(o.pays_raw), Value::from_raw(o.gets_raw));
        let inserted = naive.insert(o.owner, o.offer_seq, o.gets_raw, o.pays_raw);
        match rate {
            Some(r) => {
                if !inserted {
                    return Some(format!(
                        "offer {}#{} is ratable for the book but not the oracle",
                        o.owner, o.offer_seq
                    ));
                }
                book.insert(
                    cast_account(o.owner),
                    o.offer_seq,
                    Value::from_raw(o.gets_raw),
                    r,
                );
            }
            None => {
                if inserted {
                    return Some(format!(
                        "offer {}#{} is ratable for the oracle but not the book",
                        o.owner, o.offer_seq
                    ));
                }
            }
        }
    }
    let quote_book = book
        .quote_buy(Value::from_raw(plan.fill_raw))
        .map(|v| v.raw());
    let quote_naive = naive.quote(plan.fill_raw);
    if quote_book != quote_naive {
        return Some(format!(
            "quote_buy({}) = {quote_book:?}, oracle quote = {quote_naive:?}",
            plan.fill_raw
        ));
    }
    let outcome = book.fill(Value::from_raw(plan.fill_raw));
    let naive_outcome = naive.fill(plan.fill_raw);
    if outcome.filled.raw() != naive_outcome.filled || outcome.paid.raw() != naive_outcome.paid {
        return Some(format!(
            "fill({}) bought {} for {}, oracle bought {} for {}",
            plan.fill_raw,
            outcome.filled.raw(),
            outcome.paid.raw(),
            naive_outcome.filled,
            naive_outcome.paid
        ));
    }
    if outcome.parts.len() != naive_outcome.parts.len() {
        return Some(format!(
            "fill consumed {} offers, oracle consumed {}",
            outcome.parts.len(),
            naive_outcome.parts.len()
        ));
    }
    for (part, &(owner, offer_seq, taken, paid)) in outcome.parts.iter().zip(&naive_outcome.parts) {
        if part.owner != cast_account(owner)
            || part.offer_seq != offer_seq
            || part.taken.raw() != taken
            || part.paid.raw() != paid
        {
            return Some(format!(
                "fill slice differs: book took {} of {}#{} for {}, oracle took {taken} of \
                 {owner}#{offer_seq} for {paid}",
                part.taken.raw(),
                part.owner,
                part.offer_seq,
                part.paid.raw()
            ));
        }
    }
    if book.depth() != naive.depth() || book.liquidity().raw() != naive.liquidity() {
        return Some(format!(
            "post-fill book holds {} offers with {} liquidity, oracle {} with {}",
            book.depth(),
            book.liquidity().raw(),
            naive.depth(),
            naive.liquidity()
        ));
    }
    for (entry, naive_entry) in book.iter().zip(naive.sorted_entries()) {
        if entry.owner != cast_account(naive_entry.owner)
            || entry.offer_seq != naive_entry.offer_seq
            || entry.remaining.raw() != naive_entry.remaining
        {
            return Some(format!(
                "post-fill entry differs: book rests {} of {}#{}, oracle {} of {}#{}",
                entry.remaining.raw(),
                entry.owner,
                entry.offer_seq,
                naive_entry.remaining,
                naive_entry.owner,
                naive_entry.offer_seq
            ));
        }
    }
    None
}
