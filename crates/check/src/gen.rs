//! Seed-deterministic generation of differential-test cases.
//!
//! Every plan here is a plain-old-data description of a scenario — genesis
//! balances plus an operation list — so it can be serialized into a
//! `CHECK_CASE.json`, shrunk element-by-element, and replayed byte-for-byte.
//! Accounts are referred to by small indices into a fixed cast
//! (`AccountId::from_bytes([i + 1; 20])`); the last cast slot is a *ghost*
//! that is never funded, so generated operations can target a nonexistent
//! account and exercise the `NoSuchAccount` rejection paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple_crypto::{AccountId, SimKeypair};
use ripple_ledger::{Amount, Currency, Drops, IouAmount, TxKind, Value};

/// IOU currencies the generator draws from; index 3 maps to XRP, which is
/// hostile input on trust lines and offers.
pub const CURRENCIES: [Currency; 3] = [Currency::USD, Currency::EUR, Currency::BTC];

/// Maps a generated currency index to a concrete currency (`3 => XRP`).
pub fn case_currency(idx: u8) -> Currency {
    match idx & 3 {
        0 => Currency::USD,
        1 => Currency::EUR,
        2 => Currency::BTC,
        _ => Currency::XRP,
    }
}

/// The cast account for index `i` (stable across runs).
pub fn cast_account(i: u8) -> AccountId {
    AccountId::from_bytes([i.wrapping_add(1); 20])
}

/// The shared signing key for generated transactions (`apply` does not
/// verify signatures, so one key signs for the whole cast).
pub fn case_keypair() -> SimKeypair {
    SimKeypair::from_seed(b"check")
}

/// An amount as generated data: `currency & 3 == 3` means XRP (the raw
/// value is then clamped into drops), otherwise an IOU of the indexed
/// currency issued by the indexed cast account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseAmount {
    /// Currency index (see [`case_currency`]).
    pub currency: u8,
    /// Raw [`Value`] units (or drops for XRP, clamped non-negative).
    pub raw: i128,
    /// Issuer cast index (ignored for XRP).
    pub issuer: u8,
}

impl CaseAmount {
    /// Materializes the generated amount.
    pub fn to_amount(&self, cast_len: u8) -> Amount {
        if self.currency & 3 == 3 {
            Amount::Xrp(Drops::new(self.raw.clamp(0, u64::MAX as i128) as u64))
        } else {
            Amount::Iou(IouAmount::new(
                Value::from_raw(self.raw),
                case_currency(self.currency),
                cast_account(self.issuer % cast_len),
            ))
        }
    }
}

/// One generated operation against the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Submitting cast index.
    pub actor: u8,
    /// Transaction fee in drops.
    pub fee: u64,
    /// Offset added to the account's live sequence (non-zero is hostile:
    /// it must be rejected with `BadSequence`).
    pub seq_skew: u32,
    /// The operation itself.
    pub kind: OpKind,
}

/// The kind-specific payload of an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Native XRP payment.
    XrpPay {
        /// Destination cast index.
        to: u8,
        /// Amount in drops.
        drops: u64,
    },
    /// Same-currency IOU payment along an explicit (possibly empty) path.
    IouPay {
        /// Destination cast index.
        to: u8,
        /// Currency index.
        currency: u8,
        /// Raw IOU value.
        amount: i128,
        /// Intermediate-hop cast indices.
        path: Vec<u8>,
    },
    /// Trust-line declaration.
    TrustSet {
        /// Trusted cast index.
        trustee: u8,
        /// Currency index.
        currency: u8,
        /// Raw trust limit.
        limit: i128,
    },
    /// Currency-exchange offer.
    OfferCreate {
        /// What the owner gives.
        gets: CaseAmount,
        /// What the owner wants.
        pays: CaseAmount,
    },
    /// Offer withdrawal by sequence number.
    OfferCancel {
        /// Sequence of the offer being cancelled.
        offer_seq: u32,
    },
    /// Flag adjustment (fee-only).
    AccountSet {
        /// Raw flags word.
        flags: u32,
    },
}

/// A full ledger differential case: funded accounts plus an op sequence.
///
/// `genesis[i]` funds cast account `i` with that many drops; one extra
/// ghost index (`genesis.len()`) exists in the cast but is never created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerCasePlan {
    /// Genesis XRP balances in drops, one per funded account.
    pub genesis: Vec<u64>,
    /// Operations applied in order.
    pub ops: Vec<Op>,
}

/// A payment-engine differential case: a trust graph with optional
/// pre-existing debt, then one engine payment checked against the
/// brute-force max-flow oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePlan {
    /// Genesis XRP balances in drops.
    pub genesis: Vec<u64>,
    /// Setup trust lines: `(truster, trustee, currency, raw limit)`.
    pub trust: Vec<(u8, u8, u8, i128)>,
    /// Setup debts established via `ripple_hop`:
    /// `(from, to, currency, raw amount)` — infeasible hops are skipped.
    pub hops: Vec<(u8, u8, u8, i128)>,
    /// Paying cast index.
    pub sender: u8,
    /// Receiving cast index.
    pub destination: u8,
    /// Currency index (never XRP).
    pub currency: u8,
    /// Raw amount requested.
    pub amount: i128,
}

/// One router query, optionally preceded by a trust-line mutation so the
/// differ exercises cache invalidation, not just cold routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterQuery {
    /// Paying cast index.
    pub sender: u8,
    /// Receiving cast index.
    pub destination: u8,
    /// Raw amount requested.
    pub amount: i128,
    /// Mutation applied *before* the query: `truster` cast index.
    pub mutate_truster: u8,
    /// Mutation applied *before* the query: `trustee` cast index.
    pub mutate_trustee: u8,
    /// Raw trust limit for the mutation; negative = no mutation.
    pub mutate_limit: i128,
}

/// A router differential case: a trust graph with pre-existing debt, then
/// a stream of route queries interleaved with trust mutations. Each query
/// is answered by a persistent (cache-on) [`ripple_paths::Router`] and
/// checked against a cold search, the max-flow oracle, and a
/// [`ripple_paths::PaymentEngine`] replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterPlan {
    /// Genesis XRP balances in drops.
    pub genesis: Vec<u64>,
    /// Setup trust lines: `(truster, trustee, currency, raw limit)`.
    pub trust: Vec<(u8, u8, u8, i128)>,
    /// Setup debts established via `ripple_hop` — infeasible hops skipped.
    pub hops: Vec<(u8, u8, u8, i128)>,
    /// Queries executed in order against one persistent router.
    pub queries: Vec<RouterQuery>,
    /// Currency index (never XRP).
    pub currency: u8,
}

/// One generated resting offer for the order-book differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookOffer {
    /// Owner cast index.
    pub owner: u8,
    /// Offer identity.
    pub offer_seq: u32,
    /// Raw base value the owner gives.
    pub gets_raw: i128,
    /// Raw quote value the owner wants.
    pub pays_raw: i128,
}

/// An order-book differential case: resting offers plus one fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookPlan {
    /// Offers inserted in order.
    pub offers: Vec<BookOffer>,
    /// Raw base amount the taker buys.
    pub fill_raw: i128,
}

/// A mostly-benign, occasionally hostile raw [`Value`] (zero and negative
/// amounts must be rejected, so they are worth generating).
fn gen_raw_value(rng: &mut StdRng) -> i128 {
    match rng.gen_range(0u8..10) {
        0 => 0,
        1 => -(rng.gen_range(1i128..1_000_000_000)),
        _ => rng.gen_range(1i128..50_000_000),
    }
}

/// A fee that is usually valid, sometimes below the base fee or enormous.
fn gen_fee(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0u8..10) {
        0 => rng.gen_range(0u64..10),
        1 => Drops::from_xrp(rng.gen_range(50u64..100_000)).as_drops(),
        _ => rng.gen_range(10u64..25),
    }
}

/// Generates a ledger differential case: 4–6 funded accounts with mixed
/// balances and `n_ops` weighted operations, roughly a third of which are
/// hostile (bad fees, skewed sequences, ghost destinations, XRP-on-trust,
/// non-positive amounts).
pub fn gen_ledger_plan(seed: u64, n_ops: usize) -> LedgerCasePlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1ed6e2);
    let n = rng.gen_range(4usize..=6);
    let genesis: Vec<u64> = (0..n)
        .map(|_| {
            if rng.gen_range(0u8..4) == 0 {
                // Near the base reserve: fee windows and reserve checks bite.
                Drops::from_xrp(rng.gen_range(20u64..40)).as_drops()
            } else {
                Drops::from_xrp(rng.gen_range(100u64..10_000)).as_drops()
            }
        })
        .collect();
    let ops = (0..n_ops)
        .map(|_| gen_op(&mut rng, n as u8, n_ops))
        .collect();
    LedgerCasePlan { genesis, ops }
}

fn gen_op(rng: &mut StdRng, funded: u8, n_ops: usize) -> Op {
    // `funded` itself indexes the ghost account with small probability.
    let pick = |rng: &mut StdRng| -> u8 {
        if rng.gen_range(0u8..12) == 0 {
            funded
        } else {
            rng.gen_range(0..funded)
        }
    };
    let actor = rng.gen_range(0..funded);
    let fee = gen_fee(rng);
    let seq_skew = if rng.gen_range(0u8..10) == 0 {
        rng.gen_range(1u32..3)
    } else {
        0
    };
    let kind = match rng.gen_range(0u8..12) {
        0..=2 => OpKind::XrpPay {
            to: pick(rng),
            drops: match rng.gen_range(0u8..8) {
                0 => 0,
                1 => Drops::from_xrp(rng.gen_range(5_000u64..1_000_000)).as_drops(),
                _ => Drops::from_xrp(rng.gen_range(1u64..50)).as_drops(),
            },
        },
        3..=5 => {
            let to = pick(rng);
            // A short path of *distinct* intermediates: distinct chain
            // accounts keep the ordered hop pairs independent, so the
            // post-payment trust-limit invariant check stays sound under
            // the ledger's validate-all-then-apply-all semantics.
            let mut path = Vec::new();
            for _ in 0..rng.gen_range(0usize..3) {
                path.push(pick(rng));
            }
            let mut chain = vec![actor];
            chain.extend_from_slice(&path);
            chain.push(to);
            let mut sorted = chain.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != chain.len() {
                path.clear();
            }
            OpKind::IouPay {
                to,
                currency: rng.gen_range(0u8..5) & 3,
                amount: gen_raw_value(rng),
                path,
            }
        }
        6..=7 => OpKind::TrustSet {
            trustee: pick(rng),
            currency: rng.gen_range(0u8..5) & 3,
            limit: match rng.gen_range(0u8..8) {
                0 => 0,
                1 => -(rng.gen_range(1i128..1_000_000)),
                _ => rng.gen_range(1i128..100_000_000),
            },
        },
        8..=9 => OpKind::OfferCreate {
            gets: CaseAmount {
                currency: rng.gen_range(0u8..5) & 3,
                raw: gen_raw_value(rng),
                issuer: rng.gen_range(0..funded),
            },
            pays: CaseAmount {
                currency: rng.gen_range(0u8..5) & 3,
                raw: gen_raw_value(rng),
                issuer: rng.gen_range(0..funded),
            },
        },
        10 => OpKind::OfferCancel {
            offer_seq: rng.gen_range(1u32..=(n_ops.max(2) as u32)),
        },
        _ => OpKind::AccountSet { flags: rng.gen() },
    };
    Op {
        actor,
        fee,
        seq_skew,
        kind,
    }
}

/// Materializes an [`Op`] into a signed [`Transaction`] against the live
/// sequence number `live_seq` of the actor's account.
///
/// [`Transaction`]: ripple_ledger::Transaction
pub fn op_to_tx(
    op: &Op,
    cast_len: u8,
    live_seq: u32,
    keys: &SimKeypair,
) -> ripple_ledger::Transaction {
    let account = cast_account(op.actor % cast_len);
    let kind = match &op.kind {
        OpKind::XrpPay { to, drops } => TxKind::Payment {
            destination: cast_account(to % cast_len),
            amount: Amount::Xrp(Drops::new(*drops)),
            send_max: None,
            paths: Vec::new(),
        },
        OpKind::IouPay {
            to,
            currency,
            amount,
            path,
        } => TxKind::Payment {
            destination: cast_account(to % cast_len),
            amount: Amount::Iou(IouAmount::new(
                Value::from_raw(*amount),
                case_currency(*currency),
                cast_account(op.actor % cast_len),
            )),
            send_max: None,
            paths: if path.is_empty() {
                Vec::new()
            } else {
                vec![path.iter().map(|&h| cast_account(h % cast_len)).collect()]
            },
        },
        OpKind::TrustSet {
            trustee,
            currency,
            limit,
        } => TxKind::TrustSet {
            trustee: cast_account(trustee % cast_len),
            currency: case_currency(*currency),
            limit: Value::from_raw(*limit),
        },
        OpKind::OfferCreate { gets, pays } => TxKind::OfferCreate {
            taker_gets: gets.to_amount(cast_len),
            taker_pays: pays.to_amount(cast_len),
        },
        OpKind::OfferCancel { offer_seq } => TxKind::OfferCancel {
            offer_seq: *offer_seq,
        },
        OpKind::AccountSet { flags } => TxKind::AccountSet { flags: *flags },
    };
    ripple_ledger::Transaction::build(
        account,
        live_seq.wrapping_add(op.seq_skew),
        Drops::new(op.fee),
        kind,
    )
    .signed(keys)
}

/// Generates a payment-engine case: a random trust graph over 4–6 funded
/// accounts, some pre-existing debt, and one positive IOU payment request.
pub fn gen_engine_plan(seed: u64) -> EnginePlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe4619e);
    let n = rng.gen_range(4usize..=6) as u8;
    let genesis: Vec<u64> = (0..n)
        .map(|_| Drops::from_xrp(rng.gen_range(100u64..5_000)).as_drops())
        .collect();
    let currency = rng.gen_range(0u8..3);
    let mut trust = Vec::new();
    for _ in 0..rng.gen_range(4usize..=12) {
        let truster = rng.gen_range(0..n);
        let trustee = rng.gen_range(0..n);
        if truster == trustee {
            continue;
        }
        trust.push((truster, trustee, currency, rng.gen_range(1i128..40_000_000)));
    }
    let mut hops = Vec::new();
    for _ in 0..rng.gen_range(0usize..=6) {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if from == to {
            continue;
        }
        hops.push((from, to, currency, rng.gen_range(1i128..20_000_000)));
    }
    let sender = rng.gen_range(0..n);
    let destination = (sender + rng.gen_range(1..n)) % n;
    EnginePlan {
        genesis,
        trust,
        hops,
        sender,
        destination,
        currency,
        amount: rng.gen_range(1i128..30_000_000),
    }
}

/// Generates a router case: a random trust graph over 4–7 funded accounts
/// with pre-existing debt, then 3–10 route queries against one persistent
/// router, roughly a third of them preceded by a trust-line mutation (so
/// stale cache entries would be caught, not coincidentally correct).
pub fn gen_router_plan(seed: u64) -> RouterPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x707e5);
    let n = rng.gen_range(4usize..=7) as u8;
    let genesis: Vec<u64> = (0..n)
        .map(|_| Drops::from_xrp(rng.gen_range(100u64..5_000)).as_drops())
        .collect();
    let currency = rng.gen_range(0u8..3);
    let mut trust = Vec::new();
    for _ in 0..rng.gen_range(5usize..=14) {
        let truster = rng.gen_range(0..n);
        let trustee = rng.gen_range(0..n);
        if truster == trustee {
            continue;
        }
        trust.push((truster, trustee, currency, rng.gen_range(1i128..40_000_000)));
    }
    let mut hops = Vec::new();
    for _ in 0..rng.gen_range(0usize..=6) {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        if from == to {
            continue;
        }
        hops.push((from, to, currency, rng.gen_range(1i128..20_000_000)));
    }
    let queries = (0..rng.gen_range(3usize..=10))
        .map(|_| {
            let sender = rng.gen_range(0..n);
            let destination = (sender + rng.gen_range(1..n)) % n;
            let mutate = rng.gen_range(0u8..3) == 0;
            RouterQuery {
                sender,
                destination,
                amount: rng.gen_range(1i128..30_000_000),
                mutate_truster: rng.gen_range(0..n),
                mutate_trustee: rng.gen_range(0..n),
                mutate_limit: if mutate {
                    rng.gen_range(0i128..40_000_000)
                } else {
                    -1
                },
            }
        })
        .collect();
    RouterPlan {
        genesis,
        trust,
        hops,
        queries,
        currency,
    }
}

/// Generates an order-book case: 3–10 offers (some unratable) plus a fill.
pub fn gen_book_plan(seed: u64) -> BookPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb00c);
    let offers = (0..rng.gen_range(3usize..=10))
        .map(|i| BookOffer {
            owner: rng.gen_range(0u8..5),
            offer_seq: i as u32 + 1,
            gets_raw: match rng.gen_range(0u8..10) {
                0 => 0,
                1 => -(rng.gen_range(1i128..1_000_000)),
                _ => rng.gen_range(1i128..1_000_000_000_000),
            },
            pays_raw: match rng.gen_range(0u8..10) {
                0 => 0,
                _ => rng.gen_range(1i128..1_000_000_000_000),
            },
        })
        .collect();
    BookPlan {
        offers,
        fill_raw: match rng.gen_range(0u8..10) {
            0 => 0,
            1 => -(rng.gen_range(1i128..1_000_000)),
            _ => rng.gen_range(1i128..2_000_000_000_000),
        },
    }
}
