//! Differential testing, invariant oracles, and replayable counterexamples
//! for the Ripple reproduction workspace.
//!
//! The crate checks the production engines against independent,
//! obviously-correct reference implementations:
//!
//! - [`model::ModelLedger`] — a naive map-based ledger replayed step by
//!   step against `LedgerState::apply` ([`diff::run_ledger_plan`]);
//! - [`oracle::max_deliverable`] — a brute-force max-flow oracle for the
//!   payment engine ([`diff::run_engine_plan`]);
//! - [`oracle::NaiveBook`] — a linear-scan order-book matcher
//!   ([`diff::run_book_plan`]);
//! - [`explore`] — seed-randomized consensus fault schedules checked
//!   against the chaos campaign's no-fork invariant;
//! - [`storefuzz`] — corruption corpora through the archive reader's
//!   resync path;
//! - [`parexec`] — the sharded parallel executor differentially tested
//!   against the serial path for byte-identical histories;
//! - [`diff::run_router_plan`] — the cached capacity-aware router
//!   (`ripple_paths::Router`) against a cold cache-off search, the
//!   max-flow oracle, and a full `PaymentEngine::pay` replay, across
//!   query streams interleaved with trust mutations.
//!
//! Any disagreement is shrunk with [`shrink::ddmin`] and packaged as a
//! [`CheckCase`] that serializes to `CHECK_CASE.json` and replays
//! byte-deterministically ([`case::replay_document`]). The budgeted
//! round-robin driver is [`run::run_check`]; [`testkit`] carries the
//! shared scaffolding the workspace's integration tests build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod diff;
pub mod explore;
pub mod gen;
pub mod model;
pub mod oracle;
pub mod parexec;
pub mod run;
pub mod shrink;
pub mod storefuzz;
pub mod testkit;

pub use case::{replay_document, CasePayload, CheckCase, ReplayOutcome};
pub use run::{run_check, CheckConfig, CheckReport};
pub use shrink::ddmin;
