//! Consensus schedule exploration: seed-randomized fault schedules and
//! delivery-order perturbations, checked against the chaos campaign's
//! no-fork invariant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple_consensus::chaos::CampaignError;
use ripple_consensus::{ChaosCampaign, Validator, ValidatorProfile};
use ripple_netsim::{FaultEvent, FaultPlan, NodeId, SimTime};

/// A replayable consensus exploration case: validator count, round count,
/// the campaign seed, and the exact fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusPlan {
    /// Number of (fully honest) validators.
    pub validators: usize,
    /// Consensus rounds to run.
    pub rounds: u64,
    /// Seed for the campaign's network randomness.
    pub campaign_seed: u64,
    /// The fault schedule, event by event.
    pub events: Vec<FaultEvent>,
}

fn honest(n: usize) -> Vec<Validator> {
    (0..n)
        .map(|i| {
            Validator::new(
                i,
                format!("v{i}"),
                ValidatorProfile::Reliable { availability: 1.0 },
            )
        })
        .collect()
}

/// Generates one exploration case: 4–7 validators, 6–10 rounds, a
/// seed-randomized fault plan, and (with coin-flip probability) an extra
/// delay spike and per-node clock skew to permute message delivery order.
pub fn gen_consensus_plan(seed: u64) -> ConsensusPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0455e45);
    let validators = rng.gen_range(4usize..=7);
    let rounds = rng.gen_range(6u64..=10);
    let horizon = SimTime::from_millis(rounds * 500);
    let mut plan = FaultPlan::randomized(rng.gen(), validators, horizon);
    if rng.gen_bool(0.5) {
        let from = rng.gen_range(0..horizon.as_millis() / 2);
        let until = from + rng.gen_range(100..=horizon.as_millis() / 2);
        plan = plan.delay_spike(
            SimTime::from_millis(from),
            SimTime::from_millis(until),
            SimTime::from_millis(rng.gen_range(10u64..250)),
        );
    }
    if rng.gen_bool(0.5) {
        plan = plan.clock_skew(
            NodeId(rng.gen_range(0..validators)),
            SimTime::from_millis(rng.gen_range(1u64..200)),
        );
    }
    ConsensusPlan {
        validators,
        rounds,
        campaign_seed: rng.gen(),
        events: plan.events().to_vec(),
    }
}

/// Runs one exploration case; returns a divergence description when the
/// campaign violates the no-fork invariant (`None` = the invariant held).
pub fn run_consensus_plan(plan: &ConsensusPlan) -> Option<String> {
    let faults = FaultPlan::from_events(plan.events.clone());
    let campaign = ChaosCampaign::new(
        honest(plan.validators),
        faults,
        plan.rounds,
        plan.campaign_seed,
    )
    .with_iteration_timeout(SimTime::from_millis(100));
    match campaign.run() {
        Ok(_) => None,
        Err(CampaignError::Fork(violation)) => Some(format!(
            "no-fork invariant violated with {} validators over {} rounds: {violation:?}",
            plan.validators, plan.rounds
        )),
        Err(other) => Some(format!(
            "consensus campaign failed with {} validators over {} rounds: {other:?}",
            plan.validators, plan.rounds
        )),
    }
}
