//! Figure 5: survival functions of payment amounts.
//!
//! "The survival function for a given currency is defined as the percentage
//! of payments in that currency exchanging an amount larger than a certain
//! value."

use ripple_ledger::{Currency, PaymentRecord, Value};

/// An empirical survival function built from a set of amounts.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalCurve {
    /// Sorted amounts (ascending).
    amounts: Vec<Value>,
}

impl SurvivalCurve {
    /// Builds the curve for one currency's payments (or all payments when
    /// `currency` is `None` — the paper's "Global" series).
    pub fn build<'a>(
        payments: impl Iterator<Item = &'a PaymentRecord>,
        currency: Option<Currency>,
    ) -> SurvivalCurve {
        let mut amounts: Vec<Value> = payments
            .filter(|p| currency.is_none_or(|c| p.currency == c))
            .map(|p| p.amount)
            .collect();
        amounts.sort_unstable();
        SurvivalCurve { amounts }
    }

    /// Builds the curve directly from pre-extracted amounts (used by the
    /// pipelined generator's streaming tallies, which already grouped
    /// amounts by currency).
    pub fn from_amounts(mut amounts: Vec<Value>) -> SurvivalCurve {
        amounts.sort_unstable();
        SurvivalCurve { amounts }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.amounts.len()
    }

    /// Whether the curve is empty.
    pub fn is_empty(&self) -> bool {
        self.amounts.is_empty()
    }

    /// `P(X > threshold)`: the fraction of payments strictly above the
    /// threshold.
    pub fn survival(&self, threshold: Value) -> f64 {
        if self.amounts.is_empty() {
            return 0.0;
        }
        let above = self.amounts.len() - self.amounts.partition_point(|&a| a <= threshold);
        above as f64 / self.amounts.len() as f64
    }

    /// The curve evaluated on a log-spaced grid from 10⁻⁴ to 10¹², matching
    /// the paper's x-axis. Returns `(threshold, probability)` pairs.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (-4..=12)
            .map(|exp| {
                let threshold = 10f64.powi(exp);
                (threshold, self.survival(Value::from_f64(threshold)))
            })
            .collect()
    }

    /// The empirical median, if any samples exist.
    pub fn median(&self) -> Option<Value> {
        if self.amounts.is_empty() {
            None
        } else {
            Some(self.amounts[self.amounts.len() / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::{sha512_half, AccountId};
    use ripple_ledger::{PathSummary, RippleTime};

    fn rec(amount: &str, currency: Currency) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(amount.as_bytes()),
            sender: AccountId::from_bytes([1; 20]),
            destination: AccountId::from_bytes([2; 20]),
            currency,
            issuer: None,
            amount: amount.parse().unwrap(),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let records: Vec<PaymentRecord> = (1..=100)
            .map(|i| rec(&i.to_string(), Currency::USD))
            .collect();
        let curve = SurvivalCurve::build(records.iter(), Some(Currency::USD));
        let mut prev = 1.1;
        for (_, p) in curve.series() {
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn survival_at_median_is_half() {
        let records: Vec<PaymentRecord> = (1..=100)
            .map(|i| rec(&i.to_string(), Currency::USD))
            .collect();
        let curve = SurvivalCurve::build(records.iter(), Some(Currency::USD));
        let p = curve.survival("50".parse().unwrap());
        assert!((p - 0.5).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn currency_filter_applies() {
        let records = [rec("1", Currency::USD), rec("1000", Currency::BTC)];
        let usd = SurvivalCurve::build(records.iter(), Some(Currency::USD));
        assert_eq!(usd.len(), 1);
        let global = SurvivalCurve::build(records.iter(), None);
        assert_eq!(global.len(), 2);
        assert_eq!(global.survival("10".parse().unwrap()), 0.5);
    }

    #[test]
    fn empty_curve_is_zero() {
        let curve = SurvivalCurve::build(std::iter::empty(), None);
        assert!(curve.is_empty());
        assert_eq!(curve.survival(Value::ZERO), 0.0);
        assert!(curve.median().is_none());
    }

    #[test]
    fn strictly_above_semantics() {
        let records = [rec("5", Currency::USD), rec("5", Currency::USD)];
        let curve = SurvivalCurve::build(records.iter(), None);
        assert_eq!(curve.survival("5".parse().unwrap()), 0.0);
        assert_eq!(curve.survival("4".parse().unwrap()), 1.0);
    }
}
