//! Figure 7: the most influential users — hop frequency, trust, balances.

use std::collections::HashMap;

use ripple_crypto::AccountId;
use ripple_ledger::{LedgerState, PaymentRecord, Value};
use ripple_orderbook::RateTable;

/// One row of the Figure 7 panels.
#[derive(Debug, Clone, PartialEq)]
pub struct HubRow {
    /// The account.
    pub account: AccountId,
    /// Display label (gateway name, or the abbreviated account id).
    pub label: String,
    /// Whether the account is a publicly announced gateway (the green
    /// highlight in Fig. 7a).
    pub is_gateway: bool,
    /// Times the account appeared as an intermediate hop (Fig. 7a).
    pub hop_count: u64,
    /// Trust received from others (sum of incoming limits, Fig. 7b
    /// positive bars), in raw currency units summed across currencies.
    pub trust_received: Value,
    /// Trust given to others (Fig. 7b negative bars).
    pub trust_given: Value,
    /// Net balance aggregated into the reference currency (Fig. 7c):
    /// negative for debt (gateways), positive for credit (users).
    pub balance_eur: Value,
}

/// The Figure 7 report: the top-N intermediaries with their trust and
/// balance profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HubReport {
    /// Rows, most frequent intermediary first.
    pub rows: Vec<HubRow>,
    /// Total multi-hop payments analysed.
    pub multi_hop_payments: u64,
    /// Fraction of multi-hop payments touched by the listed rows.
    pub coverage: f64,
}

/// Builds the Figure 7 report.
///
/// `gateway_names` maps announced-gateway accounts to their public names;
/// everything else is labelled with its abbreviated address, as in the
/// paper's figures.
pub fn hub_report<'a>(
    payments: impl Iterator<Item = &'a PaymentRecord>,
    state: &LedgerState,
    gateway_names: &HashMap<AccountId, String>,
    rates: &RateTable,
    top: usize,
) -> HubReport {
    let mut hop_counts: HashMap<AccountId, u64> = HashMap::new();
    let mut multi_hop_payments = 0u64;
    let mut touched: HashMap<AccountId, u64> = HashMap::new();
    for p in payments {
        if !p.paths.is_multi_hop() {
            continue;
        }
        multi_hop_payments += 1;
        let mut seen_this_payment: Vec<AccountId> = Vec::new();
        for hop in p.paths.intermediaries() {
            *hop_counts.entry(*hop).or_insert(0) += 1;
            if !seen_this_payment.contains(hop) {
                seen_this_payment.push(*hop);
            }
        }
        for hop in seen_this_payment {
            *touched.entry(hop).or_insert(0) += 1;
        }
    }

    let mut ranked: Vec<(AccountId, u64)> = hop_counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top);

    // Trust aggregation over the final ledger state.
    let mut trust_received: HashMap<AccountId, Value> = HashMap::new();
    let mut trust_given: HashMap<AccountId, Value> = HashMap::new();
    for line in state.trust_lines() {
        let recv = trust_received.entry(line.trustee).or_insert(Value::ZERO);
        *recv = *recv + line.limit;
        let given = trust_given.entry(line.truster).or_insert(Value::ZERO);
        *given = *given + line.limit;
    }

    let rows: Vec<HubRow> = ranked
        .iter()
        .map(|&(account, hop_count)| {
            let is_gateway = gateway_names.contains_key(&account);
            let label = gateway_names
                .get(&account)
                .cloned()
                .unwrap_or_else(|| account.short());
            HubRow {
                account,
                label,
                is_gateway,
                hop_count,
                trust_received: trust_received.get(&account).copied().unwrap_or(Value::ZERO),
                trust_given: trust_given.get(&account).copied().unwrap_or(Value::ZERO),
                balance_eur: balance_in_reference(state, account, rates),
            }
        })
        .collect();

    // Coverage: payments touched by at least one of the top rows.
    // (Approximation from per-account touch counts using
    // inclusion-exclusion would need per-payment sets; we bound it by the
    // max single-account touch count and the sum, capped at 1.)
    let covered: u64 = rows
        .iter()
        .map(|r| touched.get(&r.account).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let coverage = if multi_hop_payments == 0 {
        0.0
    } else {
        (covered as f64 / multi_hop_payments as f64).min(1.0)
    };

    HubReport {
        rows,
        multi_hop_payments,
        coverage,
    }
}

/// Net position of `account` across all currencies, converted into the
/// rate table's reference currency (EUR in the paper's Fig. 7c).
pub fn balance_in_reference(state: &LedgerState, account: AccountId, rates: &RateTable) -> Value {
    let mut total = Value::ZERO;
    let mut currencies: Vec<ripple_ledger::Currency> = Vec::new();
    for line in state.trust_lines() {
        if (line.truster == account || line.trustee == account)
            && !currencies.contains(&line.currency)
        {
            currencies.push(line.currency);
        }
    }
    for currency in currencies {
        let position = state.net_position(account, currency);
        if !position.is_zero() {
            total = total + rates.to_reference(currency, position);
        }
    }
    total
}

/// Renders the report as text (the three Figure 7 panels side by side).
pub fn hub_table(report: &HubReport) -> String {
    let mut out = format!(
        "{:<24} {:>3} {:>10} {:>16} {:>16} {:>16}\n",
        "user", "gw", "hops", "trust-recv", "trust-given", "balance(EUR)"
    );
    for row in &report.rows {
        out.push_str(&format!(
            "{:<24} {:>3} {:>10} {:>16} {:>16} {:>16}\n",
            row.label,
            if row.is_gateway { "*" } else { "" },
            row.hop_count,
            row.trust_received.to_string(),
            row.trust_given.to_string(),
            row.balance_eur.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{Currency, Drops, PathSummary, RippleTime};

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn rec(hops: Vec<AccountId>) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[hops.len() as u8]),
            sender: acct(1),
            destination: acct(2),
            currency: Currency::USD,
            issuer: None,
            amount: "1".parse().unwrap(),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::from_paths(vec![hops]),
            cross_currency: false,
            source_currency: None,
        }
    }

    fn simple_state() -> LedgerState {
        let mut s = LedgerState::new();
        for i in 1..=5 {
            s.create_account(acct(i), Drops::from_xrp(100));
        }
        // 1 and 2 trust gateway 3.
        s.set_trust(acct(1), acct(3), Currency::USD, "100".parse().unwrap())
            .unwrap();
        s.set_trust(acct(2), acct(3), Currency::USD, "200".parse().unwrap())
            .unwrap();
        // Gateway 3 owes 1 fifty USD (a deposit).
        s.ripple_hop(acct(3), acct(1), Currency::USD, "50".parse().unwrap())
            .unwrap();
        s
    }

    #[test]
    fn ranks_intermediaries_by_frequency() {
        let records = [rec(vec![acct(3)]), rec(vec![acct(3)]), rec(vec![acct(4)])];
        let state = simple_state();
        let report = hub_report(
            records.iter(),
            &state,
            &HashMap::new(),
            &RateTable::eur_2015(),
            10,
        );
        assert_eq!(report.rows[0].account, acct(3));
        assert_eq!(report.rows[0].hop_count, 2);
        assert_eq!(report.multi_hop_payments, 3);
    }

    #[test]
    fn gateway_labels_apply() {
        let records = [rec(vec![acct(3)])];
        let state = simple_state();
        let mut names = HashMap::new();
        names.insert(acct(3), "SnapSwap".to_string());
        let report = hub_report(records.iter(), &state, &names, &RateTable::eur_2015(), 10);
        assert!(report.rows[0].is_gateway);
        assert_eq!(report.rows[0].label, "SnapSwap");
    }

    #[test]
    fn trust_aggregates_in_and_out() {
        let records = [rec(vec![acct(3)])];
        let state = simple_state();
        let report = hub_report(
            records.iter(),
            &state,
            &HashMap::new(),
            &RateTable::eur_2015(),
            10,
        );
        let row = &report.rows[0];
        // Gateway 3 receives 100 + 200 trust and gives none.
        assert_eq!(row.trust_received, "300".parse().unwrap());
        assert_eq!(row.trust_given, Value::ZERO);
    }

    #[test]
    fn gateway_balance_is_negative_user_positive() {
        let state = simple_state();
        let rates = RateTable::eur_2015();
        let gw = balance_in_reference(&state, acct(3), &rates);
        assert!(gw.is_negative(), "gateway owes deposits: {gw}");
        let user = balance_in_reference(&state, acct(1), &rates);
        assert!(user.is_positive(), "user holds claims: {user}");
        // 50 USD at 0.9 = 45 EUR.
        assert_eq!(user, "45".parse().unwrap());
    }

    #[test]
    fn top_truncates() {
        let records = [rec(vec![acct(3)]), rec(vec![acct(4)]), rec(vec![acct(5)])];
        let state = simple_state();
        let report = hub_report(
            records.iter(),
            &state,
            &HashMap::new(),
            &RateTable::eur_2015(),
            2,
        );
        assert_eq!(report.rows.len(), 2);
    }

    #[test]
    fn table_renders_flags() {
        let records = [rec(vec![acct(3)])];
        let state = simple_state();
        let mut names = HashMap::new();
        names.insert(acct(3), "Bitstamp".to_string());
        let report = hub_report(records.iter(), &state, &names, &RateTable::eur_2015(), 10);
        let table = hub_table(&report);
        assert!(table.contains("Bitstamp"));
        assert!(table.contains('*'));
    }
}
