//! Table II: replaying a payment window with Market Makers removed.
//!
//! The experiment, per the paper: take a stable snapshot of the network,
//! extract the payments submitted (and originally delivered) after it,
//! remove the Market Makers and all exchange offers, and replay the
//! payments on the modified trust network with live balance updates.

use ripple_crypto::AccountId;
use ripple_ledger::{LedgerState, PaymentRecord};
use ripple_paths::{replay, PaymentEngine, PaymentRequest, ReplayStats};
use serde::{Deserialize, Serialize};

/// Outcome of the Market-Maker removal replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmRemovalReport {
    /// Offers stripped from the snapshot.
    pub offers_stripped: usize,
    /// Market-Maker accounts severed.
    pub makers_severed: usize,
    /// The replay statistics (Table II's cells).
    pub stats: ReplayStats,
}

/// Converts a recorded payment back into a replayable request.
pub fn request_from_record(record: &PaymentRecord) -> PaymentRequest {
    PaymentRequest {
        sender: record.sender,
        destination: record.destination,
        currency: record.currency,
        amount: record.amount,
        source_currency: record.source_currency,
        send_max: None,
    }
}

/// Runs the Table II experiment: severs `market_makers` from a clone of
/// `snapshot`, strips every resting offer, and replays `window` on the
/// modified trust network.
pub fn mm_removal_replay<'a>(
    snapshot: &LedgerState,
    market_makers: &[AccountId],
    window: impl Iterator<Item = &'a PaymentRecord>,
) -> MmRemovalReport {
    let mut state = snapshot.clone();
    let offers_stripped = state.strip_all_offers();
    for &mm in market_makers {
        state.sever_account(mm);
    }
    let requests: Vec<PaymentRequest> = window.map(request_from_record).collect();
    let stats = replay(&mut state, &PaymentEngine::new(), &requests);
    MmRemovalReport {
        offers_stripped,
        makers_severed: market_makers.len(),
        stats,
    }
}

/// Replays the same window on the *unmodified* snapshot — the control run
/// showing the network delivered these payments before the removal.
pub fn control_replay<'a>(
    snapshot: &LedgerState,
    window: impl Iterator<Item = &'a PaymentRecord>,
) -> ReplayStats {
    let mut state = snapshot.clone();
    let requests: Vec<PaymentRequest> = window.map(request_from_record).collect();
    replay(&mut state, &PaymentEngine::new(), &requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{Currency, Drops, IouAmount, PathSummary, RippleTime, Value};

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn v(s: &str) -> Value {
        s.parse().unwrap()
    }

    /// Sender 1, dest 4. Community gateway 2 reaches dest directly; MM 3
    /// bridges USD->EUR and also glues a second USD route.
    fn snapshot() -> LedgerState {
        let mut s = LedgerState::new();
        for i in 1..=4 {
            s.create_account(acct(i), Drops::from_xrp(1_000));
        }
        // Deposits: gateway 2 owes sender 1.
        s.set_trust(acct(1), acct(2), Currency::USD, v("1000"))
            .unwrap();
        s.ripple_hop(acct(2), acct(1), Currency::USD, v("500"))
            .unwrap();
        // Dest trusts the gateway (same community).
        s.set_trust(acct(4), acct(2), Currency::USD, v("1000"))
            .unwrap();
        // Dest accepts MM's EUR.
        s.set_trust(acct(4), acct(3), Currency::EUR, v("1000"))
            .unwrap();
        // MM trusts the gateway (can receive the sender's USD).
        s.set_trust(acct(3), acct(2), Currency::USD, v("1000"))
            .unwrap();
        // MM sells EUR for USD.
        s.place_offer(
            acct(3),
            1,
            IouAmount::new(v("300"), Currency::EUR, acct(3)).into(),
            IouAmount::new(v("330"), Currency::USD, acct(3)).into(),
        )
        .unwrap();
        s
    }

    fn payment(currency: Currency, amount: &str, source: Option<Currency>) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(amount.as_bytes()),
            sender: acct(1),
            destination: acct(4),
            currency,
            issuer: None,
            amount: v(amount),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::from_paths(vec![vec![acct(2)]]),
            cross_currency: source.is_some(),
            source_currency: source,
        }
    }

    #[test]
    fn control_replay_delivers() {
        let window = [
            payment(Currency::USD, "10", None),
            payment(Currency::EUR, "5", Some(Currency::USD)),
        ];
        let stats = control_replay(&snapshot(), window.iter());
        assert_eq!(stats.total_delivered(), 2);
    }

    #[test]
    fn removal_kills_cross_currency_entirely() {
        let window = [
            payment(Currency::EUR, "5", Some(Currency::USD)),
            payment(Currency::EUR, "7", Some(Currency::USD)),
        ];
        let report = mm_removal_replay(&snapshot(), &[acct(3)], window.iter());
        assert_eq!(report.stats.cross_submitted, 2);
        assert_eq!(report.stats.cross_delivered, 0);
        assert_eq!(report.offers_stripped, 1);
        assert_eq!(report.makers_severed, 1);
    }

    #[test]
    fn same_community_single_currency_survives() {
        let window = [payment(Currency::USD, "10", None)];
        let report = mm_removal_replay(&snapshot(), &[acct(3)], window.iter());
        assert_eq!(report.stats.single_delivered, 1);
    }

    #[test]
    fn mm_routed_single_currency_dies() {
        // A second destination only reachable through the MM.
        let mut s = snapshot();
        s.create_account(acct(5), Drops::from_xrp(1_000));
        s.set_trust(acct(5), acct(3), Currency::USD, v("1000"))
            .unwrap();
        let record = PaymentRecord {
            destination: acct(5),
            ..payment(Currency::USD, "10", None)
        };
        // Control: deliverable via 1 -> 2 -> 3 -> 5.
        let control = control_replay(&s, [record.clone()].iter());
        assert_eq!(control.single_delivered, 1);
        // With the MM severed the route is gone.
        let report = mm_removal_replay(&s, &[acct(3)], [record].iter());
        assert_eq!(report.stats.single_delivered, 0);
    }

    #[test]
    fn report_shape_matches_table2() {
        let window = [
            payment(Currency::EUR, "5", Some(Currency::USD)),
            payment(Currency::USD, "10", None),
            payment(Currency::USD, "9999", None), // exceeds capacity: fails
        ];
        let report = mm_removal_replay(&snapshot(), &[acct(3)], window.iter());
        let table = report.stats.to_table();
        assert!(table.contains("Cross-currency"));
        assert!(table.contains("Single-currency"));
        assert!(table.contains("Total"));
        assert!(report.stats.total_rate() < 1.0);
    }
}
