//! Figure 6: payment-path structure.
//!
//! Both histograms consider only the payments that "require more than one
//! hop on the trust-lines to reach destination" (10M of the paper's 23M) —
//! direct XRP transfers are excluded.

use std::collections::BTreeMap;

use ripple_ledger::PaymentRecord;

/// Figure 6(a): number of payment *paths* per intermediate-hop count.
/// Every parallel path of every multi-hop payment contributes one sample.
pub fn path_hop_histogram<'a>(
    payments: impl Iterator<Item = &'a PaymentRecord>,
) -> BTreeMap<usize, u64> {
    let mut histogram = BTreeMap::new();
    for p in payments {
        if !p.paths.is_multi_hop() {
            continue;
        }
        for path in &p.paths.paths {
            if !path.is_empty() {
                *histogram.entry(path.len()).or_insert(0) += 1;
            }
        }
    }
    histogram
}

/// Figure 6(b): number of *payments* per parallel-path count.
pub fn parallel_path_histogram<'a>(
    payments: impl Iterator<Item = &'a PaymentRecord>,
) -> BTreeMap<usize, u64> {
    let mut histogram = BTreeMap::new();
    for p in payments {
        if !p.paths.is_multi_hop() {
            continue;
        }
        *histogram.entry(p.paths.parallel_paths()).or_insert(0) += 1;
    }
    histogram
}

/// Renders a histogram as an aligned text table.
pub fn histogram_table(histogram: &BTreeMap<usize, u64>, x_label: &str) -> String {
    let mut out = format!("{x_label:>6} {:>12}\n", "count");
    for (k, v) in histogram {
        out.push_str(&format!("{k:>6} {v:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::{sha512_half, AccountId};
    use ripple_ledger::{Currency, PathSummary, RippleTime};

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn rec(paths: Vec<Vec<AccountId>>) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[paths.len() as u8]),
            sender: acct(1),
            destination: acct(2),
            currency: Currency::USD,
            issuer: None,
            amount: "1".parse().unwrap(),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::from_paths(paths),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn direct_payments_are_excluded() {
        let records = [rec(vec![Vec::new()]), rec(vec![vec![acct(3)]])];
        let hops = path_hop_histogram(records.iter());
        assert_eq!(hops.get(&1), Some(&1));
        assert_eq!(hops.len(), 1);
        let parallel = parallel_path_histogram(records.iter());
        assert_eq!(parallel.get(&1), Some(&1));
    }

    #[test]
    fn every_parallel_path_counts_for_hops() {
        let records = [rec(vec![vec![acct(3)], vec![acct(3), acct(4), acct(5)]])];
        let hops = path_hop_histogram(records.iter());
        assert_eq!(hops.get(&1), Some(&1));
        assert_eq!(hops.get(&3), Some(&1));
    }

    #[test]
    fn parallel_counts_payments_not_paths() {
        let records = [
            rec(vec![vec![acct(3)], vec![acct(4)]]),
            rec(vec![vec![acct(3)], vec![acct(4)]]),
            rec(vec![vec![acct(3)]]),
        ];
        let parallel = parallel_path_histogram(records.iter());
        assert_eq!(parallel.get(&2), Some(&2));
        assert_eq!(parallel.get(&1), Some(&1));
    }

    #[test]
    fn mtl_shape_spikes_at_eight_hops_six_paths() {
        // Six parallel paths of exactly eight hops, the spam signature.
        let chain: Vec<AccountId> = (10..18).map(acct).collect();
        let records = [rec(vec![chain.clone(); 6])];
        let hops = path_hop_histogram(records.iter());
        assert_eq!(hops.get(&8), Some(&6));
        let parallel = parallel_path_histogram(records.iter());
        assert_eq!(parallel.get(&6), Some(&1));
    }

    #[test]
    fn table_renders() {
        let records = [rec(vec![vec![acct(3)]])];
        let table = histogram_table(&path_hop_histogram(records.iter()), "hops");
        assert!(table.contains("hops"));
        assert!(table.contains('1'));
    }
}
