//! Ledger mining: the paper's appendix analyses and the Table II
//! Market-Maker-removal experiment.
//!
//! Every function here consumes the plain data model (payment records,
//! history events, ledger state) — this crate does not know how the history
//! was produced, so it mines a synthetic archive exactly as the authors'
//! tooling mined the real 500 GB one.
//!
//! * [`currencies`] — Figure 4: ranked per-currency payment counts.
//! * [`survival`] — Figure 5: survival functions of payment amounts.
//! * [`paths`] — Figure 6: intermediate-hop and parallel-path histograms.
//! * [`hubs`] — Figure 7: the top-50 intermediaries, their trust and their
//!   EUR-aggregated balances.
//! * [`offers`] — the offer-concentration statistic (top-10 Market Makers
//!   place 50% of offers…).
//! * [`mm_removal`] — Table II: replay a payment window on a snapshot with
//!   all Market Makers severed and all offers stripped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod currencies;
pub mod hubs;
pub mod mm_removal;
pub mod offers;
pub mod paths;
pub mod survival;
pub mod timeline;

pub use currencies::currency_usage;
pub use hubs::{HubReport, HubRow};
pub use mm_removal::{mm_removal_replay, MmRemovalReport};
pub use offers::{offer_concentration, OfferConcentration};
pub use paths::{parallel_path_histogram, path_hop_histogram};
pub use survival::SurvivalCurve;
pub use timeline::{monthly_timeline, user_stats, MonthRow, UserStats};
