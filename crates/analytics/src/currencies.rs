//! Figure 4: the most-used currencies, ranked by payment count.

use std::collections::HashMap;

use ripple_ledger::{Currency, PaymentRecord};

/// Ranks currencies by number of payments, descending (ties broken by
/// code for determinism).
///
/// # Examples
///
/// ```
/// let usage = ripple_analytics::currency_usage(std::iter::empty());
/// assert!(usage.is_empty());
/// ```
pub fn currency_usage<'a>(
    payments: impl Iterator<Item = &'a PaymentRecord>,
) -> Vec<(Currency, u64)> {
    let mut counts: HashMap<Currency, u64> = HashMap::new();
    for p in payments {
        *counts.entry(p.currency).or_insert(0) += 1;
    }
    let mut out: Vec<(Currency, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Renders the ranking as an aligned table (the textual Figure 4).
pub fn usage_table(usage: &[(Currency, u64)]) -> String {
    let mut out = String::from("rank currency     payments\n");
    for (i, (currency, count)) in usage.iter().enumerate() {
        out.push_str(&format!("{:>4} {:<12} {:>9}\n", i + 1, currency, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::{sha512_half, AccountId};
    use ripple_ledger::{PathSummary, RippleTime};

    fn rec(currency: Currency) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(currency.as_bytes()),
            sender: AccountId::from_bytes([1; 20]),
            destination: AccountId::from_bytes([2; 20]),
            currency,
            issuer: None,
            amount: "1".parse().unwrap(),
            timestamp: RippleTime::EPOCH,
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn ranks_by_count_descending() {
        let mut records = Vec::new();
        for _ in 0..5 {
            records.push(rec(Currency::XRP));
        }
        for _ in 0..3 {
            records.push(rec(Currency::BTC));
        }
        records.push(rec(Currency::EUR));
        let usage = currency_usage(records.iter());
        assert_eq!(usage[0], (Currency::XRP, 5));
        assert_eq!(usage[1], (Currency::BTC, 3));
        assert_eq!(usage[2], (Currency::EUR, 1));
    }

    #[test]
    fn ties_break_by_code() {
        let records = [rec(Currency::USD), rec(Currency::BTC)];
        let usage = currency_usage(records.iter());
        assert_eq!(usage[0].0, Currency::BTC, "BTC < USD lexicographically");
    }

    #[test]
    fn table_contains_all_rows() {
        let records = [rec(Currency::XRP), rec(Currency::BTC)];
        let table = usage_table(&currency_usage(records.iter()));
        assert!(table.contains("XRP"));
        assert!(table.contains("BTC"));
    }
}
