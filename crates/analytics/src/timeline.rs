//! Activity over time: monthly payment trends and user-population counts.
//!
//! The paper: "we uncovered the trends of its payments" and "As of August
//! 2015, Ripple counted more than 165K users, +55K of which were actively
//! participating (i.e. by submitting transactions, creating offers,
//! etc.)".

use std::collections::{BTreeMap, HashSet};

use ripple_crypto::AccountId;
use ripple_ledger::PaymentRecord;
use ripple_store::HistoryEvent;

/// One calendar month of activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonthRow {
    /// Calendar year.
    pub year: i64,
    /// Calendar month (1–12).
    pub month: u32,
    /// Payments delivered in the month.
    pub payments: u64,
    /// Distinct senders active in the month.
    pub active_senders: u64,
}

/// Monthly activity across the history, in chronological order.
pub fn monthly_timeline<'a>(payments: impl Iterator<Item = &'a PaymentRecord>) -> Vec<MonthRow> {
    let mut months: BTreeMap<(i64, u32), (u64, HashSet<AccountId>)> = BTreeMap::new();
    for p in payments {
        let (year, month, ..) = p.timestamp.to_civil();
        let entry = months.entry((year, month)).or_default();
        entry.0 += 1;
        entry.1.insert(p.sender);
    }
    months
        .into_iter()
        .map(|((year, month), (payments, senders))| MonthRow {
            year,
            month,
            payments,
            active_senders: senders.len() as u64,
        })
        .collect()
}

/// Population counts: everyone the ledger has seen vs. everyone who acted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserStats {
    /// Accounts created in the history.
    pub total_accounts: u64,
    /// Accounts that actively participated: sent a payment, declared
    /// trust, or placed an offer (the paper's "actively participating").
    pub active_accounts: u64,
    /// Accounts that sent at least one payment.
    pub senders: u64,
    /// Accounts that received at least one payment.
    pub receivers: u64,
}

impl UserStats {
    /// Active fraction of the population (the paper: 55K/165K ≈ 1/3).
    pub fn active_fraction(&self) -> f64 {
        if self.total_accounts == 0 {
            0.0
        } else {
            self.active_accounts as f64 / self.total_accounts as f64
        }
    }
}

/// Computes population statistics from a full event history.
pub fn user_stats<'a>(events: impl Iterator<Item = &'a HistoryEvent>) -> UserStats {
    let mut total: HashSet<AccountId> = HashSet::new();
    let mut active: HashSet<AccountId> = HashSet::new();
    let mut senders: HashSet<AccountId> = HashSet::new();
    let mut receivers: HashSet<AccountId> = HashSet::new();
    for event in events {
        match event {
            HistoryEvent::AccountCreated { account, .. } => {
                total.insert(*account);
            }
            HistoryEvent::Payment(p) => {
                active.insert(p.sender);
                senders.insert(p.sender);
                receivers.insert(p.destination);
            }
            HistoryEvent::TrustSet { truster, .. } => {
                active.insert(*truster);
            }
            HistoryEvent::OfferPlaced { owner, .. } => {
                active.insert(*owner);
            }
        }
    }
    UserStats {
        total_accounts: total.len() as u64,
        active_accounts: active.len() as u64,
        senders: senders.len() as u64,
        receivers: receivers.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_crypto::sha512_half;
    use ripple_ledger::{Currency, PathSummary, RippleTime, Value};

    fn acct(n: u8) -> AccountId {
        AccountId::from_bytes([n; 20])
    }

    fn payment(sender: u8, year: i64, month: u32) -> PaymentRecord {
        PaymentRecord {
            tx_hash: sha512_half(&[sender, month as u8]),
            sender: acct(sender),
            destination: acct(200),
            currency: Currency::XRP,
            issuer: None,
            amount: Value::from_int(1),
            timestamp: RippleTime::from_ymd_hms(year, month, 15, 12, 0, 0),
            ledger_seq: 1,
            paths: PathSummary::direct(),
            cross_currency: false,
            source_currency: None,
        }
    }

    #[test]
    fn timeline_groups_by_month_in_order() {
        let records = [
            payment(1, 2014, 3),
            payment(2, 2014, 3),
            payment(1, 2014, 3),
            payment(1, 2013, 12),
            payment(3, 2015, 1),
        ];
        let rows = monthly_timeline(records.iter());
        assert_eq!(rows.len(), 3);
        assert_eq!(
            (rows[0].year, rows[0].month, rows[0].payments),
            (2013, 12, 1)
        );
        assert_eq!(
            (rows[1].year, rows[1].month, rows[1].payments),
            (2014, 3, 3)
        );
        assert_eq!(rows[1].active_senders, 2, "two distinct senders in March");
        assert_eq!((rows[2].year, rows[2].month), (2015, 1));
    }

    #[test]
    fn user_stats_distinguish_active_from_created() {
        let t = RippleTime::EPOCH;
        let events = [
            HistoryEvent::AccountCreated {
                account: acct(1),
                timestamp: t,
            },
            HistoryEvent::AccountCreated {
                account: acct(2),
                timestamp: t,
            },
            HistoryEvent::AccountCreated {
                account: acct(3),
                timestamp: t,
            },
            HistoryEvent::Payment(payment(1, 2014, 1)),
            HistoryEvent::TrustSet {
                truster: acct(2),
                trustee: acct(1),
                currency: Currency::USD,
                limit: Value::from_int(10),
                timestamp: t,
            },
        ];
        let stats = user_stats(events.iter());
        assert_eq!(stats.total_accounts, 3);
        assert_eq!(stats.active_accounts, 2, "payer and truster");
        assert_eq!(stats.senders, 1);
        assert_eq!(stats.receivers, 1);
        assert!((stats.active_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_history_is_empty() {
        assert!(monthly_timeline(std::iter::empty()).is_empty());
        let stats = user_stats(std::iter::empty());
        assert_eq!(stats.total_accounts, 0);
        assert_eq!(stats.active_fraction(), 0.0);
    }
}
