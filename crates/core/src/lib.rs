//! Ripple Observatory — a full reproduction of *"Consensus Robustness and
//! Transaction De-Anonymization in the Ripple Currency Exchange System"*
//! (ICDCS 2017) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem and provides [`Study`], the
//! one-stop pipeline that generates a calibrated history and reproduces all
//! of the paper's tables and figures:
//!
//! | Experiment | Paper artifact | Accessor |
//! |---|---|---|
//! | E1 | Fig. 2 (validator pages, 3 periods) | [`Study::figure2`] |
//! | E2 | Table I (rounding grid) | [`ripple_deanon::AmountResolution`] |
//! | E3/E12 | Fig. 3 (information gain) | [`Study::figure3`] |
//! | E4 | Fig. 4 (currency ranking) | [`Study::figure4`] |
//! | E5 | Fig. 5 (amount survival) | [`Study::figure5`] |
//! | E6/E7 | Fig. 6 (hops, parallel paths) | [`Study::figure6a`], [`Study::figure6b`] |
//! | E8 | Table II (Market-Maker removal) | [`Study::table2`] |
//! | E9–E11 | Fig. 7 (hubs, trust, balances) | [`Study::figure7`] |
//! | E14 | Offer concentration | [`Study::offer_concentration`] |
//!
//! # Examples
//!
//! ```
//! use ripple_core::{Study, SynthConfig};
//!
//! let study = Study::generate(SynthConfig::small(2_000));
//! let fig3 = study.figure3();
//! // The strongest attacker de-anonymizes nearly everything.
//! assert!(fig3[0].1.fraction() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

pub mod liquidity;

pub use ripple_analytics as analytics;
pub use ripple_check as check;
pub use ripple_consensus as consensus;
pub use ripple_crypto as crypto;
pub use ripple_deanon as deanon;
pub use ripple_ledger as ledger;
pub use ripple_netsim as netsim;
pub use ripple_node as node;
pub use ripple_obs as obs;
pub use ripple_orderbook as orderbook;
pub use ripple_paths as paths;
pub use ripple_query as query;
pub use ripple_store as store;
pub use ripple_synth as synth;

pub use liquidity::{
    run_liquidity, LiquidityConfig, LiquidityOutcome, LiquidityPerf, LiquidityReport,
};
pub use ripple_analytics::{MmRemovalReport, OfferConcentration};
pub use ripple_consensus::{CollectionPeriod, ValidatorReport};
pub use ripple_crypto::AccountId;
pub use ripple_deanon::{
    DeanonIndex, EngineConfig, Fig3Sweep, IgResult, Observation, ResolutionSpec,
};
pub use ripple_ledger::{Currency, PaymentRecord, Value};
pub use ripple_orderbook::RateTable;
pub use ripple_synth::{
    Generator, HistoryTallies, PipelineConfig, PipelineRun, SynthBench, SynthConfig, SynthOutput,
};

/// The end-to-end study: a generated history plus every analysis the paper
/// runs over it.
#[derive(Debug)]
pub struct Study {
    output: SynthOutput,
    payment_arena: OnceLock<Arc<[PaymentRecord]>>,
    /// Streaming tallies from a pipelined generation, when available. The
    /// figure-4/5/6 accessors answer from these instead of re-scanning the
    /// history.
    tallies: Option<HistoryTallies>,
}

impl Study {
    /// Generates a history with the given configuration.
    pub fn generate(config: SynthConfig) -> Study {
        Study {
            output: Generator::new(config).run(),
            payment_arena: OnceLock::new(),
            tallies: None,
        }
    }

    /// Generates a history with the pipelined parallel generator, seeding
    /// the study's shared arena and analytics tallies from the run. Returns
    /// the study plus the run's stage timings.
    pub fn generate_pipelined(
        config: SynthConfig,
        pipeline: &PipelineConfig,
    ) -> (Study, SynthBench) {
        let run = Generator::new(config)
            .run_pipelined(pipeline)
            .expect("pipelined generation failed");
        let bench = run.bench.clone();
        (Study::from_pipeline(run), bench)
    }

    /// Wraps a pipelined run: the payment arena and streaming tallies are
    /// taken from the run instead of being rebuilt on first use.
    pub fn from_pipeline(run: PipelineRun) -> Study {
        let arena = OnceLock::new();
        arena.set(run.arena).expect("fresh lock");
        Study {
            output: run.output,
            payment_arena: arena,
            tallies: Some(run.tallies),
        }
    }

    /// Wraps an existing generation run.
    pub fn from_output(output: SynthOutput) -> Study {
        Study {
            output,
            payment_arena: OnceLock::new(),
            tallies: None,
        }
    }

    /// The underlying generation run.
    pub fn output(&self) -> &SynthOutput {
        &self.output
    }

    /// The payment records, in time order.
    pub fn payments(&self) -> Vec<&PaymentRecord> {
        self.output.payments().collect()
    }

    /// The payment records as a shared arena. The arena is materialized on
    /// first use and then shared: ten attack indexes (one per Figure 3 row)
    /// hold one copy of the history between them instead of cloning it per
    /// spec.
    pub fn payment_arena(&self) -> Arc<[PaymentRecord]> {
        self.payment_arena
            .get_or_init(|| self.output.payments().cloned().collect())
            .clone()
    }

    /// E1 — Figure 2: runs the three collection periods for `rounds`
    /// consensus rounds each, returning `(period, report)` pairs.
    pub fn figure2(&self, rounds: u64, seed: u64) -> Vec<(CollectionPeriod, ValidatorReport)> {
        CollectionPeriod::all()
            .into_iter()
            .map(|period| {
                let outcome = period.run(rounds, seed);
                (period, outcome.report())
            })
            .collect()
    }

    /// E3/E12 — Figure 3: information gain of every feature/resolution row.
    pub fn figure3(&self) -> Vec<(&'static str, IgResult)> {
        let records = self.payments();
        ripple_deanon::ig::figure3(&records)
    }

    /// E3/E12 — Figure 3 via the sharded single-pass engine: every row's
    /// strict *and* sender metric in one scan, plus throughput telemetry
    /// (payments/sec, per-phase wall time, peak class count).
    pub fn figure3_sweep(&self, config: EngineConfig) -> Fig3Sweep {
        let records = self.payments();
        ripple_deanon::figure3_sweep(&records, config)
    }

    /// E4 — Figure 4: ranked currency usage. Answered from the streaming
    /// tallies when the history came from the pipelined generator.
    pub fn figure4(&self) -> Vec<(Currency, u64)> {
        match &self.tallies {
            Some(t) => {
                let mut out: Vec<(Currency, u64)> =
                    t.currency_counts.iter().map(|(&c, &n)| (c, n)).collect();
                out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                out
            }
            None => ripple_analytics::currency_usage(self.output.payments()),
        }
    }

    /// E5 — Figure 5: survival curves for the paper's leading currencies
    /// plus the currency-unaware "Global" series (`None` key).
    pub fn figure5(&self) -> Vec<(Option<Currency>, ripple_analytics::SurvivalCurve)> {
        let currencies = [
            Currency::BTC,
            Currency::CCK,
            Currency::CNY,
            Currency::EUR,
            Currency::MTL,
            Currency::USD,
            Currency::XRP,
        ];
        if let Some(t) = &self.tallies {
            let mut out = vec![(
                None,
                ripple_analytics::SurvivalCurve::from_amounts(t.amounts.clone()),
            )];
            for currency in currencies {
                let amounts = t
                    .amounts_by_currency
                    .get(&currency)
                    .cloned()
                    .unwrap_or_default();
                out.push((
                    Some(currency),
                    ripple_analytics::SurvivalCurve::from_amounts(amounts),
                ));
            }
            return out;
        }
        let mut out = vec![(
            None,
            ripple_analytics::SurvivalCurve::build(self.output.payments(), None),
        )];
        for currency in currencies {
            out.push((
                Some(currency),
                ripple_analytics::SurvivalCurve::build(self.output.payments(), Some(currency)),
            ));
        }
        out
    }

    /// E6 — Figure 6(a): payment paths per intermediate-hop count.
    pub fn figure6a(&self) -> BTreeMap<usize, u64> {
        match &self.tallies {
            Some(t) => t.hop_histogram.clone(),
            None => ripple_analytics::path_hop_histogram(self.output.payments()),
        }
    }

    /// E7 — Figure 6(b): payments per parallel-path count.
    pub fn figure6b(&self) -> BTreeMap<usize, u64> {
        match &self.tallies {
            Some(t) => t.parallel_histogram.clone(),
            None => ripple_analytics::parallel_path_histogram(self.output.payments()),
        }
    }

    /// E8 — Table II: the Market-Maker-removal replay over the post-snapshot
    /// payment window. Returns `None` if the run produced no snapshot.
    pub fn table2(&self) -> Option<MmRemovalReport> {
        let (at, snapshot) = self.output.snapshot.as_ref()?;
        let window: Vec<&PaymentRecord> = self
            .output
            .payments()
            .filter(|p| {
                // The replay window covers the organic IOU traffic; the
                // spam campaigns (MTL, CCK) ride dedicated chains rather
                // than the Market-Maker fabric the experiment probes.
                p.timestamp >= *at
                    && !p.currency.is_xrp()
                    && p.currency != Currency::MTL
                    && p.currency != Currency::CCK
            })
            .collect();
        Some(ripple_analytics::mm_removal_replay(
            snapshot,
            &self.output.cast.market_makers,
            window.into_iter(),
        ))
    }

    /// E9–E11 — Figure 7: the top-`n` intermediaries with trust and
    /// EUR-aggregated balance profiles.
    pub fn figure7(&self, n: usize) -> ripple_analytics::HubReport {
        let names: HashMap<AccountId, String> = self
            .output
            .cast
            .gateways
            .iter()
            .map(|g| (g.account, g.name.clone()))
            .collect();
        ripple_analytics::hubs::hub_report(
            self.output.payments(),
            &self.output.final_state,
            &names,
            &RateTable::eur_2015(),
            n,
        )
    }

    /// E14 — offer-placement concentration across Market Makers.
    pub fn offer_concentration(&self) -> OfferConcentration {
        ripple_analytics::offer_concentration(self.output.events.iter())
    }

    /// Monthly payment/sender trends (the appendix's "trends of its
    /// payments").
    pub fn timeline(&self) -> Vec<ripple_analytics::MonthRow> {
        ripple_analytics::monthly_timeline(self.output.payments())
    }

    /// Population statistics (the paper: 165K users, 55K active as of
    /// August 2015).
    pub fn user_stats(&self) -> ripple_analytics::UserStats {
        ripple_analytics::user_stats(self.output.events.iter())
    }

    /// Builds the de-anonymization attack index at the given resolution.
    /// Indexes built through this method share one record arena (see
    /// [`Study::payment_arena`]).
    pub fn attack_index(&self, spec: ResolutionSpec) -> DeanonIndex {
        DeanonIndex::build_shared(self.payment_arena(), spec)
    }
}
