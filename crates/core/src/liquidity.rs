//! E18 — credit-network liquidity suite over the synthetic trust graph.
//!
//! The paper's Table II asks one adversarial question — what happens to
//! payment deliverability when every Market Maker leaves at once. This
//! module generalizes that probe into a liquidity scenario engine driven
//! by the capacity-aware router ([`ripple_paths::Router`]):
//!
//! * **Health metrics** — per-currency trust extended and IOU debt
//!   outstanding, plus per-gateway issuance, measured directly off the
//!   executed final ledger state.
//! * **Redeemability probes** — for each gateway, can its IOU holders
//!   actually route their claims back to the issuer?
//! * **Gateway insolvency cascade** — sever gateways in descending
//!   issuance order, wave by wave, and re-measure deliverability of a
//!   fixed probe stream after each wave.
//! * **Trust-line drain** — push every trust line toward its limit at
//!   parameterized fractions and measure how delivery degrades as slack
//!   disappears from the credit network.
//! * **Market-Maker exit waves** — the Table II replay
//!   ([`ripple_analytics::mm_removal_replay`]) generalized from a single
//!   all-at-once removal to a parameterized sequence of cumulative exit
//!   waves over the same post-snapshot payment window.
//!
//! Alongside the scenario campaigns, the suite benchmarks the router
//! against the brute-force max-flow oracle
//! ([`ripple_check::oracle::max_deliverable_sparse`]) on a sample of the
//! same query stream: the oracle is the ground truth the router must
//! never exceed, and the per-query speedup is the headline number in
//! `BENCH_liquidity.json`.
//!
//! # Determinism
//!
//! [`LiquidityReport`] and its [`LiquidityReport::to_json`] rendering are
//! pure functions of `(SynthOutput, LiquidityConfig)`: probe streams come
//! from [`ripple_synth::payment_probes`] (seeded), every aggregation is
//! an order-independent integer sum or an explicitly sorted list, and no
//! timing data enters the report. Wall-clock measurements live in the
//! separate [`LiquidityPerf`] so the report bytes stay stable across
//! hosts, repeats, and pipeline worker counts.
//!
//! # Router cache lineage
//!
//! The campaigns mutate *clones* of the final state. Generation counters
//! are copied by `clone`, so two diverged clones can reach the same
//! [`ripple_ledger::LedgerState::credit_generation`] value with different
//! contents. A router cache must therefore never be shared across
//! lineages: the suite dedicates a fresh [`Router`] to every cloned
//! state and only reuses a router across mutations of that same clone
//! (where generations stay monotone).

use std::collections::BTreeMap;
use std::time::Instant;

use ripple_analytics::mm_removal_replay;
use ripple_check::oracle::max_deliverable_sparse;
use ripple_crypto::AccountId;
use ripple_ledger::{Currency, LedgerState, Value};
use ripple_obs::json::JsonWriter;
use ripple_paths::{PathLimits, Router, RouterStats};
use ripple_synth::probes::{payment_probes, PaymentProbe};
use ripple_synth::SynthOutput;

/// Tuning knobs for the liquidity suite.
#[derive(Debug, Clone)]
pub struct LiquidityConfig {
    /// Number of scripted payment probes in the measurement stream.
    pub probes: usize,
    /// Seed for the probe stream (independent of the history seed).
    pub seed: u64,
    /// How many probes (a prefix of the stream) are also answered by the
    /// brute-force max-flow oracle for the agreement check and the
    /// throughput comparison.
    pub oracle_sample: usize,
    /// Number of waves in the gateway insolvency cascade.
    pub insolvency_waves: usize,
    /// Drain fractions, in percent of remaining trust-line headroom.
    pub drain_percents: Vec<u32>,
    /// Number of cumulative Market-Maker exit waves.
    pub exit_waves: usize,
    /// IOU holders probed for redeemability per gateway.
    pub redeem_holders_per_gateway: usize,
    /// Path-search limits for every router in the suite.
    pub limits: PathLimits,
}

impl Default for LiquidityConfig {
    fn default() -> Self {
        LiquidityConfig {
            probes: 2_048,
            seed: 18,
            oracle_sample: 48,
            insolvency_waves: 4,
            drain_percents: vec![25, 50, 75, 90],
            exit_waves: 4,
            redeem_holders_per_gateway: 6,
            limits: PathLimits::default(),
        }
    }
}

/// Per-currency credit-network health, measured off the ledger state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrencyHealth {
    /// The currency.
    pub currency: Currency,
    /// Trust lines extended in this currency.
    pub trust_lines: u64,
    /// Total trust extended (sum of limits), in raw `Value` units.
    pub trust_total: i128,
    /// Total IOU debt outstanding (sum of absolute pair balances), raw.
    pub iou_outstanding: i128,
}

/// Per-gateway issuance and redeemability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayHealth {
    /// Gateway name (the Fig. 7a labels).
    pub name: String,
    /// The currency the gateway principally issues.
    pub currency: Currency,
    /// Outstanding issuance: debt the gateway owes across all currencies,
    /// in raw `Value` units.
    pub issued: i128,
    /// IOU holders probed for redeemability.
    pub holders_probed: u64,
    /// Holders whose full claim routes back to the gateway.
    pub fully_redeemable: u64,
}

/// Deliverability of the fixed probe stream against one network state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryPoint {
    /// Probes whose full amount is deliverable.
    pub fully_deliverable: u64,
    /// Probes where some, but not all, of the amount is deliverable.
    pub partially_deliverable: u64,
    /// Probes with no deliverable liquidity at all.
    pub undeliverable: u64,
    /// Total deliverable value, capped at each probe's requested amount,
    /// in raw `Value` units.
    pub deliverable_raw: i128,
}

/// One wave of the gateway insolvency cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsolvencyWave {
    /// Gateways severed so far (cumulative).
    pub gateways_severed: u64,
    /// Probe-stream deliverability after this wave.
    pub delivery: DeliveryPoint,
}

/// Deliverability at one trust-line drain fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPoint {
    /// Percent of remaining trust-line headroom consumed by debt.
    pub drain_percent: u32,
    /// Probe-stream deliverability at this drain level.
    pub delivery: DeliveryPoint,
}

/// One cumulative Market-Maker exit wave (generalized Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitWave {
    /// Market Makers severed so far (cumulative).
    pub makers_severed: u64,
    /// Resting offers stripped from the snapshot.
    pub offers_stripped: u64,
    /// Cross-currency payments submitted in the replay window.
    pub cross_submitted: u64,
    /// Cross-currency payments still delivered.
    pub cross_delivered: u64,
    /// Single-currency payments submitted.
    pub single_submitted: u64,
    /// Single-currency payments still delivered.
    pub single_delivered: u64,
}

/// Summary of the probe stream against the unmodified final state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeSummary {
    /// Probes issued.
    pub probes: u64,
    /// Total requested value, raw.
    pub requested_raw: i128,
    /// Baseline deliverability.
    pub delivery: DeliveryPoint,
    /// Probes cross-checked against the max-flow oracle.
    pub oracle_checked: u64,
    /// Probes where the router claimed more than the oracle's max flow
    /// (must be zero; the differential `router` target enforces this at
    /// small scale, this field witnesses it at benchmark scale).
    pub oracle_violations: u64,
}

/// The deterministic liquidity report — everything in
/// `BENCH_liquidity.json` except wall-clock timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiquidityReport {
    /// Accounts in the final state.
    pub accounts: u64,
    /// Trust lines in the final state.
    pub trust_lines: u64,
    /// Probe-stream seed.
    pub probe_seed: u64,
    /// Per-currency health, sorted by currency code.
    pub health: Vec<CurrencyHealth>,
    /// Per-gateway issuance and redeemability, sorted by name.
    pub gateways: Vec<GatewayHealth>,
    /// Probe stream summary against the unmodified state.
    pub probe_summary: ProbeSummary,
    /// Gateway insolvency cascade, wave by wave.
    pub insolvency_cascade: Vec<InsolvencyWave>,
    /// Trust-line drain curve.
    pub trust_drain: Vec<DrainPoint>,
    /// Market-Maker exit waves (empty when the run has no snapshot).
    pub mm_exit_waves: Vec<ExitWave>,
}

/// Wall-clock measurements for the router-vs-oracle comparison. Kept out
/// of [`LiquidityReport`] so the report stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiquidityPerf {
    /// Router queries timed (the full probe stream).
    pub router_queries: u64,
    /// Wall time for the router over the probe stream, seconds.
    pub router_secs: f64,
    /// Oracle queries timed (the sampled prefix).
    pub oracle_queries: u64,
    /// Wall time for the oracle over the sample, seconds.
    pub oracle_secs: f64,
    /// Per-query speedup: oracle seconds-per-query over router
    /// seconds-per-query.
    pub speedup: f64,
    /// Cache statistics from the suite's primary (final-state) router.
    pub router_stats: RouterStats,
}

/// The suite's full outcome: deterministic report plus timings.
#[derive(Debug, Clone)]
pub struct LiquidityOutcome {
    /// The deterministic report.
    pub report: LiquidityReport,
    /// Wall-clock measurements.
    pub perf: LiquidityPerf,
}

/// Measures the probe stream's deliverability against `state` through
/// `router`. The router must be dedicated to `state`'s mutation lineage
/// (see the module docs on cache lineage).
fn measure(state: &LedgerState, router: &mut Router, probes: &[PaymentProbe]) -> DeliveryPoint {
    let mut point = DeliveryPoint::default();
    for p in probes {
        let capacity = router.deliverable(state, p.sender, p.destination, p.currency);
        let got = if capacity > p.amount {
            p.amount
        } else {
            capacity
        };
        let got = if got.is_negative() { Value::ZERO } else { got };
        if got >= p.amount {
            point.fully_deliverable += 1;
        } else if got.is_positive() {
            point.partially_deliverable += 1;
        } else {
            point.undeliverable += 1;
        }
        point.deliverable_raw += got.raw();
    }
    point
}

/// Per-currency health metrics off one pass over the trust graph.
fn currency_health(state: &LedgerState) -> Vec<CurrencyHealth> {
    let mut by_currency: BTreeMap<Currency, CurrencyHealth> = BTreeMap::new();
    for line in state.trust_lines() {
        let entry = by_currency
            .entry(line.currency)
            .or_insert_with(|| CurrencyHealth {
                currency: line.currency,
                trust_lines: 0,
                trust_total: 0,
                iou_outstanding: 0,
            });
        entry.trust_lines += 1;
        entry.trust_total += line.limit.raw();
    }
    for (_, _, currency, balance) in state.pair_balances() {
        let entry = by_currency
            .entry(currency)
            .or_insert_with(|| CurrencyHealth {
                currency,
                trust_lines: 0,
                trust_total: 0,
                iou_outstanding: 0,
            });
        entry.iou_outstanding += balance.raw().abs();
    }
    by_currency.into_values().collect()
}

/// Gateway issuance plus redeemability probes through `router`.
fn gateway_health(
    output: &SynthOutput,
    router: &mut Router,
    holders_per_gateway: usize,
) -> Vec<GatewayHealth> {
    let state = &output.final_state;
    let gateway_set: BTreeMap<AccountId, usize> = output
        .cast
        .gateways
        .iter()
        .enumerate()
        .map(|(i, g)| (g.account, i))
        .collect();
    // One pass over the pair balances: accumulate each gateway's debt and
    // its holder list in the gateway's home currency.
    let mut issued: Vec<i128> = vec![0; output.cast.gateways.len()];
    let mut holders: Vec<Vec<(AccountId, Value)>> = vec![Vec::new(); output.cast.gateways.len()];
    for (low, high, currency, balance) in state.pair_balances() {
        // Positive balance: `low` holds `high`'s debt; negative: the
        // reverse. Tally debt against the debtor when it is a gateway.
        let (debtor, holder, claim) = if balance.is_positive() {
            (high, low, balance)
        } else if balance.is_negative() {
            (low, high, -balance)
        } else {
            continue;
        };
        if let Some(&i) = gateway_set.get(&debtor) {
            issued[i] += claim.raw();
            if currency == output.cast.gateways[i].home_currency {
                holders[i].push((holder, claim));
            }
        }
    }
    let mut out: Vec<GatewayHealth> = Vec::with_capacity(output.cast.gateways.len());
    for (i, gateway) in output.cast.gateways.iter().enumerate() {
        let mut holder_list = std::mem::take(&mut holders[i]);
        holder_list.sort_by_key(|&(account, _)| account);
        holder_list.truncate(holders_per_gateway);
        let mut fully_redeemable = 0u64;
        for &(holder, claim) in &holder_list {
            let capacity =
                router.deliverable(state, holder, gateway.account, gateway.home_currency);
            if capacity >= claim {
                fully_redeemable += 1;
            }
        }
        out.push(GatewayHealth {
            name: gateway.name.clone(),
            currency: gateway.home_currency,
            issued: issued[i],
            holders_probed: holder_list.len() as u64,
            fully_redeemable,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Runs the full liquidity suite over a generated history.
pub fn run_liquidity(output: &SynthOutput, config: &LiquidityConfig) -> LiquidityOutcome {
    let state = &output.final_state;
    let probes = payment_probes(&output.cast, config.seed, config.probes);
    let requested_raw: i128 = probes.iter().map(|p| p.amount.raw()).sum();

    // Baseline deliverability and the timed router pass share one router:
    // the final state is never mutated, so its lineage is trivially safe.
    let mut router = Router::new(config.limits);
    let router_timer = Instant::now();
    let delivery = measure(state, &mut router, &probes);
    let router_secs = router_timer.elapsed().as_secs_f64();

    // Oracle agreement + throughput sample: the same prefix of the same
    // stream, answered by brute-force max flow.
    let sample = &probes[..config.oracle_sample.min(probes.len())];
    let mut oracle_violations = 0u64;
    let oracle_timer = Instant::now();
    for p in sample {
        let truth =
            max_deliverable_sparse(state, p.sender, p.destination, p.currency, p.amount.raw());
        let routed = router.deliverable(state, p.sender, p.destination, p.currency);
        let routed = if routed > p.amount { p.amount } else { routed };
        if routed.raw() > truth {
            oracle_violations += 1;
        }
    }
    let oracle_secs = oracle_timer.elapsed().as_secs_f64();

    let health = currency_health(state);
    let gateways = gateway_health(output, &mut router, config.redeem_holders_per_gateway);

    // Gateway insolvency cascade: sever in descending-issuance order on a
    // single clone, measuring after each wave. One dedicated router rides
    // the clone's monotone mutation lineage.
    let mut order: Vec<(i128, String, AccountId)> = output
        .cast
        .gateways
        .iter()
        .map(|g| {
            let issued = gateways
                .iter()
                .find(|h| h.name == g.name)
                .map(|h| h.issued)
                .unwrap_or(0);
            (issued, g.name.clone(), g.account)
        })
        .collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut insolvency_cascade = Vec::new();
    if config.insolvency_waves > 0 && !order.is_empty() {
        let mut cascade_state = state.clone();
        let mut cascade_router = Router::new(config.limits);
        let per_wave = order.len().div_ceil(config.insolvency_waves);
        let mut severed = 0usize;
        while severed < order.len() {
            let next = (severed + per_wave).min(order.len());
            for &(_, _, account) in &order[severed..next] {
                cascade_state.sever_account(account);
            }
            severed = next;
            insolvency_cascade.push(InsolvencyWave {
                gateways_severed: severed as u64,
                delivery: measure(&cascade_state, &mut cascade_router, &probes),
            });
        }
    }

    // Trust-line drain: each fraction gets its own clone (drains are not
    // cumulative — 50% means half the *original* headroom) and its own
    // router.
    let mut trust_drain = Vec::new();
    for &percent in &config.drain_percents {
        let mut drained = state.clone();
        let lines: Vec<_> = drained.trust_lines().collect();
        for line in lines {
            if !line.limit.is_positive() {
                continue;
            }
            let held = drained.iou_balance(line.truster, line.trustee, line.currency);
            let headroom = line.limit - held;
            if !headroom.is_positive() {
                continue;
            }
            let debt = headroom.mul_ratio(percent as u64, 100);
            if debt.is_positive() {
                drained.adjust_pair_balance(line.truster, line.trustee, line.currency, debt);
            }
        }
        let mut drain_router = Router::new(config.limits);
        trust_drain.push(DrainPoint {
            drain_percent: percent,
            delivery: measure(&drained, &mut drain_router, &probes),
        });
    }

    // Market-Maker exit waves: cumulative prefixes of the cast's Market
    // Makers through the Table II replay. The final wave (all makers)
    // coincides with `Study::table2`.
    let mut mm_exit_waves = Vec::new();
    if let Some((at, snapshot)) = &output.snapshot {
        let makers = &output.cast.market_makers;
        if config.exit_waves > 0 && !makers.is_empty() {
            let per_wave = makers.len().div_ceil(config.exit_waves);
            let mut severed = per_wave.min(makers.len());
            loop {
                let window = output.payments().filter(|p| {
                    p.timestamp >= *at
                        && !p.currency.is_xrp()
                        && p.currency != Currency::MTL
                        && p.currency != Currency::CCK
                });
                let report = mm_removal_replay(snapshot, &makers[..severed], window);
                mm_exit_waves.push(ExitWave {
                    makers_severed: severed as u64,
                    offers_stripped: report.offers_stripped as u64,
                    cross_submitted: report.stats.cross_submitted,
                    cross_delivered: report.stats.cross_delivered,
                    single_submitted: report.stats.single_submitted,
                    single_delivered: report.stats.single_delivered,
                });
                if severed == makers.len() {
                    break;
                }
                severed = (severed + per_wave).min(makers.len());
            }
        }
    }

    let stats = router.stats();
    let report = LiquidityReport {
        accounts: state.account_count() as u64,
        trust_lines: state.trust_lines().count() as u64,
        probe_seed: config.seed,
        health,
        gateways,
        probe_summary: ProbeSummary {
            probes: probes.len() as u64,
            requested_raw,
            delivery,
            oracle_checked: sample.len() as u64,
            oracle_violations,
        },
        insolvency_cascade,
        trust_drain,
        mm_exit_waves,
    };
    let router_per_query = if delivery_queries(&report) > 0 {
        router_secs / delivery_queries(&report) as f64
    } else {
        0.0
    };
    let oracle_per_query = if report.probe_summary.oracle_checked > 0 {
        oracle_secs / report.probe_summary.oracle_checked as f64
    } else {
        0.0
    };
    let perf = LiquidityPerf {
        router_queries: delivery_queries(&report),
        router_secs,
        oracle_queries: report.probe_summary.oracle_checked,
        oracle_secs,
        speedup: if router_per_query > 0.0 {
            oracle_per_query / router_per_query
        } else {
            0.0
        },
        router_stats: stats,
    };
    LiquidityOutcome { report, perf }
}

/// Queries in the timed router pass (the full probe stream).
fn delivery_queries(report: &LiquidityReport) -> u64 {
    report.probe_summary.probes
}

impl LiquidityReport {
    /// Writes the report's fields into the writer's current object. The
    /// field order and formatting are fixed: identical reports render to
    /// identical bytes.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.field_str("experiment", "liquidity");
        w.field_u64("schema", 1);
        w.field_u64("accounts", self.accounts);
        w.field_u64("trust_lines", self.trust_lines);
        w.field_u64("probe_seed", self.probe_seed);
        w.key("health");
        w.begin_array();
        for h in &self.health {
            w.begin_inline_object();
            w.field_str("currency", &h.currency.to_string());
            w.field_u64("trust_lines", h.trust_lines);
            w.field_str("trust_total_raw", &h.trust_total.to_string());
            w.field_str("iou_outstanding_raw", &h.iou_outstanding.to_string());
            w.end_inline_object();
        }
        w.end_array();
        w.key("gateways");
        w.begin_array();
        for g in &self.gateways {
            w.begin_inline_object();
            w.field_str("name", &g.name);
            w.field_str("currency", &g.currency.to_string());
            w.field_str("issued_raw", &g.issued.to_string());
            w.field_u64("holders_probed", g.holders_probed);
            w.field_u64("fully_redeemable", g.fully_redeemable);
            w.end_inline_object();
        }
        w.end_array();
        w.key("probe_summary");
        w.begin_object();
        w.field_u64("probes", self.probe_summary.probes);
        w.field_str(
            "requested_raw",
            &self.probe_summary.requested_raw.to_string(),
        );
        write_delivery(w, &self.probe_summary.delivery);
        w.field_u64("oracle_checked", self.probe_summary.oracle_checked);
        w.field_u64("oracle_violations", self.probe_summary.oracle_violations);
        w.end_object();
        w.key("insolvency_cascade");
        w.begin_array();
        for wave in &self.insolvency_cascade {
            w.begin_inline_object();
            w.field_u64("gateways_severed", wave.gateways_severed);
            write_delivery(w, &wave.delivery);
            w.end_inline_object();
        }
        w.end_array();
        w.key("trust_drain");
        w.begin_array();
        for point in &self.trust_drain {
            w.begin_inline_object();
            w.field_u64("drain_percent", point.drain_percent as u64);
            write_delivery(w, &point.delivery);
            w.end_inline_object();
        }
        w.end_array();
        w.key("mm_exit_waves");
        w.begin_array();
        for wave in &self.mm_exit_waves {
            w.begin_inline_object();
            w.field_u64("makers_severed", wave.makers_severed);
            w.field_u64("offers_stripped", wave.offers_stripped);
            w.field_u64("cross_submitted", wave.cross_submitted);
            w.field_u64("cross_delivered", wave.cross_delivered);
            w.field_u64("single_submitted", wave.single_submitted);
            w.field_u64("single_delivered", wave.single_delivered);
            w.end_inline_object();
        }
        w.end_array();
    }

    /// Renders the report alone as a pretty JSON document. Byte-stable:
    /// equal reports produce equal strings.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        self.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

/// Writes a [`DeliveryPoint`]'s fields into the current object.
fn write_delivery(w: &mut JsonWriter, d: &DeliveryPoint) {
    w.field_u64("fully_deliverable", d.fully_deliverable);
    w.field_u64("partially_deliverable", d.partially_deliverable);
    w.field_u64("undeliverable", d.undeliverable);
    w.field_str("deliverable_raw", &d.deliverable_raw.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_synth::{Generator, SynthConfig};

    fn small_outcome() -> LiquidityOutcome {
        let output = Generator::new(SynthConfig::small(1_500)).run();
        let config = LiquidityConfig {
            probes: 96,
            oracle_sample: 12,
            redeem_holders_per_gateway: 3,
            ..LiquidityConfig::default()
        };
        run_liquidity(&output, &config)
    }

    #[test]
    fn suite_is_deterministic_and_consistent() {
        let a = small_outcome();
        let b = small_outcome();
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.to_json(), b.report.to_json());

        let summary = &a.report.probe_summary;
        assert_eq!(summary.probes, 96);
        assert_eq!(
            summary.probes,
            summary.delivery.fully_deliverable
                + summary.delivery.partially_deliverable
                + summary.delivery.undeliverable
        );
        assert_eq!(summary.oracle_violations, 0, "router exceeded max flow");
        assert!(summary.delivery.deliverable_raw <= summary.requested_raw);
        assert!(!a.report.health.is_empty());
        assert!(!a.report.gateways.is_empty());
    }

    #[test]
    fn campaigns_degrade_monotonically_enough() {
        let outcome = small_outcome();
        let report = &outcome.report;

        // Severing every gateway must not improve delivery, and the final
        // wave (all gateways dead) should devastate the IOU network.
        let baseline = report.probe_summary.delivery;
        if let Some(last) = report.insolvency_cascade.last() {
            assert!(last.delivery.deliverable_raw <= baseline.deliverable_raw);
        }

        // Drain points are measured from the same baseline, so deeper
        // drains deliver no more than shallower ones.
        for pair in report.trust_drain.windows(2) {
            assert!(pair[1].delivery.deliverable_raw <= pair[0].delivery.deliverable_raw);
        }

        // The final exit wave severs every Market Maker — it must match
        // Study::table2's all-at-once removal.
        if let Some(last) = report.mm_exit_waves.last() {
            let output = Generator::new(SynthConfig::small(1_500)).run();
            let study = crate::Study::from_output(output);
            let table2 = study.table2().expect("snapshot exists");
            assert_eq!(last.makers_severed as usize, table2.makers_severed);
            assert_eq!(last.cross_submitted, table2.stats.cross_submitted);
            assert_eq!(last.cross_delivered, table2.stats.cross_delivered);
            assert_eq!(last.single_submitted, table2.stats.single_submitted);
            assert_eq!(last.single_delivered, table2.stats.single_delivered);
        }
    }
}
