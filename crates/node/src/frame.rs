//! CRC-checked length-framed codec for the live socket transport.
//!
//! The wire format mirrors the store's archive framing discipline
//! (`ripple_store::stream`), minus the file magic — a connection is a
//! stream of frames, not a file:
//!
//! ```text
//! frame := tag:u8, len:u32be, payload[len], crc32:u32be
//! ```
//!
//! The CRC covers `tag + len + payload`, computed with the same IEEE
//! CRC-32 as the archive ([`ripple_store::crc::crc32`]), so a frame
//! damaged anywhere — including its header — fails verification.
//!
//! [`FrameDecoder`] is incremental: bytes arrive in whatever chunks the
//! socket produces (`push`), and whole verified frames come out
//! (`next_frame`). Torn reads and frames split across `read()` boundaries
//! are the normal case, not an error. A CRC-corrupt frame triggers
//! *resync-and-continue*: the decoder shifts forward one byte at a time
//! until the next CRC-valid frame, exactly like the archive reader's
//! `ReadMode::Resync`, and accounts for what it skipped in
//! [`DecoderStats`].

use ripple_store::crc::crc32;

/// Frame header size: tag byte plus big-endian payload length.
pub const HEADER_LEN: usize = 5;
/// Frame trailer size: the CRC-32.
pub const TRAILER_LEN: usize = 4;
/// Maximum payload a frame may carry. A corrupt length field must never
/// stall the decoder waiting for gigabytes that will not come.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Appends one encoded frame to `out`.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(tag: u8, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload over cap: {} > {MAX_PAYLOAD}",
        payload.len()
    );
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

/// One verified frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's type tag.
    pub tag: u8,
    /// The frame payload.
    pub payload: Vec<u8>,
}

/// Decoder-side damage and throughput accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Verified frames produced.
    pub frames: u64,
    /// Frame candidates whose CRC check failed.
    pub crc_errors: u64,
    /// Corrupt regions crossed (one resync may skip many bytes).
    pub resyncs: u64,
    /// Bytes discarded while hunting for the next valid frame.
    pub skipped_bytes: u64,
}

/// Incremental, resyncing frame decoder over an in-memory byte buffer.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted periodically).
    pos: usize,
    /// Inside a corrupt region: the next valid frame ends it.
    resyncing: bool,
    stats: DecoderStats,
}

/// Compact the consumed prefix away once it crosses this threshold.
const COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos >= COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Damage and throughput counters so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Bytes buffered but not yet consumed (partial or unscanned input).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next verified frame, or `None` if the buffer holds no
    /// complete valid frame yet. Corrupt data is skipped (shift-one-byte
    /// resync scan, as in the archive reader) and never surfaces as a
    /// frame.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if !self.resyncing {
            let rem = &self.buf[self.pos..];
            if rem.len() < HEADER_LEN {
                return None;
            }
            let len = u32::from_be_bytes([rem[1], rem[2], rem[3], rem[4]]) as usize;
            if len <= MAX_PAYLOAD {
                let total = HEADER_LEN + len + TRAILER_LEN;
                if rem.len() < total {
                    // Partial frame: more bytes are coming.
                    return None;
                }
                let expect = u32::from_be_bytes([
                    rem[total - 4],
                    rem[total - 3],
                    rem[total - 2],
                    rem[total - 1],
                ]);
                if crc32(&rem[..HEADER_LEN + len]) == expect {
                    let frame = Frame {
                        tag: rem[0],
                        payload: rem[HEADER_LEN..HEADER_LEN + len].to_vec(),
                    };
                    self.pos += total;
                    self.stats.frames += 1;
                    return Some(frame);
                }
                // Complete candidate, bad CRC: one corrupt frame.
                self.stats.crc_errors += 1;
            }
            // Bad CRC or an implausible length field (corruption by
            // construction — do not wait for bytes that will never come):
            // this offset is dead, start hunting.
            self.resyncing = true;
            self.pos += 1;
            self.stats.skipped_bytes += 1;
        }
        self.resync_scan()
    }

    /// Shift-one-byte scan for the next CRC-valid frame. Consumes bytes
    /// that can never start a valid frame; parks (without consuming) at
    /// the earliest offset that could still complete into one once more
    /// bytes arrive.
    fn resync_scan(&mut self) -> Option<Frame> {
        let rem = &self.buf[self.pos..];
        // Offsets past this cannot even fit a header yet.
        let tail = rem.len().saturating_sub(HEADER_LEN - 1);
        let mut park: Option<usize> = None;
        let mut offset = 0usize;
        while offset + HEADER_LEN <= rem.len() {
            let h = &rem[offset..];
            let len = u32::from_be_bytes([h[1], h[2], h[3], h[4]]) as usize;
            if len <= MAX_PAYLOAD {
                let total = HEADER_LEN + len + TRAILER_LEN;
                if offset + total <= rem.len() {
                    let expect = u32::from_be_bytes([
                        h[total - 4],
                        h[total - 3],
                        h[total - 2],
                        h[total - 1],
                    ]);
                    if crc32(&h[..HEADER_LEN + len]) == expect {
                        let frame = Frame {
                            tag: h[0],
                            payload: h[HEADER_LEN..HEADER_LEN + len].to_vec(),
                        };
                        self.stats.skipped_bytes += offset as u64;
                        self.stats.frames += 1;
                        self.stats.resyncs += 1;
                        self.resyncing = false;
                        self.pos += offset + total;
                        return Some(frame);
                    }
                } else {
                    // Plausible but incomplete: cannot be judged until
                    // more bytes arrive. Remember the earliest such spot
                    // and keep scanning for a complete frame beyond it.
                    park.get_or_insert(offset);
                }
            }
            offset += 1;
        }
        // No complete valid frame in the buffer. Discard everything
        // before the earliest still-plausible candidate (or all but a
        // header's worth of tail bytes) so garbage cannot pile up.
        let keep_from = park.unwrap_or(tail);
        self.stats.skipped_bytes += keep_from as u64;
        self.pos += keep_from;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_store::{corrupt_bytes, CorruptionPlan};

    fn frames(n: u8) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            let payload: Vec<u8> = (0..(i as usize * 7 + 3)).map(|b| b as u8 ^ i).collect();
            encode_frame(i, &payload, &mut out);
        }
        out
    }

    fn drain(dec: &mut FrameDecoder) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn round_trip_in_one_push() {
        let mut dec = FrameDecoder::new();
        dec.push(&frames(5));
        let got = drain(&mut dec);
        assert_eq!(got.len(), 5);
        assert_eq!(got[2].tag, 2);
        assert_eq!(dec.stats().crc_errors, 0);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn torn_reads_byte_by_byte() {
        // The worst torn read: one byte per `read()` call.
        let bytes = frames(4);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &bytes {
            dec.push(std::slice::from_ref(b));
            got.extend(drain(&mut dec));
        }
        assert_eq!(got.len(), 4);
        assert_eq!(dec.stats().skipped_bytes, 0);
    }

    #[test]
    fn partial_frames_across_every_split_point() {
        // Two frames split at every possible boundary must always decode
        // to exactly the same two frames.
        let bytes = frames(2);
        for cut in 0..=bytes.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&bytes[..cut]);
            let mut got = drain(&mut dec);
            dec.push(&bytes[cut..]);
            got.extend(drain(&mut dec));
            assert_eq!(got.len(), 2, "split at {cut}");
            assert_eq!(dec.stats().crc_errors, 0, "split at {cut}");
        }
    }

    #[test]
    fn crc_corruption_triggers_resync_and_continue() {
        // Flip one payload byte in the middle frame of five: the decoder
        // must drop only that frame and keep decoding the rest.
        let mut bytes = frames(5);
        let f = frames(2).len(); // offset of frame 2
        bytes[f + HEADER_LEN + 1] ^= 0xff;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let got = drain(&mut dec);
        assert_eq!(got.len(), 4, "one frame lost, no more");
        assert!(got.iter().all(|fr| fr.tag != 2));
        let stats = dec.stats();
        assert_eq!(stats.crc_errors, 1);
        assert_eq!(stats.resyncs, 1);
        assert!(stats.skipped_bytes > 0);
    }

    #[test]
    fn corrupt_length_field_does_not_stall() {
        // Damage the length field to a huge value: the decoder must not
        // sit waiting for 4 GiB, it must resync past the bad header.
        let mut bytes = frames(3);
        let f = frames(1).len();
        bytes[f + 1] = 0xff; // most-significant length byte of frame 1
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let got = drain(&mut dec);
        assert_eq!(got.len(), 2);
        assert!(dec.stats().skipped_bytes > 0);
    }

    #[test]
    fn chaos_corpora_never_panic_and_salvage_the_rest() {
        // Reuse the store's corruption corpora: scattered bit flips plus a
        // torn tail over a 40-frame stream. Decoding must never panic and
        // must salvage frames outside the blast radius.
        let clean = frames(40);
        let len = clean.len() as u64;
        for seed in 0..20u64 {
            let plan =
                CorruptionPlan::scattered_flips(seed, 4, len / 4, 3 * len / 4).truncate_at(len - 7);
            let damaged = corrupt_bytes(&clean, &plan);
            let mut dec = FrameDecoder::new();
            // Feed in ragged chunks to combine corruption with torn reads.
            for chunk in damaged.chunks(11) {
                dec.push(chunk);
            }
            let got = drain(&mut dec);
            assert!(got.len() >= 8, "seed {seed}: salvaged only {}", got.len());
            assert!(got.len() < 40, "seed {seed}: corruption must cost frames");
            let stats = dec.stats();
            assert_eq!(stats.frames, got.len() as u64);
            assert!(stats.crc_errors >= 1, "seed {seed}");
        }
    }

    #[test]
    fn pure_garbage_yields_nothing() {
        let mut dec = FrameDecoder::new();
        let junk: Vec<u8> = (0..4096u32).map(|i| (i * 37 % 251) as u8).collect();
        dec.push(&junk);
        assert!(drain(&mut dec).is_empty());
        assert_eq!(dec.stats().frames, 0);
    }

    #[test]
    #[should_panic(expected = "frame payload over cap")]
    fn oversize_payload_rejected_at_encode() {
        let mut out = Vec::new();
        encode_frame(0, &vec![0u8; MAX_PAYLOAD + 1], &mut out);
    }
}
