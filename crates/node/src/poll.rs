//! Hand-rolled readiness polling over non-blocking sockets.
//!
//! The workspace forbids `unsafe`, which rules out binding `poll(2)` /
//! `epoll(7)` through FFI. Instead the event loop polls readiness the
//! portable way: every socket is switched to non-blocking mode and probed
//! each tick — `peek` on streams, `accept` on listeners — with
//! `WouldBlock` meaning "idle". A tick with no ready source sleeps for a
//! short, bounded interval ([`Poller::idle_wait`]) so an idle node burns
//! microwatts, not a core. With a handful of peers per node the O(n)
//! probe is far below the cost of one syscall-per-readiness-change
//! machinery, and it keeps the transport layer entirely in safe std.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use crate::frame::FrameDecoder;

/// What a readiness probe saw on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Bytes are waiting to be read.
    Data,
    /// Nothing to read right now.
    Idle,
    /// The peer closed the connection (or the socket errored).
    Closed,
}

/// Probes a non-blocking stream for readability without consuming bytes.
pub fn probe(stream: &TcpStream) -> Probe {
    let mut byte = [0u8; 1];
    match stream.peek(&mut byte) {
        Ok(0) => Probe::Closed,
        Ok(_) => Probe::Data,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Probe::Idle,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Probe::Idle,
        Err(_) => Probe::Closed,
    }
}

/// Accepts one pending connection from a non-blocking listener, if any.
/// The returned stream is already switched to non-blocking mode.
pub fn try_accept(listener: &TcpListener) -> Option<TcpStream> {
    match listener.accept() {
        Ok((stream, _)) => {
            stream.set_nonblocking(true).ok()?;
            Some(stream)
        }
        Err(_) => None,
    }
}

/// Outcome of draining a socket into a decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drained {
    /// Read `0+` bytes; the connection is still up.
    Open(usize),
    /// The peer closed (EOF) or the socket errored.
    Closed,
}

/// Reads everything currently available on a non-blocking stream into
/// `decoder`, stopping at `WouldBlock`.
pub fn drain_into(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Drained {
    let mut total = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Drained::Closed,
            Ok(n) => {
                decoder.push(&chunk[..n]);
                total += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Drained::Open(total),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Drained::Closed,
        }
    }
}

/// The idle-tick clock of the event loop.
#[derive(Debug, Clone, Copy)]
pub struct Poller {
    idle: Duration,
}

impl Poller {
    /// A poller sleeping `idle` per quiet tick.
    pub fn new(idle: Duration) -> Poller {
        Poller { idle }
    }

    /// Blocks for one idle interval. Called only when a full probe pass
    /// found no ready source.
    pub fn idle_wait(&self) {
        std::thread::sleep(self.idle);
    }
}

impl Default for Poller {
    fn default() -> Poller {
        Poller::new(Duration::from_millis(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn wait_for(stream: &TcpStream, want: Probe) {
        for _ in 0..500 {
            if probe(stream) == want {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("probe never became {want:?}");
    }

    #[test]
    fn probe_sees_idle_then_data_then_closed() {
        let (mut client, server) = pair();
        assert_eq!(probe(&server), Probe::Idle);
        client.write_all(b"ping").unwrap();
        wait_for(&server, Probe::Data);
        drop(client);
        // Drain the pending bytes, then the close becomes visible.
        let mut dec = FrameDecoder::new();
        let mut server = server;
        loop {
            match drain_into(&mut server, &mut dec) {
                Drained::Closed => break,
                Drained::Open(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    #[test]
    fn try_accept_is_nonblocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        assert!(try_accept(&listener).is_none());
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut accepted = None;
        for _ in 0..500 {
            accepted = try_accept(&listener);
            if accepted.is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(accepted.is_some(), "connection never surfaced");
    }

    #[test]
    fn drain_into_collects_frames_across_writes() {
        use crate::frame::encode_frame;
        let (mut client, mut server) = pair();
        let mut bytes = Vec::new();
        encode_frame(7, b"hello", &mut bytes);
        encode_frame(8, b"world", &mut bytes);
        // Two writes split mid-frame.
        client.write_all(&bytes[..7]).unwrap();
        client.flush().unwrap();
        wait_for(&server, Probe::Data);
        let mut dec = FrameDecoder::new();
        drain_into(&mut server, &mut dec);
        assert!(dec.next_frame().is_none(), "first frame still torn");
        client.write_all(&bytes[7..]).unwrap();
        client.flush().unwrap();
        wait_for(&server, Probe::Data);
        drain_into(&mut server, &mut dec);
        let a = dec.next_frame().expect("frame 1");
        let b = dec.next_frame().expect("frame 2");
        assert_eq!((a.tag, a.payload.as_slice()), (7, b"hello".as_slice()));
        assert_eq!((b.tag, b.payload.as_slice()), (8, b"world".as_slice()));
    }
}
