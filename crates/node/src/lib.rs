//! Live networked validators: RPCA over real TCP sockets with
//! socket-level fault injection and supervised reconnect.
//!
//! The rest of the workspace proves consensus properties inside a
//! deterministic simulator; this crate proves the *robustness* story on
//! real operating-system primitives. A validator here is a process
//! ([`Node`], shipped as the `ripple-node` binary) speaking length-framed,
//! CRC-checked messages ([`frame`], [`wire`] — the same framing discipline
//! as the store's record log) over non-blocking sockets driven by a
//! hand-rolled readiness-polling event loop ([`poll`]; the workspace
//! forbids `unsafe`, so no `poll(2)` FFI).
//!
//! The robustness core is the peer-supervision layer ([`peer`]): per-peer
//! heartbeats, read/connect timeouts, exponential backoff with
//! seed-deterministic jitter, bounded reconnect budgets, and graceful
//! degradation — a validator below quorum connectivity keeps proposing
//! (flagging rounds degraded) and resubscribes state on reconnect rather
//! than crashing.
//!
//! The cluster harness ([`harness`]) spawns real child processes and
//! executes [`ripple_netsim::FaultPlan`]s as OS actions — `kill -9`
//! mid-round, socket-level partitions via connection bans, restart with
//! state resync — then reassembles every validator's wire reports, feeds
//! them to the simulator's own `InvariantChecker` (zero forks means the
//! same thing in both backends), and reports wall-clock rounds-to-recover.
//!
//! # Examples
//!
//! Framing survives corruption by resyncing, exactly like the store:
//!
//! ```
//! use ripple_node::frame::{encode_frame, FrameDecoder};
//!
//! let mut bytes = Vec::new();
//! encode_frame(1, b"alpha", &mut bytes);
//! encode_frame(2, b"beta", &mut bytes);
//! bytes[2] ^= 0xFF; // corrupt the first frame's length field
//!
//! let mut dec = FrameDecoder::new();
//! dec.push(&bytes);
//! let survivor = dec.next_frame().expect("second frame survives");
//! assert_eq!(survivor.tag, 2);
//! assert_eq!(survivor.payload, b"beta");
//! assert!(dec.stats().resyncs >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster_trace;
pub mod frame;
pub mod harness;
pub mod node;
pub mod peer;
pub mod poll;
pub mod wire;

pub use cluster_trace::{merge_cluster_trace, NodeProbe};
pub use frame::{encode_frame, DecoderStats, Frame, FrameDecoder};
pub use harness::{run_cluster, ClusterConfig, ClusterReport};
pub use node::{unix_ms, LocalRound, Node, NodeConfig, NodeReport, FEED_ID};
pub use peer::{Backoff, BackoffPolicy, LinkState, Supervisor};
pub use poll::{drain_into, probe, try_accept, Drained, Poller, Probe};
pub use wire::{LinkKind, Telemetry, WireError, WireMsg};
