//! Harness-side client for the node admin plane: per-node trace/flight
//! polling with hard deadlines, clock alignment, and the merged
//! `TRACE_cluster.json` writer.
//!
//! Every instrumented `ripple-node` serves `/health`, `/metrics`,
//! `/trace` and `/flight` from its own poll loop (see
//! [`ripple_obs::http`]). During a cluster run the harness drives one
//! [`NodeProbe`] per validator: a small state machine that periodically
//! issues blocking HTTP GETs with a *per-request deadline*, so a banned,
//! crashed, or wedged node can never stall fault injection — a failed
//! poll is recorded as a telemetry gap and retried with exponential
//! backoff rather than awaited.
//!
//! Clock alignment: every trace event a node reports carries `ts_ns`
//! relative to that process's private monotonic epoch. `/health` exposes
//! the epoch as Unix wall-clock milliseconds (`trace_epoch_unix_ms`) plus
//! `skew_bound_ms`, the node's min-over-heartbeats bound on peer clock
//! skew + one-way delay. The probe resolves each event to corrected
//! absolute nanoseconds at collection time (`anchor - skew/2 + ts_ns`),
//! so events from a process that was killed and restarted (new epoch, new
//! cursor) still land on one shared timeline. [`merge_cluster_trace`]
//! then emits a single `chrome://tracing` document with one process lane
//! per validator.

use std::collections::BTreeMap;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ripple_obs::json::{escape_into, parse, Value};
use ripple_obs::LazyCounter;

static PROBE_POLLS: LazyCounter = LazyCounter::new("harness.admin.polls");
static PROBE_GAPS: LazyCounter = LazyCounter::new("harness.admin.gaps");
static PROBE_EVENTS: LazyCounter = LazyCounter::new("harness.admin.trace_events");

/// Cap on one admin response body (the trace ring is bounded, so any
/// larger body is a protocol error, not data).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// The round-metric histograms lifted out of each node's `/metrics`
/// snapshot into `BENCH_node.json`.
pub const ROUND_HISTOGRAMS: [&str; 3] = [
    "node.round.proposal_dispersion_ms",
    "node.round.validation_latency_ms",
    "node.round.quorum_collect_ms",
];

/// One blocking `GET` with a hard deadline covering connect, write, and
/// the whole read (the admin servers honor `Connection: close`, so EOF
/// terminates the body). Returns the body of a `200` response.
///
/// # Errors
///
/// Connect/read/write failures, deadline expiry, non-200 statuses, and
/// malformed responses all surface as `io::Error` — the caller treats
/// every one of them as a poll gap.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let started = Instant::now();
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: admin\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw: Vec<u8> = Vec::with_capacity(4096);
    let mut buf = [0u8; 16 * 1024];
    loop {
        let left = timeout.saturating_sub(started.elapsed());
        if left.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "admin response deadline expired",
            ));
        }
        stream.set_read_timeout(Some(left))?;
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                if raw.len() > MAX_BODY {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "admin response too large",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "truncated HTTP response",
        ));
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    if status != 200 {
        return Err(std::io::Error::other(format!("HTTP {status} for {path}")));
    }
    Ok(body.to_string())
}

/// A trace event collected from a remote node, resolved to corrected
/// absolute time at collection (see the module docs).
#[derive(Debug, Clone)]
pub struct RemoteEvent {
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Corrected absolute start time, Unix nanoseconds.
    pub unix_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Thread id inside the emitting process.
    pub tid: u64,
    /// Span-stack depth on that thread.
    pub depth: u64,
    /// Consensus round tag, if the span carried one.
    pub round: Option<u64>,
}

/// A percentile readout of one remote histogram, parsed back out of a
/// node's `/metrics` snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// What one probe saw over the whole run — the part of [`NodeProbe`]
/// that outlives it, embedded in the cluster report.
#[derive(Debug, Clone, Default)]
pub struct ProbeSummary {
    /// Trace events collected.
    pub events: usize,
    /// Successful poll cycles.
    pub polls_ok: u64,
    /// Failed poll cycles (unreachable/timed-out admin endpoint). A dead
    /// node keeps accruing gaps at the backed-off cadence — the gap *is*
    /// the telemetry.
    pub gaps: u64,
    /// Events that advanced past our cursor between polls (ring overtook
    /// the poll cadence).
    pub lost: u64,
    /// Ring-full drops reported by the node itself.
    pub dropped: u64,
    /// The node's trace epoch as Unix ms, once a `/health` probe landed.
    pub anchor_unix_ms: Option<u64>,
    /// The node's latest heartbeat-derived clock-skew bound.
    pub skew_bound_ms: Option<i64>,
    /// Round-metric histograms from the latest `/metrics` snapshot.
    pub round_metrics: BTreeMap<String, HistSummary>,
}

/// Polls one validator's admin endpoint on a fixed cadence with
/// per-request deadlines and exponential backoff on failure.
#[derive(Debug)]
pub struct NodeProbe {
    /// Validator index.
    pub node: usize,
    /// Admin endpoint address.
    pub addr: SocketAddr,
    /// Collected events, corrected to absolute time.
    pub events: Vec<RemoteEvent>,
    /// Latest `/flight` body, for crash snapshots of killed nodes.
    pub flight: Option<String>,
    /// Run summary (gaps, anchors, round metrics, ...).
    pub summary: ProbeSummary,
    cursor: u64,
    next_poll: Option<Instant>,
    interval: Duration,
    backoff: Duration,
}

impl NodeProbe {
    /// A probe that polls `addr` every `interval` once [`Self::poll_due`]
    /// starts being called.
    pub fn new(node: usize, addr: SocketAddr, interval: Duration) -> NodeProbe {
        NodeProbe {
            node,
            addr,
            events: Vec::new(),
            flight: None,
            summary: ProbeSummary::default(),
            cursor: 0,
            next_poll: None,
            interval,
            backoff: interval,
        }
    }

    /// Polls if the cadence says so; returns `true` if a poll cycle ran
    /// (successful or not). The whole cycle is bounded by a few
    /// `timeout`-limited requests, never by the remote node's health.
    pub fn poll_due(&mut self, now: Instant, timeout: Duration) -> bool {
        match self.next_poll {
            Some(at) if now < at => return false,
            _ => {}
        }
        let ok = self.poll_now(timeout);
        self.backoff = if ok {
            self.interval
        } else {
            // Unreachable endpoints get probed less and less often, up to
            // 8x the base cadence — cheap enough to keep trying forever.
            (self.backoff * 2).min(self.interval * 8)
        };
        self.next_poll = Some(now + self.backoff);
        true
    }

    /// One immediate poll cycle regardless of cadence: `/health` (clock
    /// anchor + skew), `/trace` (incremental drain), `/flight` and
    /// `/metrics` snapshots. Returns `true` on full success.
    pub fn poll_now(&mut self, timeout: Duration) -> bool {
        PROBE_POLLS.add(1);
        let ok = self.fetch_health(timeout)
            && self.fetch_trace(timeout)
            && self.fetch_flight(timeout)
            && self.fetch_metrics(timeout);
        if ok {
            self.summary.polls_ok += 1;
        } else {
            self.summary.gaps += 1;
            PROBE_GAPS.add(1);
        }
        ok
    }

    /// The anchor used to resolve `ts_ns` into absolute time: the node's
    /// trace epoch minus half its skew bound (the symmetric-delay
    /// estimate of the one-way component).
    fn corrected_anchor_ms(&self) -> Option<i64> {
        let anchor = i64::try_from(self.summary.anchor_unix_ms?).ok()?;
        Some(anchor - self.summary.skew_bound_ms.unwrap_or(0) / 2)
    }

    fn fetch_health(&mut self, timeout: Duration) -> bool {
        let Ok(body) = http_get(self.addr, "/health", timeout) else {
            return false;
        };
        let Ok(doc) = parse(&body) else { return false };
        // Refresh on every poll: a restarted process has a brand-new
        // epoch, and /health is the only way to notice.
        self.summary.anchor_unix_ms = doc.get("trace_epoch_unix_ms").and_then(Value::as_u64);
        self.summary.skew_bound_ms = doc.get("skew_bound_ms").and_then(Value::as_i64);
        self.summary.anchor_unix_ms.is_some()
    }

    fn fetch_trace(&mut self, timeout: Duration) -> bool {
        let path = format!("/trace?cursor={}", self.cursor);
        let Ok(body) = http_get(self.addr, &path, timeout) else {
            return false;
        };
        let Ok(doc) = parse(&body) else { return false };
        let next = doc.get("cursor").and_then(Value::as_u64).unwrap_or(0);
        if next >= self.cursor {
            // A fresh incarnation restarts its cursor from zero; the gap
            // it would report against our stale cursor is not real loss.
            self.summary.lost += doc.get("lost").and_then(Value::as_u64).unwrap_or(0);
        }
        self.cursor = next;
        self.summary.dropped = doc.get("dropped").and_then(Value::as_u64).unwrap_or(0);
        let Some(anchor_ms) = self.corrected_anchor_ms() else {
            return false;
        };
        let anchor_ns = anchor_ms.saturating_mul(1_000_000).max(0) as u64;
        if let Some(events) = doc.get("events").and_then(|v| v.as_arr()) {
            for e in events {
                let ts_ns = e.get("ts_ns").and_then(Value::as_u64).unwrap_or(0);
                self.events.push(RemoteEvent {
                    name: e
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    cat: e
                        .get("cat")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    unix_ns: anchor_ns.saturating_add(ts_ns),
                    dur_ns: e.get("dur_ns").and_then(Value::as_u64).unwrap_or(0),
                    tid: e.get("tid").and_then(Value::as_u64).unwrap_or(0),
                    depth: e.get("depth").and_then(Value::as_u64).unwrap_or(0),
                    round: e.get("round").and_then(Value::as_u64),
                });
                PROBE_EVENTS.add(1);
            }
        }
        self.summary.events = self.events.len();
        true
    }

    fn fetch_flight(&mut self, timeout: Duration) -> bool {
        match http_get(self.addr, "/flight", timeout) {
            Ok(body) => {
                self.flight = Some(body);
                true
            }
            Err(_) => false,
        }
    }

    fn fetch_metrics(&mut self, timeout: Duration) -> bool {
        let Ok(body) = http_get(self.addr, "/metrics", timeout) else {
            return false;
        };
        let Ok(doc) = parse(&body) else { return false };
        let Some(hists) = doc.get("histograms") else {
            return false;
        };
        for name in ROUND_HISTOGRAMS {
            if let Some(h) = hists.get(name) {
                let field = |k: &str| h.get(k).and_then(Value::as_u64).unwrap_or(0);
                self.summary.round_metrics.insert(
                    name.to_string(),
                    HistSummary {
                        count: field("count"),
                        sum: field("sum"),
                        p50: field("p50"),
                        p90: field("p90"),
                        p99: field("p99"),
                        max: field("max"),
                    },
                );
            }
        }
        true
    }
}

/// A count-weighted cluster-level aggregate of per-node histogram
/// readouts (`count`/`sum` add; percentiles are count-weighted means,
/// `max` is the true max).
pub fn aggregate_hist(per_node: &[HistSummary]) -> HistSummary {
    let total: u64 = per_node.iter().map(|h| h.count).sum();
    if total == 0 {
        return HistSummary::default();
    }
    let weighted = |pick: fn(&HistSummary) -> u64| -> u64 {
        let acc: u128 = per_node
            .iter()
            .map(|h| u128::from(pick(h)) * u128::from(h.count))
            .sum();
        (acc / u128::from(total)) as u64
    };
    HistSummary {
        count: total,
        sum: per_node.iter().map(|h| h.sum).sum(),
        p50: weighted(|h| h.p50),
        p90: weighted(|h| h.p90),
        p99: weighted(|h| h.p99),
        max: per_node.iter().map(|h| h.max).max().unwrap_or(0),
    }
}

fn push_us(out: &mut String, ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Merges every probe's corrected events into one `chrome://tracing`
/// document: one process lane (`pid` = validator id + 1) per node, with
/// `process_name` metadata, timestamps relative to the earliest event
/// across the cluster, and a top-level `metadata` object recording the
/// shared round-0 epoch and each node's anchor, skew bound, and poll
/// gaps.
pub fn merge_cluster_trace(probes: &[NodeProbe], epoch_unix_ms: u64) -> String {
    use std::fmt::Write as _;
    let base_ns = probes
        .iter()
        .flat_map(|p| p.events.iter().map(|e| e.unix_ns))
        .min()
        .unwrap_or(epoch_unix_ms.saturating_mul(1_000_000));
    let mut merged: Vec<(usize, &RemoteEvent)> = probes
        .iter()
        .flat_map(|p| p.events.iter().map(move |e| (p.node, e)))
        .collect();
    merged.sort_by_key(|&(node, e)| (e.unix_ns, std::cmp::Reverse(e.dur_ns), node, e.tid));

    let mut out = String::with_capacity(256 + merged.len() * 160);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    let mut sep = |out: &mut String| {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
    };
    for p in probes {
        sep(&mut out);
        let _ = write!(
            out,
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
             \"args\": {{\"name\": \"validator {}\"}}}}",
            p.node + 1,
            p.node
        );
    }
    for (node, e) in &merged {
        sep(&mut out);
        out.push_str("  {\"name\": \"");
        escape_into(&mut out, &e.name);
        out.push_str("\", \"cat\": \"");
        escape_into(&mut out, &e.cat);
        out.push_str("\", \"ph\": \"X\", \"ts\": ");
        push_us(&mut out, e.unix_ns.saturating_sub(base_ns));
        out.push_str(", \"dur\": ");
        push_us(&mut out, e.dur_ns);
        let _ = write!(
            out,
            ", \"pid\": {}, \"tid\": {}, \"args\": {{",
            node + 1,
            e.tid
        );
        let _ = write!(out, "\"depth\": {}", e.depth);
        if let Some(round) = e.round {
            let _ = write!(out, ", \"round\": {round}");
        }
        out.push_str("}}");
    }
    if !first {
        out.push('\n');
    }
    out.push_str("], \"metadata\": {");
    let _ = write!(
        out,
        "\"epoch_unix_ms\": {epoch_unix_ms}, \"base_unix_ns\": {base_ns}, \"nodes\": ["
    );
    for (i, p) in probes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"node\": {}, \"events\": {}, \"polls_ok\": {}, \"gaps\": {}, \
             \"lost\": {}, \"dropped\": {}, ",
            p.node,
            p.events.len(),
            p.summary.polls_ok,
            p.summary.gaps,
            p.summary.lost,
            p.summary.dropped
        );
        match p.summary.anchor_unix_ms {
            Some(a) => {
                let _ = write!(out, "\"anchor_unix_ms\": {a}, ");
            }
            None => out.push_str("\"anchor_unix_ms\": null, "),
        }
        match p.summary.skew_bound_ms {
            Some(s) => {
                let _ = write!(out, "\"skew_bound_ms\": {s}}}");
            }
            None => out.push_str("\"skew_bound_ms\": null}"),
        }
    }
    out.push_str("]}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with(
        node: usize,
        anchor_ms: u64,
        skew: Option<i64>,
        events: Vec<RemoteEvent>,
    ) -> NodeProbe {
        let mut p = NodeProbe::new(
            node,
            "127.0.0.1:1".parse().expect("addr"),
            Duration::from_millis(100),
        );
        p.summary.anchor_unix_ms = Some(anchor_ms);
        p.summary.skew_bound_ms = skew;
        p.summary.events = events.len();
        p.events = events;
        p
    }

    fn ev(name: &str, unix_ns: u64, round: Option<u64>) -> RemoteEvent {
        RemoteEvent {
            name: name.to_string(),
            cat: "node".to_string(),
            unix_ns,
            dur_ns: 500,
            tid: 1,
            depth: 1,
            round,
        }
    }

    #[test]
    fn merged_trace_gives_each_validator_its_own_lane() {
        let probes = vec![
            probe_with(0, 1_000, None, vec![ev("round", 1_000_000_000, Some(3))]),
            probe_with(1, 1_000, Some(2), vec![ev("round", 1_000_500_000, Some(3))]),
        ];
        let json = merge_cluster_trace(&probes, 1_000);
        assert!(json.contains("\"name\": \"validator 0\""));
        assert!(json.contains("\"name\": \"validator 1\""));
        assert!(json.contains("\"pid\": 1"));
        assert!(json.contains("\"pid\": 2"));
        assert!(json.contains("\"round\": 3"));
        // Timestamps are relative to the earliest event: node 0 at 0 us,
        // node 1 half a millisecond later.
        assert!(json.contains("\"ts\": 0.000"));
        assert!(json.contains("\"ts\": 500.000"));
        // The merged document parses as JSON.
        let doc = parse(&json).expect("valid json");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(<[_]>::len),
            Some(4),
            "2 metadata + 2 span events"
        );
        let meta = doc.get("metadata").expect("metadata");
        assert_eq!(
            meta.get("epoch_unix_ms").and_then(Value::as_u64),
            Some(1_000)
        );
        assert_eq!(
            meta.get("nodes").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn empty_probe_set_still_emits_a_loadable_document() {
        let json = merge_cluster_trace(&[], 42);
        let doc = parse(&json).expect("valid json");
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn aggregate_hist_weights_by_count() {
        let a = HistSummary {
            count: 3,
            sum: 30,
            p50: 10,
            p90: 10,
            p99: 10,
            max: 10,
        };
        let b = HistSummary {
            count: 1,
            sum: 50,
            p50: 50,
            p90: 50,
            p99: 50,
            max: 50,
        };
        let agg = aggregate_hist(&[a, b]);
        assert_eq!(agg.count, 4);
        assert_eq!(agg.sum, 80);
        assert_eq!(agg.p50, 20, "(10*3 + 50*1) / 4");
        assert_eq!(agg.max, 50);
        assert_eq!(aggregate_hist(&[]), HistSummary::default());
    }

    #[test]
    fn unreachable_endpoint_is_a_gap_not_a_stall() {
        // A port nobody listens on: the poll must come back quickly with
        // a recorded gap, and the cadence must back off.
        let addr: SocketAddr = {
            let hold = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            hold.local_addr().expect("addr")
        }; // listener dropped: connections now refused
        let mut probe = NodeProbe::new(0, addr, Duration::from_millis(50));
        let started = Instant::now();
        assert!(probe.poll_due(Instant::now(), Duration::from_millis(200)));
        assert!(
            started.elapsed() < Duration::from_millis(1_000),
            "refused connect must fail fast"
        );
        assert_eq!(probe.summary.gaps, 1);
        assert_eq!(probe.summary.polls_ok, 0);
        // Immediately after, the probe is not due again (backoff).
        assert!(!probe.poll_due(Instant::now(), Duration::from_millis(200)));
    }
}
