//! The live validator process.
//!
//! Spawned by the cluster harness (`experiments node`) or by hand:
//!
//! ```text
//! ripple-node --id 0 --listen 127.0.0.1:9100 \
//!     --peers 1:127.0.0.1:9101,2:127.0.0.1:9102 \
//!     --validators 3 --rounds 12 --round-ms 500 \
//!     --epoch-ms 1754700000000 --seed 7 \
//!     --admin 127.0.0.1:9200 --flight FLIGHT_0.json
//! ```
//!
//! All validators share `--epoch-ms` (UNIX milliseconds at which round 0
//! opens); each derives the current round from the wall clock, so a
//! `kill -9`ed and restarted process rejoins mid-stream with no
//! coordination. Exit status 0 once `--rounds` rounds are finalized or a
//! control `Shutdown` frame arrives; 2 on bad usage.
//!
//! `--admin ADDR` switches the telemetry plane on: metrics recording, the
//! crash flight recorder, round tracing, and an admin HTTP endpoint
//! (`/health`, `/metrics`, `/timeseries`, `/trace`, `/flight`) served
//! from the node's own poll loop. On panic or clean exit the flight ring
//! is dumped to `--flight PATH` (default `FLIGHT_<id>.json`) — the
//! postmortem record of the node's final rounds. Without `--admin` the
//! node runs uninstrumented (the baseline for overhead comparisons).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;

use ripple_node::node::{unix_ms, Node, NodeConfig};
use ripple_node::peer::BackoffPolicy;
use ripple_obs::{flight, metrics, trace};

struct Args {
    id: u32,
    listen: SocketAddr,
    peers: Vec<(u32, SocketAddr)>,
    feed: Option<SocketAddr>,
    validators: usize,
    rounds: u64,
    round_ms: u64,
    epoch_ms: u64,
    seed: u64,
    admin: Option<SocketAddr>,
    flight: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ripple-node --id N --listen ADDR [--peers ID:ADDR,...] \
         [--feed ADDR] --validators N [--rounds N] [--round-ms MS] \
         [--epoch-ms UNIX_MS] [--seed N] [--admin ADDR] [--flight PATH]"
    );
    std::process::exit(2);
}

fn parse_peers(s: &str) -> Vec<(u32, SocketAddr)> {
    if s.is_empty() {
        return Vec::new();
    }
    s.split(',')
        .map(|entry| {
            let (id, addr) = entry.split_once(':').unwrap_or_else(|| usage());
            let id: u32 = id.parse().unwrap_or_else(|_| usage());
            let addr: SocketAddr = addr.parse().unwrap_or_else(|_| usage());
            (id, addr)
        })
        .collect()
}

fn parse_args() -> Args {
    let mut args = Args {
        id: 0,
        listen: "127.0.0.1:0".parse().expect("literal addr"),
        peers: Vec::new(),
        feed: None,
        validators: 0,
        rounds: 12,
        round_ms: 500,
        epoch_ms: 0,
        seed: 7,
        admin: None,
        flight: None,
    };
    let mut raw = std::env::args().skip(1);
    let mut saw_validators = false;
    while let Some(flag) = raw.next() {
        let mut value = || raw.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => args.id = value().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = value().parse().unwrap_or_else(|_| usage()),
            "--peers" => args.peers = parse_peers(&value()),
            "--feed" => args.feed = Some(value().parse().unwrap_or_else(|_| usage())),
            "--validators" => {
                args.validators = value().parse().unwrap_or_else(|_| usage());
                saw_validators = true;
            }
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--round-ms" => args.round_ms = value().parse().unwrap_or_else(|_| usage()),
            "--epoch-ms" => args.epoch_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--admin" => args.admin = Some(value().parse().unwrap_or_else(|_| usage())),
            "--flight" => args.flight = Some(PathBuf::from(value())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !saw_validators {
        args.validators = args.peers.len() + 1;
    }
    if args.validators == 0 || args.round_ms == 0 || args.rounds == 0 {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let epoch_ms = if args.epoch_ms == 0 {
        // Standalone runs: open round 0 shortly after startup.
        unix_ms() + 250
    } else {
        args.epoch_ms
    };
    let id = args.id;
    let flight_path = args
        .flight
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("FLIGHT_{id}.json")));
    if args.admin.is_some() {
        metrics::set_enabled(true);
        flight::arm(0);
        trace::enable(0);
        // The flight ring must survive the panic itself: the hook snapshots
        // it after unwinding bookkeeping is already torn.
        let panic_path = flight_path.clone();
        let node_name = id.to_string();
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = flight::dump(&panic_path, &node_name, "panic");
            default_hook(info);
        }));
    }
    let cfg = NodeConfig {
        id,
        listen: args.listen,
        peers: args.peers,
        feed: args.feed,
        validators: args.validators,
        rounds: args.rounds,
        round_ms: args.round_ms,
        epoch_ms,
        seed: args.seed,
        backoff: BackoffPolicy::default(),
        admin: args.admin,
    };
    let instrumented = cfg.admin.is_some();
    let node = match Node::bind(cfg) {
        Ok(node) => node,
        Err(err) => {
            eprintln!("ripple-node {id}: bind failed: {err}");
            return ExitCode::from(1);
        }
    };
    if let Some(admin) = node.admin_addr() {
        eprintln!("ripple-node {id}: admin endpoint on {admin}");
    }
    let outcome = node.run();
    if instrumented {
        let reason = if outcome.is_ok() { "shutdown" } else { "fatal" };
        if let Err(err) = flight::dump(&flight_path, &id.to_string(), reason) {
            eprintln!("ripple-node {id}: flight dump failed: {err}");
        }
    }
    match outcome {
        Ok(report) => {
            let committed = report.rounds.iter().filter(|r| r.committed).count();
            let degraded = report.rounds.iter().filter(|r| r.degraded).count();
            println!(
                "ripple-node {id}: {} rounds ({committed} committed, {degraded} degraded), \
                 {} reconnect attempts, {} state resubs",
                report.rounds.len(),
                report.telemetry.reconnect_attempts,
                report.telemetry.state_resubs,
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("ripple-node {id}: fatal: {err}");
            ExitCode::from(1)
        }
    }
}
