//! The live validator process.
//!
//! Spawned by the cluster harness (`experiments node`) or by hand:
//!
//! ```text
//! ripple-node --id 0 --listen 127.0.0.1:9100 \
//!     --peers 1:127.0.0.1:9101,2:127.0.0.1:9102 \
//!     --validators 3 --rounds 12 --round-ms 500 \
//!     --epoch-ms 1754700000000 --seed 7
//! ```
//!
//! All validators share `--epoch-ms` (UNIX milliseconds at which round 0
//! opens); each derives the current round from the wall clock, so a
//! `kill -9`ed and restarted process rejoins mid-stream with no
//! coordination. Exit status 0 once `--rounds` rounds are finalized or a
//! control `Shutdown` frame arrives; 2 on bad usage.

use std::net::SocketAddr;
use std::process::ExitCode;

use ripple_node::node::{unix_ms, Node, NodeConfig};
use ripple_node::peer::BackoffPolicy;

struct Args {
    id: u32,
    listen: SocketAddr,
    peers: Vec<(u32, SocketAddr)>,
    feed: Option<SocketAddr>,
    validators: usize,
    rounds: u64,
    round_ms: u64,
    epoch_ms: u64,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ripple-node --id N --listen ADDR [--peers ID:ADDR,...] \
         [--feed ADDR] --validators N [--rounds N] [--round-ms MS] \
         [--epoch-ms UNIX_MS] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_peers(s: &str) -> Vec<(u32, SocketAddr)> {
    if s.is_empty() {
        return Vec::new();
    }
    s.split(',')
        .map(|entry| {
            let (id, addr) = entry.split_once(':').unwrap_or_else(|| usage());
            let id: u32 = id.parse().unwrap_or_else(|_| usage());
            let addr: SocketAddr = addr.parse().unwrap_or_else(|_| usage());
            (id, addr)
        })
        .collect()
}

fn parse_args() -> Args {
    let mut args = Args {
        id: 0,
        listen: "127.0.0.1:0".parse().expect("literal addr"),
        peers: Vec::new(),
        feed: None,
        validators: 0,
        rounds: 12,
        round_ms: 500,
        epoch_ms: 0,
        seed: 7,
    };
    let mut raw = std::env::args().skip(1);
    let mut saw_validators = false;
    while let Some(flag) = raw.next() {
        let mut value = || raw.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => args.id = value().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = value().parse().unwrap_or_else(|_| usage()),
            "--peers" => args.peers = parse_peers(&value()),
            "--feed" => args.feed = Some(value().parse().unwrap_or_else(|_| usage())),
            "--validators" => {
                args.validators = value().parse().unwrap_or_else(|_| usage());
                saw_validators = true;
            }
            "--rounds" => args.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--round-ms" => args.round_ms = value().parse().unwrap_or_else(|_| usage()),
            "--epoch-ms" => args.epoch_ms = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if !saw_validators {
        args.validators = args.peers.len() + 1;
    }
    if args.validators == 0 || args.round_ms == 0 || args.rounds == 0 {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let epoch_ms = if args.epoch_ms == 0 {
        // Standalone runs: open round 0 shortly after startup.
        unix_ms() + 250
    } else {
        args.epoch_ms
    };
    let cfg = NodeConfig {
        id: args.id,
        listen: args.listen,
        peers: args.peers,
        feed: args.feed,
        validators: args.validators,
        rounds: args.rounds,
        round_ms: args.round_ms,
        epoch_ms,
        seed: args.seed,
        backoff: BackoffPolicy::default(),
    };
    let id = cfg.id;
    let node = match Node::bind(cfg) {
        Ok(node) => node,
        Err(err) => {
            eprintln!("ripple-node {id}: bind failed: {err}");
            return ExitCode::from(1);
        }
    };
    match node.run() {
        Ok(report) => {
            let committed = report.rounds.iter().filter(|r| r.committed).count();
            let degraded = report.rounds.iter().filter(|r| r.degraded).count();
            println!(
                "ripple-node {id}: {} rounds ({committed} committed, {degraded} degraded), \
                 {} reconnect attempts, {} state resubs",
                report.rounds.len(),
                report.telemetry.reconnect_attempts,
                report.telemetry.state_resubs,
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("ripple-node {id}: fatal: {err}");
            ExitCode::from(1)
        }
    }
}
