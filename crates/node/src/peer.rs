//! Peer supervision: the robustness core of the live node.
//!
//! [`Supervisor`] is a pure, time-injected state machine over the node's
//! outbound links — it owns no sockets, so every reconnect path is unit
//! testable without a network. For each peer it tracks one of four
//! states:
//!
//! * **Connected** — the link is up; heartbeats flow on the shared cadence.
//! * **Backoff** — the link is down; the next dial is scheduled with
//!   exponential backoff and seed-deterministic jitter, so a cluster
//!   replayed under the same seeds retries at the same offsets (no
//!   thundering herd, reproducible chaos runs).
//! * **Banned** — a control-plane partition: no dials until unbanned.
//! * **Exhausted** — the bounded reconnect budget ran out; the peer is
//!   given up on until a ban/unban cycle (a heal) resets it.
//!
//! The event loop asks [`Supervisor::due_dials`] which peers to dial this
//! tick and reports the outcome back ([`Supervisor::dial_succeeded`] /
//! [`Supervisor::dial_failed`] / [`Supervisor::connection_lost`]).

use std::time::{Duration, Instant};

use crate::wire::Telemetry;

/// Backoff shape and bounds for one peer's reconnect schedule.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First retry delay.
    pub base: Duration,
    /// Delay ceiling.
    pub cap: Duration,
    /// Consecutive failed dials tolerated before the link is declared
    /// [`LinkState::Exhausted`].
    pub budget: u32,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            budget: 40,
        }
    }
}

/// SplitMix64: a tiny, high-quality mixer for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic backoff schedule for one link.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule; `seed` should mix the node seed and the peer id
    /// so each link jitters independently but reproducibly.
    pub fn new(policy: BackoffPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            seed,
            attempt: 0,
        }
    }

    /// Consecutive failures so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay before the next dial, or `None` once the budget is
    /// spent. Delay grows `base · 2^attempt` up to `cap`, then half the
    /// raw delay is replaced by seed-deterministic jitter.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.budget {
            return None;
        }
        let shift = self.attempt.min(16);
        let raw = self
            .policy
            .base
            .saturating_mul(1u32 << shift)
            .min(self.policy.cap);
        let raw_ms = raw.as_millis() as u64;
        let jitter_span = (raw_ms / 2).max(1);
        let jitter = splitmix64(self.seed ^ u64::from(self.attempt)) % jitter_span;
        self.attempt += 1;
        Some(Duration::from_millis(raw_ms - raw_ms / 2 + jitter))
    }

    /// Resets the schedule after a successful connect (or a heal).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Whether the reconnect budget is now spent.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.policy.budget
    }
}

/// Where one outbound link currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Up.
    Connected,
    /// Down; a dial fires once `retry_at` passes.
    Backoff {
        /// When the next dial is due.
        retry_at: Instant,
    },
    /// A dial is in flight (between `due_dials` and its outcome call).
    Dialing,
    /// Partitioned away by the control plane.
    Banned,
    /// Reconnect budget spent; waiting for an unban to reset.
    Exhausted,
}

/// One supervised outbound link.
#[derive(Debug)]
struct Link {
    id: u32,
    state: LinkState,
    backoff: Backoff,
    ever_connected: bool,
}

/// The supervision state machine over all outbound links.
#[derive(Debug)]
pub struct Supervisor {
    links: Vec<Link>,
    heartbeat_every: Duration,
    last_heartbeat: Option<Instant>,
    /// Aggregated supervision counters (merged into the node's telemetry).
    telemetry: Telemetry,
}

impl Supervisor {
    /// Supervises the given peer ids. Every link starts due for an
    /// immediate first dial.
    pub fn new(
        peer_ids: impl IntoIterator<Item = u32>,
        policy: BackoffPolicy,
        seed: u64,
        heartbeat_every: Duration,
        now: Instant,
    ) -> Supervisor {
        let links = peer_ids
            .into_iter()
            .map(|id| Link {
                id,
                state: LinkState::Backoff { retry_at: now },
                backoff: Backoff::new(policy, splitmix64(seed) ^ u64::from(id)),
                ever_connected: false,
            })
            .collect();
        Supervisor {
            links,
            heartbeat_every,
            last_heartbeat: None,
            telemetry: Telemetry::default(),
        }
    }

    fn link_mut(&mut self, id: u32) -> Option<&mut Link> {
        self.links.iter_mut().find(|l| l.id == id)
    }

    /// Peers whose dial is due at `now`. Each returned id is moved to
    /// [`LinkState::Dialing`] and counted as a reconnect attempt; the
    /// caller must follow up with [`Supervisor::dial_succeeded`] or
    /// [`Supervisor::dial_failed`].
    pub fn due_dials(&mut self, now: Instant) -> Vec<u32> {
        let mut due = Vec::new();
        for link in &mut self.links {
            if let LinkState::Backoff { retry_at } = link.state {
                if retry_at <= now {
                    link.state = LinkState::Dialing;
                    self.telemetry.reconnect_attempts += 1;
                    due.push(link.id);
                }
            }
        }
        due
    }

    /// Marks a dial as successful. Returns `true` if this was a
    /// *re*connect (the peer had been connected before), which is when
    /// the caller should resubscribe state.
    pub fn dial_succeeded(&mut self, id: u32) -> bool {
        self.telemetry.reconnect_successes += 1;
        if let Some(link) = self.link_mut(id) {
            let reconnect = link.ever_connected;
            link.state = LinkState::Connected;
            link.ever_connected = true;
            link.backoff.reset();
            reconnect
        } else {
            false
        }
    }

    /// Marks a dial as failed and schedules the next one.
    pub fn dial_failed(&mut self, id: u32, now: Instant) {
        let mut backoff_ms = 0u64;
        if let Some(link) = self.link_mut(id) {
            link.state = match link.backoff.next_delay() {
                // The budget counts failures tolerated: once this failure
                // spends it, the link parks rather than scheduling a dial
                // that would never be allowed.
                Some(delay) if !link.backoff.exhausted() => {
                    backoff_ms = delay.as_millis() as u64;
                    LinkState::Backoff {
                        retry_at: now + delay,
                    }
                }
                _ => LinkState::Exhausted,
            };
        }
        self.telemetry.backoff_ms_total += backoff_ms;
    }

    /// Reports a connected link as broken (write error, EOF, CRC storm);
    /// the link re-enters backoff.
    pub fn connection_lost(&mut self, id: u32, now: Instant) {
        if let Some(link) = self.link_mut(id) {
            if matches!(link.state, LinkState::Banned) {
                return;
            }
            link.state = LinkState::Backoff { retry_at: now };
        }
        // The dial itself is counted when `due_dials` hands it out.
    }

    /// Control-plane partition: stop dialing `id` until unbanned.
    pub fn ban(&mut self, id: u32) {
        if let Some(link) = self.link_mut(id) {
            link.state = LinkState::Banned;
        }
    }

    /// Heals a ban (and any exhausted budget): the link becomes due for
    /// an immediate dial with a fresh backoff schedule.
    pub fn unban(&mut self, id: u32, now: Instant) {
        if let Some(link) = self.link_mut(id) {
            if matches!(link.state, LinkState::Banned | LinkState::Exhausted) {
                link.backoff.reset();
                link.state = LinkState::Backoff { retry_at: now };
            }
        }
    }

    /// The link's current state, if supervised.
    pub fn state(&self, id: u32) -> Option<LinkState> {
        self.links.iter().find(|l| l.id == id).map(|l| l.state)
    }

    /// Whether the link to `id` is up.
    pub fn is_connected(&self, id: u32) -> bool {
        matches!(self.state(id), Some(LinkState::Connected))
    }

    /// How many supervised links are up.
    pub fn connected_count(&self) -> usize {
        self.links
            .iter()
            .filter(|l| matches!(l.state, LinkState::Connected))
            .count()
    }

    /// True once per heartbeat interval: time to write keepalives on
    /// every connected link.
    pub fn heartbeat_due(&mut self, now: Instant) -> bool {
        match self.last_heartbeat {
            Some(at) if now.duration_since(at) < self.heartbeat_every => false,
            _ => {
                self.last_heartbeat = Some(now);
                true
            }
        }
    }

    /// Supervision counters accumulated so far.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            budget: 5,
        }
    }

    #[test]
    fn backoff_delays_grow_and_are_seed_deterministic() {
        let mut a = Backoff::new(policy(), 1234);
        let mut b = Backoff::new(policy(), 1234);
        let mut c = Backoff::new(policy(), 9999);
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        let dc: Vec<_> = std::iter::from_fn(|| c.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert_ne!(da, dc, "different seed, different jitter");
        assert_eq!(da.len(), 5, "budget bounds the schedule");
        // Exponential shape: a later delay dominates an early one.
        assert!(da[3] > da[0]);
        // Jitter stays within the cap plus half-cap window.
        assert!(da.iter().all(|d| *d <= Duration::from_secs(3)));
    }

    #[test]
    fn budget_exhaustion_parks_the_link() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new([7], policy(), 1, Duration::from_millis(100), t0);
        let mut now = t0;
        for _ in 0..5 {
            let due = sup.due_dials(now);
            assert_eq!(due, vec![7]);
            sup.dial_failed(7, now);
            now += Duration::from_secs(10); // past any backoff
        }
        assert_eq!(sup.state(7), Some(LinkState::Exhausted));
        assert!(sup.due_dials(now).is_empty(), "exhausted links stay quiet");
        assert_eq!(sup.telemetry().reconnect_attempts, 5);
        assert!(sup.telemetry().backoff_ms_total > 0);
        // A heal resets the budget.
        sup.unban(7, now);
        assert_eq!(sup.due_dials(now), vec![7]);
    }

    #[test]
    fn dials_respect_backoff_timing() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new([1], policy(), 42, Duration::from_millis(100), t0);
        assert_eq!(sup.due_dials(t0), vec![1]);
        sup.dial_failed(1, t0);
        // Immediately after the failure nothing is due (base delay ≥ 25ms).
        assert!(sup.due_dials(t0).is_empty());
        assert!(sup.due_dials(t0 + Duration::from_millis(10)).is_empty());
        // Well past the cap the dial is certainly due.
        assert_eq!(sup.due_dials(t0 + Duration::from_secs(5)), vec![1]);
    }

    #[test]
    fn reconnect_is_flagged_only_after_a_previous_connection() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new([2], policy(), 7, Duration::from_millis(100), t0);
        sup.due_dials(t0);
        assert!(!sup.dial_succeeded(2), "first connect is not a reconnect");
        assert!(sup.is_connected(2));
        sup.connection_lost(2, t0);
        assert!(!sup.is_connected(2));
        assert_eq!(sup.due_dials(t0), vec![2], "lost links redial immediately");
        assert!(sup.dial_succeeded(2), "now it is a reconnect");
    }

    #[test]
    fn bans_suppress_dials_until_unban() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new([3, 4], policy(), 7, Duration::from_millis(100), t0);
        sup.ban(3);
        assert_eq!(sup.due_dials(t0), vec![4], "banned peer not dialed");
        sup.dial_succeeded(4);
        // Losing a banned link keeps it banned.
        sup.connection_lost(3, t0);
        assert_eq!(sup.state(3), Some(LinkState::Banned));
        sup.unban(3, t0);
        assert_eq!(sup.due_dials(t0), vec![3]);
        assert_eq!(sup.connected_count(), 1);
    }

    #[test]
    fn heartbeats_fire_on_the_cadence() {
        let t0 = Instant::now();
        let mut sup = Supervisor::new([1], policy(), 7, Duration::from_millis(100), t0);
        assert!(sup.heartbeat_due(t0), "first tick heartbeats");
        assert!(!sup.heartbeat_due(t0 + Duration::from_millis(50)));
        assert!(sup.heartbeat_due(t0 + Duration::from_millis(150)));
    }
}
