//! A live-process cluster harness: spawns real `ripple-node` validators,
//! executes a [`FaultPlan`] as OS actions, and measures recovery on the
//! wall clock.
//!
//! The harness is the wire-side twin of the in-process chaos campaign:
//!
//! * `CrashAt` → `SIGKILL` (via [`std::process::Child::kill`]) mid-round;
//! * `RestartAt` → respawn with identical arguments — the restarted node
//!   recomputes the current round from the shared epoch and resubscribes
//!   state from its peers;
//! * `PartitionAt`/`HealAt` → socket-level bans pushed over per-node
//!   control connections, which drop live links and refuse redials.
//!
//! Every validator streams `RoundReport` and `TelemetryReport` frames to
//! the harness feed socket. Per-round validations are reassembled from
//! the wire and fed to the **same** [`InvariantChecker`] the simulator
//! uses, so "zero forks" means the same thing in both backends, and
//! rounds-to-recover comes out in real milliseconds.
//!
//! When [`ClusterConfig::instrument`] is on (the default), every child
//! also gets `--admin`/`--flight`: the harness round-robins one
//! [`NodeProbe`](crate::cluster_trace::NodeProbe) per validator over the
//! admin HTTP plane — incremental `/trace` drains, `/health` clock
//! anchors, `/flight` crash snapshots, `/metrics` round histograms —
//! with hard per-request deadlines so an unreachable endpoint costs a
//! recorded gap, never a stall. A `kill -9` victim's last `/flight`
//! snapshot is written to `FLIGHT_<id>.json` the moment the kill lands
//! (the process itself can no longer dump), and the merged, clock-aligned
//! `chrome://tracing` document lands in [`ClusterReport::cluster_trace`].

use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ripple_consensus::{support_required, InvariantChecker, RoundOutcome, StallWindow};
use ripple_crypto::Digest256;
use ripple_netsim::live::{lower, LiveAction, LivePlan};
use ripple_netsim::{FaultPlan, SimTime};
use ripple_obs::json::JsonWriter;
use ripple_obs::LazyCounter;

use crate::cluster_trace::{
    aggregate_hist, merge_cluster_trace, HistSummary, NodeProbe, ProbeSummary, ROUND_HISTOGRAMS,
};
use crate::frame::FrameDecoder;
use crate::node::unix_ms;
use crate::poll::{drain_into, try_accept, Drained};
use crate::wire::{LinkKind, Telemetry, WireMsg};

static CLUSTER_KILLS: LazyCounter = LazyCounter::new("harness.actions.kills");
static CLUSTER_RESTARTS: LazyCounter = LazyCounter::new("harness.actions.restarts");
static CLUSTER_PARTITIONS: LazyCounter = LazyCounter::new("harness.actions.partitions");
static CLUSTER_HEALS: LazyCounter = LazyCounter::new("harness.actions.heals");
static CLUSTER_FEED_FRAMES: LazyCounter = LazyCounter::new("harness.feed.frames");
static CLUSTER_BACKOFF_ATTEMPTS: LazyCounter = LazyCounter::new("harness.nodes.reconnect_attempts");
static CLUSTER_BACKOFF_SUCCESSES: LazyCounter =
    LazyCounter::new("harness.nodes.reconnect_successes");
static CLUSTER_STATE_RESUBS: LazyCounter = LazyCounter::new("harness.nodes.state_resubs");
static CLUSTER_DEGRADED: LazyCounter = LazyCounter::new("harness.nodes.degraded_rounds");
static CLUSTER_POLL_GAPS: LazyCounter = LazyCounter::new("harness.admin.poll_gaps");

/// Configuration for one live cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of validator processes.
    pub validators: usize,
    /// Rounds each validator runs before exiting.
    pub rounds: u64,
    /// Wall-clock round length in milliseconds.
    pub round_ms: u64,
    /// Seed shared with the nodes (backoff jitter determinism).
    pub seed: u64,
    /// The fault schedule, authored in simulator time units.
    pub plan: FaultPlan,
    /// The simulator round length the plan was authored against (used to
    /// rescale event times onto `round_ms`).
    pub sim_round_ms: u64,
    /// Explicit path to the `ripple-node` binary; when `None` the harness
    /// tries `$RIPPLE_NODE_BIN`, then siblings of the current executable.
    pub bin: Option<PathBuf>,
    /// Spawn validators with `--admin`/`--flight` and poll their
    /// telemetry planes. Off = the uninstrumented overhead baseline.
    pub instrument: bool,
    /// Directory for `FLIGHT_<id>.json` dumps (`None` = the harness's
    /// working directory, which the children inherit).
    pub flight_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            validators: 5,
            rounds: 12,
            round_ms: 500,
            seed: 7,
            plan: FaultPlan::new(),
            sim_round_ms: 500,
            bin: None,
            instrument: true,
            flight_dir: None,
        }
    }
}

/// What one cluster run produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Validator count.
    pub validators: usize,
    /// Wall-clock round length.
    pub round_ms: u64,
    /// Per-round wire-reassembled outcomes: `round → validator → page`.
    pub rounds: Vec<(u64, HashMap<usize, Digest256>)>,
    /// Rounds in which some page reached quorum on the wire.
    pub committed_rounds: u64,
    /// Stall windows (consecutive uncommitted rounds), from the checker.
    pub stalls: Vec<StallWindow>,
    /// `true` iff no round ever held two pages at quorum.
    pub no_fork: bool,
    /// Description of the fork, if one was (catastrophically) observed.
    pub fork: Option<String>,
    /// Rounds from the first post-settle round to the first commit,
    /// inclusive (`None` if the cluster never recommitted — infinite).
    pub rounds_to_recover: Option<u64>,
    /// Same measure on the wall clock, in milliseconds.
    pub recover_wall_ms: Option<u64>,
    /// Final telemetry per validator id, as reported over the wire.
    pub telemetry: BTreeMap<u32, Telemetry>,
    /// The lowered plan that was executed.
    pub live_plan: LivePlan,
    /// Actions actually executed, as human-readable lines.
    pub actions_log: Vec<String>,
    /// Total wall-clock duration of the run.
    pub wall_ms: u64,
    /// Per-validator admin-plane poll summaries (empty when the run was
    /// uninstrumented).
    pub admin: Vec<ProbeSummary>,
    /// The merged, clock-aligned `chrome://tracing` document, when
    /// instrumented.
    pub cluster_trace: Option<String>,
}

impl ClusterReport {
    /// Aggregated telemetry across every validator.
    pub fn telemetry_total(&self) -> Telemetry {
        let mut total = Telemetry::default();
        for t in self.telemetry.values() {
            total.merge(t);
        }
        total
    }

    /// Serializes the report into the `BENCH_node.json` schema documented
    /// in EXPERIMENTS.md §E16.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("experiment", "node");
        w.field_u64("validators", self.validators as u64);
        w.field_u64("round_ms", self.round_ms);
        w.field_u64("rounds_observed", self.rounds.len() as u64);
        w.field_u64("committed_rounds", self.committed_rounds);
        w.field_bool("no_fork", self.no_fork);
        match self.rounds_to_recover {
            Some(r) => w.field_u64("rounds_to_recover", r),
            None => w.field_null("rounds_to_recover"),
        }
        match self.recover_wall_ms {
            Some(ms) => w.field_u64("recover_wall_ms", ms),
            None => w.field_null("recover_wall_ms"),
        }
        w.field_u64("wall_ms", self.wall_ms);
        w.field_u64("plan_settles_ms", self.live_plan.settles_ms);
        w.key("stalls");
        w.begin_array();
        for stall in &self.stalls {
            w.begin_inline_object();
            w.field_u64("first_round", stall.first_round);
            w.field_u64("rounds", stall.rounds);
            w.end_inline_object();
        }
        w.end_array();
        w.key("actions");
        w.begin_array();
        for line in &self.actions_log {
            w.value_str(line);
        }
        w.end_array();
        w.key("skipped_events");
        w.begin_array();
        for line in &self.live_plan.skipped {
            w.value_str(line);
        }
        w.end_array();
        w.key("telemetry");
        w.begin_object();
        let total = self.telemetry_total();
        w.key("total");
        w.begin_inline_object();
        for (name, v) in Telemetry::FIELD_NAMES.iter().zip(total.fields()) {
            w.field_u64(name, v);
        }
        w.end_inline_object();
        for (&id, t) in &self.telemetry {
            w.key(&format!("node_{id}"));
            w.begin_inline_object();
            for (name, v) in Telemetry::FIELD_NAMES.iter().zip(t.fields()) {
                w.field_u64(name, v);
            }
            w.end_inline_object();
        }
        w.end_object();
        w.key("observability");
        w.begin_object();
        w.field_bool("instrumented", !self.admin.is_empty());
        if !self.admin.is_empty() {
            w.field_u64(
                "trace_events",
                self.admin.iter().map(|p| p.events as u64).sum(),
            );
            w.field_u64("poll_gaps", self.admin.iter().map(|p| p.gaps).sum());
            w.field_u64("trace_lost", self.admin.iter().map(|p| p.lost).sum());
            w.field_u64("trace_dropped", self.admin.iter().map(|p| p.dropped).sum());
            w.key("nodes");
            w.begin_object();
            for (i, p) in self.admin.iter().enumerate() {
                w.key(&format!("node_{i}"));
                w.begin_inline_object();
                w.field_u64("events", p.events as u64);
                w.field_u64("polls_ok", p.polls_ok);
                w.field_u64("gaps", p.gaps);
                match p.skew_bound_ms {
                    Some(ms) => w.field_i64("skew_bound_ms", ms),
                    None => w.field_null("skew_bound_ms"),
                }
                w.end_inline_object();
            }
            w.end_object();
            w.key("round_histograms");
            w.begin_object();
            for name in ROUND_HISTOGRAMS {
                let per_node: Vec<(usize, HistSummary)> = self
                    .admin
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.round_metrics.get(name).map(|h| (i, *h)))
                    .collect();
                w.key(name);
                w.begin_object();
                let write_hist = |w: &mut JsonWriter, key: &str, h: &HistSummary| {
                    w.key(key);
                    w.begin_inline_object();
                    w.field_u64("count", h.count);
                    w.field_u64("sum", h.sum);
                    w.field_u64("p50", h.p50);
                    w.field_u64("p90", h.p90);
                    w.field_u64("p99", h.p99);
                    w.field_u64("max", h.max);
                    w.end_inline_object();
                };
                let cluster = aggregate_hist(&per_node.iter().map(|&(_, h)| h).collect::<Vec<_>>());
                write_hist(&mut w, "cluster", &cluster);
                for (i, h) in &per_node {
                    write_hist(&mut w, &format!("node_{i}"), h);
                }
                w.end_object();
            }
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Writes the merged cluster trace (or an empty-but-loadable document
    /// for uninstrumented runs) to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn write_cluster_trace(&self, path: &str) -> std::io::Result<()> {
        let fallback = "{\"traceEvents\": []}\n";
        std::fs::write(path, self.cluster_trace.as_deref().unwrap_or(fallback))
    }

    /// Writes `to_json` to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn write_bench_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Where the `ripple-node` binary lives.
fn find_binary(cfg: &ClusterConfig) -> Option<PathBuf> {
    if let Some(bin) = &cfg.bin {
        return Some(bin.clone());
    }
    if let Ok(env) = std::env::var("RIPPLE_NODE_BIN") {
        if !env.is_empty() {
            return Some(PathBuf::from(env));
        }
    }
    // Tests and examples run from target/<profile>/deps or
    // target/<profile>/examples; the node binary sits in target/<profile>.
    let exe = std::env::current_exe().ok()?;
    let name = format!("ripple-node{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..3 {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = match dir.parent() {
            Some(p) => p.to_path_buf(),
            None => break,
        };
    }
    None
}

/// Reserves `n` distinct loopback ports by binding and dropping.
fn reserve_ports(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    // Hold all listeners open until every port is chosen so the OS cannot
    // hand the same ephemeral port out twice.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

struct NodeProc {
    child: Option<Child>,
    args: Vec<String>,
}

/// One live feed connection being reassembled.
struct FeedConn {
    stream: TcpStream,
    decoder: FrameDecoder,
}

/// Spawns one validator process.
fn spawn_node(bin: &PathBuf, args: &[String]) -> std::io::Result<Child> {
    Command::new(bin)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
}

/// Opens a short-lived control connection to `addr` and sends `msg`.
fn send_control(addr: SocketAddr, msg: &WireMsg) -> std::io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(200))?;
    stream.set_nodelay(true)?;
    let hello = WireMsg::Hello {
        from: u32::MAX - 1,
        kind: LinkKind::Control,
    };
    stream.write_all(&hello.encode())?;
    stream.write_all(&msg.encode())?;
    stream.flush()?;
    Ok(())
}

/// Runs a full cluster: spawn, inject faults, collect the wire, check
/// invariants, measure recovery.
///
/// # Errors
///
/// Setup failures only (binary not found, ports, spawns). Faults injected
/// *during* the run are the point, not errors.
///
/// # Panics
///
/// Does not panic on node failures; a node that dies simply stops
/// reporting (that is the experiment).
pub fn run_cluster(cfg: &ClusterConfig) -> std::io::Result<ClusterReport> {
    let bin = find_binary(cfg).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "ripple-node binary not found: build it (cargo build -p ripple-node) \
             or set RIPPLE_NODE_BIN",
        )
    })?;
    let n = cfg.validators;
    let addrs = reserve_ports(n)?;
    let feed = TcpListener::bind("127.0.0.1:0")?;
    feed.set_nonblocking(true)?;
    let feed_addr = feed.local_addr()?;

    let live = lower(
        &cfg.plan,
        SimTime::from_millis(cfg.sim_round_ms),
        cfg.round_ms,
    );
    for note in &live.skipped {
        eprintln!("harness: skipping unloweable event: {note}");
    }

    // Give every process time to bind and dial before round 0 opens.
    let epoch_ms = unix_ms() + 600;
    let peer_list = |me: usize| -> String {
        addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != me)
            .map(|(j, a)| format!("{j}:{a}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let admin_addrs: Vec<SocketAddr> = if cfg.instrument {
        reserve_ports(n)?
    } else {
        Vec::new()
    };
    let mut procs: Vec<NodeProc> = Vec::with_capacity(n);
    for (i, addr) in addrs.iter().enumerate() {
        let mut args = vec![
            "--id".into(),
            i.to_string(),
            "--listen".into(),
            addr.to_string(),
            "--peers".into(),
            peer_list(i),
            "--feed".into(),
            feed_addr.to_string(),
            "--validators".into(),
            n.to_string(),
            "--rounds".into(),
            cfg.rounds.to_string(),
            "--round-ms".into(),
            cfg.round_ms.to_string(),
            "--epoch-ms".into(),
            epoch_ms.to_string(),
            "--seed".into(),
            cfg.seed.to_string(),
        ];
        if let Some(admin) = admin_addrs.get(i) {
            args.push("--admin".into());
            args.push(admin.to_string());
            args.push("--flight".into());
            args.push(flight_path(cfg, i));
        }
        let child = spawn_node(&bin, &args)?;
        procs.push(NodeProc {
            child: Some(child),
            args,
        });
    }
    // One admin-plane probe per validator, polled round-robin from the
    // main loop: at most one probe per loop pass, each request under a
    // hard deadline, so telemetry collection can never delay a fault
    // action by more than one bounded poll cycle.
    let poll_interval = Duration::from_millis((cfg.round_ms / 2).max(100));
    let poll_timeout = Duration::from_millis(250);
    let mut probes: Vec<NodeProbe> = admin_addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| NodeProbe::new(i, a, poll_interval))
        .collect();
    let mut probe_rr = 0usize;

    let started = Instant::now();
    let mut actions: Vec<(u64, LiveAction)> = live.actions.clone();
    actions.reverse(); // pop from the back in time order
    let mut actions_log: Vec<String> = Vec::new();
    let mut feeds: Vec<FeedConn> = Vec::new();
    let mut validations: BTreeMap<u64, HashMap<usize, Digest256>> = BTreeMap::new();
    let mut committed_on_wire: BTreeMap<u64, bool> = BTreeMap::new();
    let mut telemetry: BTreeMap<u32, Telemetry> = BTreeMap::new();

    let deadline_ms = cfg.rounds * cfg.round_ms + 4 * cfg.round_ms.max(500);
    loop {
        let now_rel = unix_ms().saturating_sub(epoch_ms);
        if unix_ms() >= epoch_ms && now_rel >= deadline_ms {
            break;
        }
        // Execute due fault actions (times are relative to the epoch).
        while let Some(&(at, _)) = actions.last() {
            if unix_ms() < epoch_ms || now_rel < at {
                break;
            }
            let (at, action) = actions.pop().expect("peeked");
            execute_action(&bin, &action, at, &mut procs, &addrs, &mut actions_log);
            if let LiveAction::Kill(node) = &action {
                snapshot_flight(cfg, &probes, node.0, at, &mut actions_log);
            }
        }
        // Poll at most one due admin probe per pass (round-robin), so a
        // slow or unreachable endpoint delays nothing but itself.
        if !probes.is_empty() {
            let now = Instant::now();
            for k in 0..probes.len() {
                let i = (probe_rr + k) % probes.len();
                if probes[i].poll_due(now, poll_timeout) {
                    probe_rr = (i + 1) % probes.len();
                    break;
                }
            }
        }
        // Accept and drain feed connections.
        while let Some(stream) = try_accept(&feed) {
            feeds.push(FeedConn {
                stream,
                decoder: FrameDecoder::new(),
            });
        }
        let mut i = 0;
        while i < feeds.len() {
            let conn = &mut feeds[i];
            let closed = matches!(
                drain_into(&mut conn.stream, &mut conn.decoder),
                Drained::Closed
            );
            while let Some(frame) = conn.decoder.next_frame() {
                CLUSTER_FEED_FRAMES.add(1);
                let Ok(msg) = WireMsg::decode(frame.tag, &frame.payload) else {
                    continue;
                };
                match msg {
                    WireMsg::RoundReport {
                        from,
                        round,
                        page,
                        committed,
                        ..
                    } => {
                        validations
                            .entry(round)
                            .or_default()
                            .insert(from as usize, page);
                        let c = committed_on_wire.entry(round).or_insert(false);
                        *c |= committed;
                    }
                    WireMsg::TelemetryReport { from, counters } => {
                        telemetry.insert(from, counters);
                    }
                    _ => {}
                }
            }
            if closed {
                feeds.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Stop early once every node has exited on its own.
        if procs.iter_mut().all(|p| match &mut p.child {
            Some(c) => matches!(c.try_wait(), Ok(Some(_))),
            None => true,
        }) && feeds.is_empty()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Final telemetry drain while survivors are still serving: one
    // immediate bounded poll cycle per probe (nodes that already exited
    // just record one more gap).
    for probe in &mut probes {
        let _ = probe.poll_now(poll_timeout);
    }

    // Orderly shutdown: ask politely, then make sure.
    for addr in &addrs {
        let _ = send_control(*addr, &WireMsg::Shutdown);
    }
    let patience = Instant::now();
    while patience.elapsed() < Duration::from_millis(1_500) {
        // Keep draining the feed so final telemetry frames land.
        while let Some(stream) = try_accept(&feed) {
            feeds.push(FeedConn {
                stream,
                decoder: FrameDecoder::new(),
            });
        }
        let mut any_open = false;
        for conn in &mut feeds {
            if !matches!(
                drain_into(&mut conn.stream, &mut conn.decoder),
                Drained::Closed
            ) {
                any_open = true;
            }
            while let Some(frame) = conn.decoder.next_frame() {
                if let Ok(WireMsg::TelemetryReport { from, counters }) =
                    WireMsg::decode(frame.tag, &frame.payload)
                {
                    telemetry.insert(from, counters);
                }
            }
        }
        let all_dead = procs.iter_mut().all(|p| match &mut p.child {
            Some(c) => matches!(c.try_wait(), Ok(Some(_))),
            None => true,
        });
        if all_dead && !any_open {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for p in &mut procs {
        if let Some(child) = &mut p.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    let wall_ms = started.elapsed().as_millis() as u64;

    // Feed the wire-reassembled rounds to the simulator's checker, in
    // order from round 0 (the checker auto-increments its round index, so
    // rounds nobody reported still count — as stalls).
    let quorum = support_required(n, 0.8);
    let mut checker = InvariantChecker::new(vec![true; n], quorum);
    let last_round = validations.keys().next_back().copied().unwrap_or(0);
    let mut fork: Option<String> = None;
    let mut committed_rounds = 0u64;
    let mut first_commit_after_settle: Option<(u64, u64)> = None; // (round, wall_ms)
    let settle_round = live.settles_ms / cfg.round_ms;
    let mut rounds_out: Vec<(u64, HashMap<usize, Digest256>)> = Vec::new();
    for round in 0..=last_round {
        let vals = validations.remove(&round).unwrap_or_default();
        let mut tally: HashMap<Digest256, usize> = HashMap::new();
        for page in vals.values() {
            *tally.entry(*page).or_insert(0) += 1;
        }
        let winner = tally.into_iter().max_by_key(|&(_, c)| c);
        // Liveness comes from the nodes' own word, not an omniscient
        // tally: during a partition every node may seal the same
        // (deterministically derived) page, but no node can *collect* a
        // quorum of validations, so no node commits — that is the
        // paper's quorum stall, and the feed must not paper over it.
        let committed = committed_on_wire.get(&round).copied().unwrap_or(false)
            && winner.map(|(_, count)| count >= quorum).unwrap_or(false);
        if committed {
            committed_rounds += 1;
            if round >= settle_round && first_commit_after_settle.is_none() {
                first_commit_after_settle = Some((round, (round + 1) * cfg.round_ms));
            }
        }
        let outcome = RoundOutcome {
            committed: if committed {
                winner.map(|(page, _)| (page, std::collections::BTreeSet::new()))
            } else {
                None
            },
            validations: vals.clone(),
            agreement: winner
                .map(|(_, count)| count as f64 / n as f64)
                .unwrap_or(0.0),
        };
        if let Err(violation) = checker.observe(&outcome) {
            fork.get_or_insert_with(|| violation.to_string());
        }
        rounds_out.push((round, vals));
    }
    let stalls = checker.into_stalls();
    let (rounds_to_recover, recover_wall_ms) = match first_commit_after_settle {
        Some((round, commit_ms)) => (
            Some(round - settle_round + 1),
            Some(commit_ms.saturating_sub(live.settles_ms)),
        ),
        None => (None, None),
    };

    // Mirror node-side robustness counters into the harness's obs
    // registry so a single snapshot shows the whole story.
    let total = {
        let mut sum = Telemetry::default();
        for t in telemetry.values() {
            sum.merge(t);
        }
        sum
    };
    CLUSTER_BACKOFF_ATTEMPTS.add(total.reconnect_attempts);
    CLUSTER_BACKOFF_SUCCESSES.add(total.reconnect_successes);
    CLUSTER_STATE_RESUBS.add(total.state_resubs);
    CLUSTER_DEGRADED.add(total.degraded_rounds);
    CLUSTER_POLL_GAPS.add(probes.iter().map(|p| p.summary.gaps).sum());

    let cluster_trace = if cfg.instrument {
        Some(merge_cluster_trace(&probes, epoch_ms))
    } else {
        None
    };
    let admin: Vec<ProbeSummary> = probes.into_iter().map(|p| p.summary).collect();

    Ok(ClusterReport {
        validators: n,
        round_ms: cfg.round_ms,
        rounds: rounds_out,
        committed_rounds,
        stalls,
        no_fork: fork.is_none(),
        fork,
        rounds_to_recover,
        recover_wall_ms,
        telemetry,
        live_plan: live,
        actions_log,
        wall_ms,
        admin,
        cluster_trace,
    })
}

/// Where node `i`'s flight dump lives (harness and child agree on this).
fn flight_path(cfg: &ClusterConfig, i: usize) -> String {
    let name = format!("FLIGHT_{i}.json");
    match &cfg.flight_dir {
        Some(dir) => dir.join(name).to_string_lossy().into_owned(),
        None => name,
    }
}

/// Persists the last `/flight` snapshot of a just-killed node: SIGKILL
/// means the process itself will never dump its ring, so the harness's
/// most recent poll is the crash record. A later restart overwrites the
/// file with the node's own (post-restart) shutdown dump, which again
/// covers that incarnation's final rounds.
fn snapshot_flight(
    cfg: &ClusterConfig,
    probes: &[NodeProbe],
    node: usize,
    at_ms: u64,
    log: &mut Vec<String>,
) {
    let Some(probe) = probes.iter().find(|p| p.node == node) else {
        return;
    };
    let Some(body) = &probe.flight else {
        log.push(format!(
            "t+{at_ms}ms no flight snapshot for killed node {node} (never polled)"
        ));
        return;
    };
    let path = flight_path(cfg, node);
    match std::fs::write(&path, body) {
        Ok(()) => log.push(format!(
            "t+{at_ms}ms flight snapshot of node {node} -> {path}"
        )),
        Err(err) => log.push(format!(
            "t+{at_ms}ms flight snapshot of node {node} FAILED: {err}"
        )),
    }
}

/// Executes one lowered action against the running processes.
fn execute_action(
    bin: &PathBuf,
    action: &LiveAction,
    at_ms: u64,
    procs: &mut [NodeProc],
    addrs: &[SocketAddr],
    log: &mut Vec<String>,
) {
    match action {
        LiveAction::Kill(node) => {
            CLUSTER_KILLS.add(1);
            if let Some(p) = procs.get_mut(node.0) {
                if let Some(child) = &mut p.child {
                    // SIGKILL: no grace, no cleanup — the crash we model.
                    let _ = child.kill();
                    let _ = child.wait();
                }
                p.child = None;
                log.push(format!("t+{at_ms}ms kill -9 node {}", node.0));
            }
        }
        LiveAction::Restart(node) => {
            CLUSTER_RESTARTS.add(1);
            if let Some(p) = procs.get_mut(node.0) {
                if p.child.is_none() {
                    match spawn_node(bin, &p.args) {
                        Ok(child) => {
                            p.child = Some(child);
                            log.push(format!("t+{at_ms}ms restart node {}", node.0));
                        }
                        Err(err) => {
                            log.push(format!("t+{at_ms}ms restart node {} FAILED: {err}", node.0));
                        }
                    }
                }
            }
        }
        LiveAction::Partition { left, right } => {
            CLUSTER_PARTITIONS.add(1);
            let left_ids: Vec<u32> = left.iter().map(|n| n.0 as u32).collect();
            let right_ids: Vec<u32> = right.iter().map(|n| n.0 as u32).collect();
            for node in left {
                if let Some(addr) = addrs.get(node.0) {
                    let _ = send_control(
                        *addr,
                        &WireMsg::Ban {
                            peers: right_ids.clone(),
                        },
                    );
                }
            }
            for node in right {
                if let Some(addr) = addrs.get(node.0) {
                    let _ = send_control(
                        *addr,
                        &WireMsg::Ban {
                            peers: left_ids.clone(),
                        },
                    );
                }
            }
            log.push(format!(
                "t+{at_ms}ms partition {:?} | {:?}",
                left_ids, right_ids
            ));
        }
        LiveAction::Heal => {
            CLUSTER_HEALS.add(1);
            let everyone: Vec<u32> = (0..addrs.len() as u32).collect();
            for addr in addrs {
                let _ = send_control(
                    *addr,
                    &WireMsg::Unban {
                        peers: everyone.clone(),
                    },
                );
            }
            log.push(format!("t+{at_ms}ms heal (unban all)"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ports_are_distinct() {
        let ports = reserve_ports(8).expect("reserve");
        let unique: std::collections::HashSet<_> = ports.iter().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn missing_binary_is_a_clean_error() {
        let cfg = ClusterConfig {
            bin: Some(PathBuf::from("/nonexistent/ripple-node-definitely-absent")),
            ..ClusterConfig::default()
        };
        // find_binary returns the explicit path; the spawn then fails with
        // a NotFound that run_cluster surfaces as Err, not a panic.
        assert!(run_cluster(&cfg).is_err());
    }

    #[test]
    fn report_json_has_the_documented_keys() {
        let report = ClusterReport {
            validators: 5,
            round_ms: 500,
            rounds: vec![(0, HashMap::new())],
            committed_rounds: 1,
            stalls: vec![StallWindow {
                first_round: 2,
                rounds: 3,
            }],
            no_fork: true,
            fork: None,
            rounds_to_recover: Some(1),
            recover_wall_ms: Some(500),
            telemetry: BTreeMap::new(),
            live_plan: LivePlan::default(),
            actions_log: vec!["t+0ms nothing".into()],
            wall_ms: 1234,
            admin: vec![ProbeSummary {
                events: 3,
                polls_ok: 4,
                gaps: 1,
                skew_bound_ms: Some(2),
                ..ProbeSummary::default()
            }],
            cluster_trace: Some("{\"traceEvents\": []}\n".into()),
        };
        let json = report.to_json();
        for key in [
            "\"experiment\"",
            "\"validators\"",
            "\"no_fork\"",
            "\"rounds_to_recover\"",
            "\"recover_wall_ms\"",
            "\"stalls\"",
            "\"actions\"",
            "\"telemetry\"",
            "\"observability\"",
            "\"poll_gaps\"",
            "\"round_histograms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn uninstrumented_report_marks_observability_off() {
        let report = ClusterReport {
            validators: 3,
            round_ms: 250,
            rounds: Vec::new(),
            committed_rounds: 0,
            stalls: Vec::new(),
            no_fork: true,
            fork: None,
            rounds_to_recover: None,
            recover_wall_ms: None,
            telemetry: BTreeMap::new(),
            live_plan: LivePlan::default(),
            actions_log: Vec::new(),
            wall_ms: 0,
            admin: Vec::new(),
            cluster_trace: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"instrumented\": false"));
        assert!(!json.contains("\"round_histograms\""));
    }
}
