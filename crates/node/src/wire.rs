//! The validator wire protocol: typed messages over CRC-checked frames.
//!
//! Encoding follows the store codec's conventions — fixed field order,
//! big-endian integers, `u32` length prefixes for variable-length parts —
//! but is hand-rolled here so the transport layer stays dependency-free.
//! Decoding is total: any byte sequence either parses or returns a
//! [`WireError`]; it never panics and never allocates proportionally to a
//! corrupt length field.

use std::collections::BTreeSet;

use ripple_crypto::Digest256;

use crate::frame::encode_frame;

/// Why a peer opened a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Validator-to-validator traffic (proposals, validations).
    Validator,
    /// A harness control link (bans, shutdown).
    Control,
    /// A node-to-harness feed link (round reports, telemetry).
    Feed,
}

/// Cumulative per-node transport and supervision counters, shipped to the
/// harness over the feed link so per-process numbers survive `kill -9`
/// of the process that produced them (the harness keeps the last value).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Outbound dial attempts (first connects and reconnects).
    pub reconnect_attempts: u64,
    /// Dial attempts that produced a connection.
    pub reconnect_successes: u64,
    /// Total backoff delay scheduled, in milliseconds.
    pub backoff_ms_total: u64,
    /// Frames written to any socket.
    pub frames_sent: u64,
    /// Verified frames read from any socket.
    pub frames_received: u64,
    /// CRC-corrupt frames observed.
    pub crc_errors: u64,
    /// Corrupt regions resynced past.
    pub resyncs: u64,
    /// State resubscriptions sent after a reconnect.
    pub state_resubs: u64,
    /// Rounds proposed while below quorum connectivity.
    pub degraded_rounds: u64,
    /// Heartbeats written.
    pub heartbeats_sent: u64,
}

impl Telemetry {
    /// Stable field order shared by [`Telemetry::fields`] and the JSON
    /// reports the harness writes.
    pub const FIELD_NAMES: [&'static str; 10] = [
        "reconnect_attempts",
        "reconnect_successes",
        "backoff_ms_total",
        "frames_sent",
        "frames_received",
        "crc_errors",
        "resyncs",
        "state_resubs",
        "degraded_rounds",
        "heartbeats_sent",
    ];

    /// The counters in [`Telemetry::FIELD_NAMES`] order.
    pub fn fields(&self) -> [u64; 10] {
        [
            self.reconnect_attempts,
            self.reconnect_successes,
            self.backoff_ms_total,
            self.frames_sent,
            self.frames_received,
            self.crc_errors,
            self.resyncs,
            self.state_resubs,
            self.degraded_rounds,
            self.heartbeats_sent,
        ]
    }

    fn from_fields(f: [u64; 10]) -> Telemetry {
        Telemetry {
            reconnect_attempts: f[0],
            reconnect_successes: f[1],
            backoff_ms_total: f[2],
            frames_sent: f[3],
            frames_received: f[4],
            crc_errors: f[5],
            resyncs: f[6],
            state_resubs: f[7],
            degraded_rounds: f[8],
            heartbeats_sent: f[9],
        }
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Telemetry) {
        let mut sum = self.fields();
        for (dst, src) in sum.iter_mut().zip(other.fields()) {
            *dst += src;
        }
        *self = Telemetry::from_fields(sum);
    }
}

/// Every message the live transport carries.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Link introduction: who is connecting and why.
    Hello {
        /// The sender's validator id (or harness id for control/feed).
        from: u32,
        /// The link's purpose.
        kind: LinkKind,
    },
    /// An RPCA position broadcast for one proposal iteration.
    ///
    /// Carries compact trace context (`from`, `round`, `seq`, `sent_ms`)
    /// so the cluster harness can reconstruct cross-node message flow
    /// when merging per-node traces.
    Proposal {
        /// Sending validator (trace-context origin).
        from: u32,
        /// Wall-clock round index.
        round: u64,
        /// Proposal iteration within the round (0-based).
        iteration: u8,
        /// Per-sender consensus-message sequence number (trace context).
        seq: u64,
        /// Sender wall-clock at send, Unix milliseconds (trace context).
        sent_ms: u64,
        /// The proposed transaction set.
        txs: BTreeSet<u64>,
    },
    /// A sealed page announcement after the final iteration.
    ///
    /// Carries the same compact trace context as [`WireMsg::Proposal`].
    Validation {
        /// Sending validator (trace-context origin).
        from: u32,
        /// Wall-clock round index.
        round: u64,
        /// Per-sender consensus-message sequence number (trace context).
        seq: u64,
        /// Sender wall-clock at send, Unix milliseconds (trace context).
        sent_ms: u64,
        /// The sealed page hash.
        page: Digest256,
    },
    /// Keepalive; also the write that detects dead outbound sockets.
    Heartbeat {
        /// Sending node.
        from: u32,
        /// The sender's current round.
        round: u64,
        /// Sender wall-clock at send, Unix milliseconds. Receivers take
        /// `min(local_ms - sent_ms)` over a link's heartbeats as a bound
        /// on clock skew + one-way delay, which the harness reads back
        /// as the residual-skew estimate for trace alignment.
        sent_ms: u64,
    },
    /// Ask a peer for its committed tip (sent after (re)connecting).
    StateRequest {
        /// Requesting node.
        from: u32,
    },
    /// Reply to [`WireMsg::StateRequest`]: the peer's committed tip.
    StateSnapshot {
        /// Responding node.
        from: u32,
        /// The responder's current round.
        round: u64,
        /// Last committed page, if any round has committed yet.
        last_committed: Option<Digest256>,
    },
    /// Control: sever connectivity to the listed peers (socket-level
    /// partition — drop links and refuse new ones).
    Ban {
        /// Peer ids to cut off.
        peers: Vec<u32>,
    },
    /// Control: lift all bans on the listed peers (partition heal).
    Unban {
        /// Peer ids to restore.
        peers: Vec<u32>,
    },
    /// Control: finish the current round report and exit cleanly.
    Shutdown,
    /// Feed: one validator's view of a finished round.
    RoundReport {
        /// Reporting validator.
        from: u32,
        /// The finished round.
        round: u64,
        /// The page this validator sealed.
        page: Digest256,
        /// Whether this validator saw quorum on a single page.
        committed: bool,
        /// Agreement on the winning page, in thousandths.
        agreement_milli: u32,
        /// Whether the round ran below quorum connectivity.
        degraded: bool,
        /// Connected validator peers when the round was sealed.
        connected: u32,
    },
    /// Feed: cumulative transport/supervision counters.
    TelemetryReport {
        /// Reporting node.
        from: u32,
        /// The counters (absolute values, not deltas).
        counters: Telemetry,
    },
}

/// Frame tags, one per message variant.
mod tag {
    pub const HELLO: u8 = 1;
    pub const PROPOSAL: u8 = 2;
    pub const VALIDATION: u8 = 3;
    pub const HEARTBEAT: u8 = 4;
    pub const STATE_REQUEST: u8 = 5;
    pub const STATE_SNAPSHOT: u8 = 6;
    pub const BAN: u8 = 7;
    pub const UNBAN: u8 = 8;
    pub const SHUTDOWN: u8 = 9;
    pub const ROUND_REPORT: u8 = 10;
    pub const TELEMETRY: u8 = 11;
}

/// A malformed or unknown wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: &str) -> Result<T, WireError> {
    Err(WireError(msg.to_string()))
}

// -- cursor helpers ---------------------------------------------------------

fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    match buf.split_first() {
        Some((&b, rest)) => {
            *buf = rest;
            Ok(b)
        }
        None => err("unexpected end of payload"),
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return err("unexpected end of payload");
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_be_bytes([head[0], head[1], head[2], head[3]]))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return err("unexpected end of payload");
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let mut b = [0u8; 8];
    b.copy_from_slice(head);
    Ok(u64::from_be_bytes(b))
}

fn get_digest(buf: &mut &[u8]) -> Result<Digest256, WireError> {
    if buf.len() < 32 {
        return err("unexpected end of payload");
    }
    let (head, rest) = buf.split_at(32);
    *buf = rest;
    let mut b = [0u8; 32];
    b.copy_from_slice(head);
    Ok(Digest256::from_bytes(b))
}

/// Reads a `u32`-prefixed list of `u64`s with an allocation guard: the
/// claimed count must fit in the remaining bytes before anything is
/// reserved.
fn get_u64_list(buf: &mut &[u8]) -> Result<Vec<u64>, WireError> {
    let n = get_u32(buf)? as usize;
    if buf.len() < n * 8 {
        return err("list length exceeds payload");
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u64(buf)?);
    }
    Ok(out)
}

fn get_u32_list(buf: &mut &[u8]) -> Result<Vec<u32>, WireError> {
    let n = get_u32(buf)? as usize;
    if buf.len() < n * 4 {
        return err("list length exceeds payload");
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u32(buf)?);
    }
    Ok(out)
}

fn put_u64_list<'a>(items: impl ExactSizeIterator<Item = &'a u64>, out: &mut Vec<u8>) {
    out.extend_from_slice(&(items.len() as u32).to_be_bytes());
    for v in items {
        out.extend_from_slice(&v.to_be_bytes());
    }
}

impl WireMsg {
    /// The frame tag this message encodes under.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => tag::HELLO,
            WireMsg::Proposal { .. } => tag::PROPOSAL,
            WireMsg::Validation { .. } => tag::VALIDATION,
            WireMsg::Heartbeat { .. } => tag::HEARTBEAT,
            WireMsg::StateRequest { .. } => tag::STATE_REQUEST,
            WireMsg::StateSnapshot { .. } => tag::STATE_SNAPSHOT,
            WireMsg::Ban { .. } => tag::BAN,
            WireMsg::Unban { .. } => tag::UNBAN,
            WireMsg::Shutdown => tag::SHUTDOWN,
            WireMsg::RoundReport { .. } => tag::ROUND_REPORT,
            WireMsg::TelemetryReport { .. } => tag::TELEMETRY,
        }
    }

    /// Appends this message as one complete frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        match self {
            WireMsg::Hello { from, kind } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.push(match kind {
                    LinkKind::Validator => 0,
                    LinkKind::Control => 1,
                    LinkKind::Feed => 2,
                });
            }
            WireMsg::Proposal {
                from,
                round,
                iteration,
                seq,
                sent_ms,
                txs,
            } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
                payload.push(*iteration);
                payload.extend_from_slice(&seq.to_be_bytes());
                payload.extend_from_slice(&sent_ms.to_be_bytes());
                put_u64_list(txs.iter(), &mut payload);
            }
            WireMsg::Validation {
                from,
                round,
                seq,
                sent_ms,
                page,
            } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&seq.to_be_bytes());
                payload.extend_from_slice(&sent_ms.to_be_bytes());
                payload.extend_from_slice(page.as_bytes());
            }
            WireMsg::Heartbeat {
                from,
                round,
                sent_ms,
            } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(&sent_ms.to_be_bytes());
            }
            WireMsg::StateRequest { from } => {
                payload.extend_from_slice(&from.to_be_bytes());
            }
            WireMsg::StateSnapshot {
                from,
                round,
                last_committed,
            } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
                match last_committed {
                    None => payload.push(0),
                    Some(page) => {
                        payload.push(1);
                        payload.extend_from_slice(page.as_bytes());
                    }
                }
            }
            WireMsg::Ban { peers } | WireMsg::Unban { peers } => {
                payload.extend_from_slice(&(peers.len() as u32).to_be_bytes());
                for p in peers {
                    payload.extend_from_slice(&p.to_be_bytes());
                }
            }
            WireMsg::Shutdown => {}
            WireMsg::RoundReport {
                from,
                round,
                page,
                committed,
                agreement_milli,
                degraded,
                connected,
            } => {
                payload.extend_from_slice(&from.to_be_bytes());
                payload.extend_from_slice(&round.to_be_bytes());
                payload.extend_from_slice(page.as_bytes());
                payload.push(u8::from(*committed));
                payload.extend_from_slice(&agreement_milli.to_be_bytes());
                payload.push(u8::from(*degraded));
                payload.extend_from_slice(&connected.to_be_bytes());
            }
            WireMsg::TelemetryReport { from, counters } => {
                payload.extend_from_slice(&from.to_be_bytes());
                for v in counters.fields() {
                    payload.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
        encode_frame(self.tag(), &payload, out);
    }

    /// Encodes this message as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a verified frame's payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown tag, truncated payload, invalid
    /// enum byte, or trailing garbage.
    pub fn decode(frame_tag: u8, mut payload: &[u8]) -> Result<WireMsg, WireError> {
        let buf = &mut payload;
        let msg = match frame_tag {
            tag::HELLO => {
                let from = get_u32(buf)?;
                let kind = match get_u8(buf)? {
                    0 => LinkKind::Validator,
                    1 => LinkKind::Control,
                    2 => LinkKind::Feed,
                    other => return err(&format!("invalid link kind {other}")),
                };
                WireMsg::Hello { from, kind }
            }
            tag::PROPOSAL => WireMsg::Proposal {
                from: get_u32(buf)?,
                round: get_u64(buf)?,
                iteration: get_u8(buf)?,
                seq: get_u64(buf)?,
                sent_ms: get_u64(buf)?,
                txs: get_u64_list(buf)?.into_iter().collect(),
            },
            tag::VALIDATION => WireMsg::Validation {
                from: get_u32(buf)?,
                round: get_u64(buf)?,
                seq: get_u64(buf)?,
                sent_ms: get_u64(buf)?,
                page: get_digest(buf)?,
            },
            tag::HEARTBEAT => WireMsg::Heartbeat {
                from: get_u32(buf)?,
                round: get_u64(buf)?,
                sent_ms: get_u64(buf)?,
            },
            tag::STATE_REQUEST => WireMsg::StateRequest {
                from: get_u32(buf)?,
            },
            tag::STATE_SNAPSHOT => {
                let from = get_u32(buf)?;
                let round = get_u64(buf)?;
                let last_committed = match get_u8(buf)? {
                    0 => None,
                    1 => Some(get_digest(buf)?),
                    other => return err(&format!("invalid option byte {other}")),
                };
                WireMsg::StateSnapshot {
                    from,
                    round,
                    last_committed,
                }
            }
            tag::BAN => WireMsg::Ban {
                peers: get_u32_list(buf)?,
            },
            tag::UNBAN => WireMsg::Unban {
                peers: get_u32_list(buf)?,
            },
            tag::SHUTDOWN => WireMsg::Shutdown,
            tag::ROUND_REPORT => WireMsg::RoundReport {
                from: get_u32(buf)?,
                round: get_u64(buf)?,
                page: get_digest(buf)?,
                committed: match get_u8(buf)? {
                    0 => false,
                    1 => true,
                    other => return err(&format!("invalid bool byte {other}")),
                },
                agreement_milli: get_u32(buf)?,
                degraded: match get_u8(buf)? {
                    0 => false,
                    1 => true,
                    other => return err(&format!("invalid bool byte {other}")),
                },
                connected: get_u32(buf)?,
            },
            tag::TELEMETRY => {
                let from = get_u32(buf)?;
                let mut f = [0u64; 10];
                for slot in &mut f {
                    *slot = get_u64(buf)?;
                }
                WireMsg::TelemetryReport {
                    from,
                    counters: Telemetry::from_fields(f),
                }
            }
            other => return err(&format!("unknown frame tag {other}")),
        };
        if !buf.is_empty() {
            return err("trailing bytes after payload");
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameDecoder, HEADER_LEN, TRAILER_LEN};
    use ripple_crypto::sha512_half;

    fn samples() -> Vec<WireMsg> {
        vec![
            WireMsg::Hello {
                from: 3,
                kind: LinkKind::Feed,
            },
            WireMsg::Proposal {
                from: 1,
                round: 42,
                iteration: 2,
                seq: 17,
                sent_ms: 1_700_000_000_123,
                txs: [7u64, 9, 4200].into_iter().collect(),
            },
            WireMsg::Validation {
                from: 0,
                round: 42,
                seq: 18,
                sent_ms: 1_700_000_000_456,
                page: sha512_half(b"page"),
            },
            WireMsg::Heartbeat {
                from: 4,
                round: 43,
                sent_ms: 1_700_000_000_789,
            },
            WireMsg::StateRequest { from: 2 },
            WireMsg::StateSnapshot {
                from: 2,
                round: 41,
                last_committed: Some(sha512_half(b"tip")),
            },
            WireMsg::StateSnapshot {
                from: 2,
                round: 0,
                last_committed: None,
            },
            WireMsg::Ban { peers: vec![0, 1] },
            WireMsg::Unban {
                peers: vec![0, 1, 2, 3, 4],
            },
            WireMsg::Shutdown,
            WireMsg::RoundReport {
                from: 1,
                round: 9,
                page: sha512_half(b"r9"),
                committed: true,
                agreement_milli: 800,
                degraded: false,
                connected: 4,
            },
            WireMsg::TelemetryReport {
                from: 1,
                counters: Telemetry {
                    reconnect_attempts: 3,
                    reconnect_successes: 2,
                    backoff_ms_total: 450,
                    frames_sent: 100,
                    frames_received: 97,
                    crc_errors: 1,
                    resyncs: 1,
                    state_resubs: 2,
                    degraded_rounds: 1,
                    heartbeats_sent: 20,
                },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_the_framing() {
        let mut stream = Vec::new();
        let msgs = samples();
        for m in &msgs {
            m.encode_into(&mut stream);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame() {
            got.push(WireMsg::decode(f.tag, &f.payload).expect("decode"));
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(WireMsg::decode(200, &[]).is_err());
    }

    #[test]
    fn truncations_never_panic() {
        for msg in samples() {
            let framed = msg.encode();
            let payload = &framed[HEADER_LEN..framed.len() - TRAILER_LEN];
            let tag = framed[0];
            for cut in 0..payload.len() {
                // Every strict prefix must decode to an error (or, for
                // self-delimiting prefixes, a different valid message —
                // never a panic, never an over-allocation).
                let _ = WireMsg::decode(tag, &payload[..cut]);
            }
            assert_eq!(WireMsg::decode(tag, payload).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_list_length_fails_fast() {
        // A Proposal whose tx-count claims more items than the payload
        // carries must error before allocating.
        let msg = WireMsg::Proposal {
            from: 0,
            round: 1,
            iteration: 0,
            seq: 0,
            sent_ms: 0,
            txs: [1u64].into_iter().collect(),
        };
        let framed = msg.encode();
        let mut payload = framed[HEADER_LEN..framed.len() - TRAILER_LEN].to_vec();
        // The count field sits after from(4) + round(8) + iteration(1)
        // + seq(8) + sent_ms(8).
        payload[29] = 0xff;
        payload[30] = 0xff;
        let e = WireMsg::decode(framed[0], &payload).unwrap_err();
        assert!(e.to_string().contains("exceeds payload"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let framed = WireMsg::Shutdown.encode();
        assert_eq!(framed.len(), HEADER_LEN + TRAILER_LEN);
        assert!(WireMsg::decode(framed[0], &[0u8]).is_err());
    }

    #[test]
    fn random_payload_bytes_never_panic() {
        // Cheap deterministic fuzz over all tags.
        let mut x = 0x9e3779b97f4a7c15u64;
        for tag in 0..=20u8 {
            for len in [0usize, 1, 4, 9, 13, 32, 64, 120] {
                let bytes: Vec<u8> = (0..len)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x as u8
                    })
                    .collect();
                let _ = WireMsg::decode(tag, &bytes);
            }
        }
    }
}
