//! A live networked validator: wall-clock RPCA rounds over supervised
//! TCP links.
//!
//! The node runs a single-threaded event loop (see [`crate::poll`]) and
//! drives the same position-refinement kernel as the in-process simulator
//! ([`ripple_consensus::refine_position`]), but over real sockets with
//! real failures. Rounds are anchored to a wall-clock epoch shared by the
//! whole cluster: round `r` spans
//! `[epoch + r·round_ms, epoch + (r+1)·round_ms)`, split into the four
//! proposal iterations plus the validation phase. Because the epoch rides
//! on the command line, a validator that is `kill -9`ed and restarted
//! recomputes the current round from the clock and rejoins mid-stream —
//! no coordination required.
//!
//! Robustness behaviours, per the supervision layer ([`crate::peer`]):
//!
//! * a validator below quorum connectivity keeps proposing, flagging its
//!   rounds *degraded* instead of crashing or stalling;
//! * every (re)connected validator link is immediately asked for the
//!   peer's committed tip ([`WireMsg::StateRequest`]) — state
//!   resubscription instead of a blind restart;
//! * control-plane bans implement socket-level partitions: links are
//!   dropped and refused until the heal.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ripple_consensus::{page_hash, refine_position, support_required, RPCA_THRESHOLDS};
use ripple_crypto::Digest256;
use ripple_obs::http::{admin_response, timeseries_response, PollServer, Request, Response};
use ripple_obs::json::JsonWriter;
use ripple_obs::timeseries::TimeSeries;
use ripple_obs::{flight, trace, LazyCounter, LazyGauge, LazyHistogram, Span};

use crate::frame::{DecoderStats, FrameDecoder};
use crate::peer::{BackoffPolicy, Supervisor};
use crate::poll::{drain_into, probe, try_accept, Drained, Poller, Probe};
use crate::wire::{LinkKind, Telemetry, WireMsg};

static RECONNECT_ATTEMPTS: LazyCounter = LazyCounter::new("node.reconnect.attempts");
static RECONNECT_SUCCESSES: LazyCounter = LazyCounter::new("node.reconnect.successes");
static BACKOFF_MS: LazyCounter = LazyCounter::new("node.backoff.ms_total");
static FRAMES_SENT: LazyCounter = LazyCounter::new("node.frames.sent");
static FRAMES_RECEIVED: LazyCounter = LazyCounter::new("node.frames.received");
static CRC_ERRORS: LazyCounter = LazyCounter::new("node.frames.crc_errors");
static RESYNCS: LazyCounter = LazyCounter::new("node.frames.resyncs");
static STATE_RESUBS: LazyCounter = LazyCounter::new("node.state.resubs");
static ROUNDS_COMMITTED: LazyCounter = LazyCounter::new("node.rounds.committed");
static ROUNDS_DEGRADED: LazyCounter = LazyCounter::new("node.rounds.degraded");
static HEARTBEATS_SENT: LazyCounter = LazyCounter::new("node.heartbeats.sent");

/// Spread between the first and last proposal arrival within one
/// `(round, iteration)`, milliseconds.
static PROPOSAL_DISPERSION_MS: LazyHistogram =
    LazyHistogram::new("node.round.proposal_dispersion_ms");
/// Receive-side validation latency (`local_ms - sent_ms` per validation),
/// milliseconds; includes residual clock skew.
static VALIDATION_LATENCY_MS: LazyHistogram =
    LazyHistogram::new("node.round.validation_latency_ms");
/// Time from the first validation seen for a round until quorum-many were
/// collected, milliseconds.
static QUORUM_COLLECT_MS: LazyHistogram = LazyHistogram::new("node.round.quorum_collect_ms");
/// Tightest `local_ms - sent_ms` observed over heartbeats: an upper bound
/// on clock skew + one-way delay toward this node.
static SKEW_BOUND_MS: LazyGauge = LazyGauge::new("node.clock.skew_bound_ms");

/// The supervisor link id used for the harness feed connection.
pub const FEED_ID: u32 = u32::MAX;

/// Number of wall-clock phases per round: the RPCA proposal iterations
/// plus the validation phase (mirrors `RoundEngine::round_duration`).
pub const PHASES: u64 = RPCA_THRESHOLDS.len() as u64 + 1;

/// Everything a validator needs to join a cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This validator's id (0-based, dense).
    pub id: u32,
    /// Address to listen on for inbound links.
    pub listen: SocketAddr,
    /// The other validators: `(id, address)`.
    pub peers: Vec<(u32, SocketAddr)>,
    /// The harness feed address, if reporting is wanted.
    pub feed: Option<SocketAddr>,
    /// Total validator count (self included).
    pub validators: usize,
    /// Stop after finalizing this many rounds (round indices `0..rounds`).
    pub rounds: u64,
    /// Wall-clock round length in milliseconds (divided into [`PHASES`]).
    pub round_ms: u64,
    /// UNIX-epoch milliseconds at which round 0 begins.
    pub epoch_ms: u64,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
    /// Reconnect backoff shape.
    pub backoff: BackoffPolicy,
    /// Admin HTTP endpoint address (`/health`, `/metrics`, `/timeseries`,
    /// `/trace`, `/flight`), served from the node's own poll loop.
    /// `None` runs the node uninstrumented.
    pub admin: Option<SocketAddr>,
}

impl NodeConfig {
    fn quorum_needed(&self) -> usize {
        support_required(self.validators, 0.8)
    }

    fn phase_ms(&self) -> u64 {
        (self.round_ms / PHASES).max(1)
    }
}

/// One finalized round, as this validator saw it.
#[derive(Debug, Clone)]
pub struct LocalRound {
    /// Round index.
    pub round: u64,
    /// The page this validator sealed.
    pub page: Digest256,
    /// Whether a single page reached quorum in this validator's view.
    pub committed: bool,
    /// Agreement on the winning page, in thousandths of the UNL.
    pub agreement_milli: u32,
    /// Whether the round ran below quorum connectivity.
    pub degraded: bool,
    /// Connected validator links when the round sealed.
    pub connected: u32,
}

/// What a finished (or shut down) node hands back.
#[derive(Debug)]
pub struct NodeReport {
    /// The validator id.
    pub id: u32,
    /// Every round finalized locally.
    pub rounds: Vec<LocalRound>,
    /// Final transport/supervision counters.
    pub telemetry: Telemetry,
}

/// A socket paired with its frame decoder and damage accounting.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    counted: DecoderStats,
    /// Which peer this is, once its Hello arrives (inbound only).
    peer: Option<u32>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            counted: DecoderStats::default(),
            peer: None,
        }
    }

    /// Adds this connection's decoder-stat deltas to the node totals.
    fn harvest(&mut self, telemetry: &mut Telemetry) {
        let s = self.decoder.stats();
        telemetry.frames_received += s.frames - self.counted.frames;
        telemetry.crc_errors += s.crc_errors - self.counted.crc_errors;
        telemetry.resyncs += s.resyncs - self.counted.resyncs;
        self.counted = s;
    }
}

/// Writes one frame, spinning briefly through `WouldBlock` so transient
/// kernel-buffer pressure does not tear a frame mid-write.
fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    let mut off = 0usize;
    let mut spins = 0u32;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock && spins < 50 => {
                spins += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Milliseconds since the UNIX epoch, the clock rounds are anchored to.
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The node's `/timeseries` sources, windowed at one round per window so
/// rates read as per-round figures.
fn build_timeseries(round_ms: u64) -> TimeSeries {
    let mut ts = TimeSeries::new(round_ms.max(1), 240);
    ts.counter("node.frames.sent", FRAMES_SENT.force());
    ts.counter("node.frames.received", FRAMES_RECEIVED.force());
    ts.counter("node.rounds.committed", ROUNDS_COMMITTED.force());
    ts.counter("node.rounds.degraded", ROUNDS_DEGRADED.force());
    ts.gauge("node.clock.skew_bound_ms", SKEW_BOUND_MS.force());
    ts.histogram(
        "node.round.validation_latency_ms",
        VALIDATION_LATENCY_MS.force(),
    );
    ts.histogram("node.round.quorum_collect_ms", QUORUM_COLLECT_MS.force());
    ts
}

/// The node's `/health` body: identity, where it is in the round
/// schedule, and the clock-alignment anchors (`epoch_ms`,
/// `trace_epoch_unix_ms`, `skew_bound_ms`) the cluster harness needs to
/// merge this node's trace into cluster time.
fn health_body(
    cfg: &NodeConfig,
    slot: Option<(u64, u8)>,
    rounds_done: &[LocalRound],
    connected: u32,
    skew_bound_ms: Option<i64>,
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.field_str("status", "ok");
    w.field_u64("node", u64::from(cfg.id));
    w.field_u64("round", slot.map(|(r, _)| r).unwrap_or(0));
    w.field_u64("phase", slot.map(|(_, p)| u64::from(p)).unwrap_or(0));
    w.field_u64("rounds_done", rounds_done.len() as u64);
    w.field_u64(
        "committed",
        rounds_done.iter().filter(|r| r.committed).count() as u64,
    );
    w.field_u64("connected", u64::from(connected));
    w.field_u64("epoch_ms", cfg.epoch_ms);
    w.field_u64("round_ms", cfg.round_ms);
    w.field_u64("trace_epoch_unix_ms", trace::epoch_unix_ms());
    match skew_bound_ms {
        Some(ms) => w.field_i64("skew_bound_ms", ms),
        None => w.field_null("skew_bound_ms"),
    }
    w.end_object();
    w.finish()
}

/// The live validator.
pub struct Node {
    cfg: NodeConfig,
    listener: TcpListener,
    inbound: Vec<Conn>,
    /// Connected outbound links by peer id (validators plus [`FEED_ID`]).
    outbound: HashMap<u32, Conn>,
    supervisor: Supervisor,
    poller: Poller,
    banned: HashSet<u32>,
    /// `(round, iteration) → proposer → position`.
    proposals: HashMap<(u64, u8), HashMap<u32, BTreeSet<u64>>>,
    /// `round → validator → page`.
    validations: HashMap<u64, HashMap<u32, Digest256>>,
    position: BTreeSet<u64>,
    /// `(round, phase)` most recently entered.
    slot: Option<(u64, u8)>,
    last_committed: Option<(u64, Digest256)>,
    rounds_done: Vec<LocalRound>,
    telemetry: Telemetry,
    /// Telemetry already mirrored into the obs registry.
    mirrored: Telemetry,
    shutdown: bool,
    /// Admin HTTP endpoint, when configured.
    admin: Option<PollServer>,
    /// Windowed metrics behind `/timeseries` (admin runs only).
    series: Option<TimeSeries>,
    /// Per-sender consensus-message sequence (trace context).
    msg_seq: u64,
    /// Open round spans, closed (and recorded) at finalize.
    round_spans: HashMap<u64, Span>,
    /// `(round, iteration) → (first, last)` proposal-arrival unix-ms.
    prop_arrivals: HashMap<(u64, u8), (u64, u64)>,
    /// `round →` unix-ms when the first validation was seen.
    val_first_ms: HashMap<u64, u64>,
    /// Rounds whose quorum-collection time was already recorded.
    quorum_recorded: HashSet<u64>,
    /// Tightest heartbeat `local_ms - sent_ms` seen so far.
    skew_bound_ms: Option<i64>,
}

impl Node {
    /// Binds the listen socket and prepares the event loop.
    ///
    /// # Errors
    ///
    /// I/O errors from binding `cfg.listen`.
    pub fn bind(cfg: NodeConfig) -> io::Result<Node> {
        let listener = TcpListener::bind(cfg.listen)?;
        listener.set_nonblocking(true)?;
        let mut ids: Vec<u32> = cfg.peers.iter().map(|&(id, _)| id).collect();
        if cfg.feed.is_some() {
            ids.push(FEED_ID);
        }
        let heartbeat = Duration::from_millis((cfg.round_ms / 2).max(20));
        let supervisor = Supervisor::new(
            ids,
            cfg.backoff,
            cfg.seed ^ u64::from(cfg.id),
            heartbeat,
            Instant::now(),
        );
        let admin = match cfg.admin {
            None => None,
            Some(addr) => Some(PollServer::bind(&addr.to_string())?),
        };
        let series = admin.as_ref().map(|_| build_timeseries(cfg.round_ms));
        Ok(Node {
            cfg,
            listener,
            inbound: Vec::new(),
            outbound: HashMap::new(),
            supervisor,
            poller: Poller::default(),
            banned: HashSet::new(),
            proposals: HashMap::new(),
            validations: HashMap::new(),
            position: BTreeSet::new(),
            slot: None,
            last_committed: None,
            rounds_done: Vec::new(),
            telemetry: Telemetry::default(),
            mirrored: Telemetry::default(),
            shutdown: false,
            admin,
            series,
            msg_seq: 0,
            round_spans: HashMap::new(),
            prop_arrivals: HashMap::new(),
            val_first_ms: HashMap::new(),
            quorum_recorded: HashSet::new(),
            skew_bound_ms: None,
        })
    }

    /// The actual bound listen address (useful with port 0).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound admin endpoint address, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(PollServer::local_addr)
    }

    /// Runs the event loop until `cfg.rounds` rounds are finalized or a
    /// control shutdown arrives. Never panics on transport failures —
    /// connections come and go, the loop endures.
    ///
    /// # Errors
    ///
    /// Only fatal local I/O (the listener dying) surfaces as `Err`.
    pub fn run(mut self) -> io::Result<NodeReport> {
        loop {
            let now_ms = unix_ms();
            if now_ms < self.cfg.epoch_ms {
                let wait = (self.cfg.epoch_ms - now_ms).min(50);
                std::thread::sleep(Duration::from_millis(wait));
                continue;
            }
            self.advance_rounds(now_ms);
            if self.finished() {
                break;
            }

            let mut activity = false;
            activity |= self.accept_new();
            activity |= self.pump_inbound();
            activity |= self.pump_outbound();
            self.dial_due();
            self.heartbeat();
            activity |= self.poll_admin();
            if self.shutdown {
                break;
            }
            if !activity {
                self.poller.idle_wait();
            }
        }
        // Close any still-open round span so its duration is recorded.
        self.round_spans.clear();
        flight::note(
            "node",
            if self.shutdown {
                "shutdown"
            } else {
                "finished"
            },
            self.slot.map(|(r, _)| r),
            &[("rounds_done", self.rounds_done.len() as i64)],
        );
        let counters = self.full_telemetry();
        self.send_feed(&WireMsg::TelemetryReport {
            from: self.cfg.id,
            counters,
        });
        self.mirror_metrics();
        let telemetry = self.telemetry_snapshot();
        Ok(NodeReport {
            id: self.cfg.id,
            rounds: self.rounds_done,
            telemetry,
        })
    }

    /// Serves any pending admin requests from the poll loop. The time
    /// series is ticked here every pass, so window boundaries and gauge
    /// high-water sampling don't depend on anyone polling `/timeseries`.
    fn poll_admin(&mut self) -> bool {
        let Some(mut server) = self.admin.take() else {
            return false;
        };
        let now_ms = unix_ms();
        if let Some(series) = self.series.as_mut() {
            series.tick(now_ms.saturating_sub(self.cfg.epoch_ms));
        }
        let node_name = self.cfg.id.to_string();
        let cfg = &self.cfg;
        let slot = self.slot;
        let rounds_done = &self.rounds_done;
        let connected = self.connected_peers();
        let skew = self.skew_bound_ms;
        let series = &self.series;
        let served = server.poll(&mut |req: &Request| {
            if req.path == "/health" {
                return Response::json(health_body(cfg, slot, rounds_done, connected, skew));
            }
            if req.path == "/timeseries" {
                return match series {
                    Some(series) => timeseries_response(series, &req.query),
                    None => Response::error(404, "timeseries disabled"),
                };
            }
            admin_response(&node_name, req)
                .unwrap_or_else(|| Response::error(404, "no such endpoint"))
        });
        self.admin = Some(server);
        served > 0
    }

    fn finished(&self) -> bool {
        self.rounds_done
            .last()
            .map(|r| r.round + 1 >= self.cfg.rounds)
            .unwrap_or(false)
    }

    fn telemetry_snapshot(&self) -> Telemetry {
        let sup = self.supervisor.telemetry();
        let mut t = self.telemetry;
        t.reconnect_attempts = sup.reconnect_attempts;
        t.reconnect_successes = sup.reconnect_successes;
        t.backoff_ms_total = sup.backoff_ms_total;
        t
    }

    fn full_telemetry(&mut self) -> Telemetry {
        // Fold in decoder stats that have not been harvested yet.
        let mut t = {
            let mut sum = Telemetry::default();
            for conn in &mut self.inbound {
                conn.harvest(&mut sum);
            }
            for conn in self.outbound.values_mut() {
                conn.harvest(&mut sum);
            }
            sum
        };
        self.telemetry.frames_received += t.frames_received;
        self.telemetry.crc_errors += t.crc_errors;
        self.telemetry.resyncs += t.resyncs;
        t = self.telemetry_snapshot();
        t
    }

    /// Mirrors telemetry deltas into the obs metrics registry.
    fn mirror_metrics(&mut self) {
        let t = self.telemetry_snapshot();
        let m = self.mirrored;
        RECONNECT_ATTEMPTS.add(t.reconnect_attempts - m.reconnect_attempts);
        RECONNECT_SUCCESSES.add(t.reconnect_successes - m.reconnect_successes);
        BACKOFF_MS.add(t.backoff_ms_total - m.backoff_ms_total);
        FRAMES_SENT.add(t.frames_sent - m.frames_sent);
        FRAMES_RECEIVED.add(t.frames_received - m.frames_received);
        CRC_ERRORS.add(t.crc_errors - m.crc_errors);
        RESYNCS.add(t.resyncs - m.resyncs);
        STATE_RESUBS.add(t.state_resubs - m.state_resubs);
        HEARTBEATS_SENT.add(t.heartbeats_sent - m.heartbeats_sent);
        self.mirrored = t;
    }

    // -- round machinery ----------------------------------------------------

    fn slot_at(&self, now_ms: u64) -> (u64, u8) {
        let t = now_ms - self.cfg.epoch_ms;
        let round = t / self.cfg.round_ms;
        let phase = ((t % self.cfg.round_ms) / self.cfg.phase_ms()).min(PHASES - 1) as u8;
        (round, phase)
    }

    fn advance_rounds(&mut self, now_ms: u64) {
        let target = self.slot_at(now_ms);
        let mut cur = match self.slot {
            // First tick (fresh start or post-restart): join the current
            // slot without replaying history.
            None => {
                self.slot = Some(target);
                self.enter_slot(target);
                return;
            }
            Some(cur) => cur,
        };
        let mut steps = 0u32;
        while cur < target {
            // Step through every slot so no phase transition is skipped
            // when a tick runs long; if the loop stalled catastrophically
            // (debugger, VM pause), jump instead of replaying hours.
            steps += 1;
            if steps > 4 * PHASES as u32 {
                cur = target;
            } else {
                cur = if u64::from(cur.1) + 1 < PHASES {
                    (cur.0, cur.1 + 1)
                } else {
                    (cur.0 + 1, 0)
                };
            }
            self.slot = Some(cur);
            self.enter_slot(cur);
            if self.finished() {
                return;
            }
        }
    }

    /// The deterministic candidate set for a round: a shared base every
    /// validator derives from the round index, plus one transaction
    /// unique to this validator (which the 50% threshold strips — the
    /// same convergence shape the simulator tests use).
    fn candidate(&self, round: u64) -> BTreeSet<u64> {
        let base = round * 1_000;
        let mut set: BTreeSet<u64> = (1..=3).map(|k| base + k).collect();
        set.insert(base + 100 + u64::from(self.cfg.id));
        set
    }

    fn enter_slot(&mut self, (round, phase): (u64, u8)) {
        let _phase_span = trace::span_round("node", "phase", round);
        if phase == 0 {
            // One open span per round, closed (recording the full round
            // duration) at finalize — the lane the merged cluster trace
            // shows per validator.
            self.round_spans
                .entry(round)
                .or_insert_with(|| trace::span_round("node", "round", round));
            if let Some(prev) = round.checked_sub(1) {
                // Seal the previous round if we took part in it.
                if self
                    .rounds_done
                    .last()
                    .map(|r| r.round < prev)
                    .unwrap_or(true)
                    && self.validations.contains_key(&prev)
                {
                    self.finalize(prev);
                }
            }
            self.position = self.candidate(round);
        } else {
            // Refine using the proposals of the previous iteration.
            let iteration = phase - 1;
            let required =
                support_required(self.cfg.validators, RPCA_THRESHOLDS[iteration as usize]);
            let peers = self
                .proposals
                .remove(&(round, iteration))
                .unwrap_or_default();
            if let Some((first, last)) = self.prop_arrivals.remove(&(round, iteration)) {
                PROPOSAL_DISPERSION_MS.record(last.saturating_sub(first));
            }
            self.position = refine_position(&self.position, peers.values(), required);
        }

        self.msg_seq += 1;
        if u64::from(phase) < PHASES - 1 {
            self.broadcast(&WireMsg::Proposal {
                from: self.cfg.id,
                round,
                iteration: phase,
                seq: self.msg_seq,
                sent_ms: unix_ms(),
                txs: self.position.clone(),
            });
        } else {
            // Validation phase: seal and announce the page.
            let page = page_hash(&self.position);
            self.note_validation(round, self.cfg.id, page, unix_ms());
            self.broadcast(&WireMsg::Validation {
                from: self.cfg.id,
                round,
                seq: self.msg_seq,
                sent_ms: unix_ms(),
                page,
            });
        }
    }

    /// Records one validation (own or a peer's) and, the moment
    /// quorum-many have been collected for the round, the
    /// quorum-collection time.
    fn note_validation(&mut self, round: u64, from: u32, page: Digest256, now_ms: u64) {
        self.val_first_ms.entry(round).or_insert(now_ms);
        let seen = {
            let entry = self.validations.entry(round).or_default();
            entry.insert(from, page);
            entry.len()
        };
        if seen >= self.cfg.quorum_needed() && self.quorum_recorded.insert(round) {
            let first = self.val_first_ms.get(&round).copied().unwrap_or(now_ms);
            QUORUM_COLLECT_MS.record(now_ms.saturating_sub(first));
        }
    }

    fn connected_peers(&self) -> u32 {
        self.cfg
            .peers
            .iter()
            .filter(|&&(id, _)| self.supervisor.is_connected(id))
            .count() as u32
    }

    fn finalize(&mut self, round: u64) {
        let validations = self.validations.remove(&round).unwrap_or_default();
        let n = self.cfg.validators.max(1);
        let own_page = validations
            .get(&self.cfg.id)
            .copied()
            .unwrap_or_else(|| page_hash(&BTreeSet::new()));
        let mut tally: HashMap<Digest256, usize> = HashMap::new();
        for page in validations.values() {
            *tally.entry(*page).or_insert(0) += 1;
        }
        let winner = tally.iter().max_by_key(|&(_, c)| *c);
        let (committed, agreement_milli) = match winner {
            Some((&page, &count)) if count >= self.cfg.quorum_needed() => {
                self.last_committed = Some((round, page));
                (true, (count * 1_000 / n) as u32)
            }
            Some((_, &count)) => (false, (count * 1_000 / n) as u32),
            None => (false, 0),
        };
        let connected = self.connected_peers();
        let degraded = (connected as usize + 1) < self.cfg.quorum_needed();
        if degraded {
            self.telemetry.degraded_rounds += 1;
            ROUNDS_DEGRADED.add(1);
        }
        if committed {
            ROUNDS_COMMITTED.add(1);
        }
        // Close the round's span (records its wall-clock duration) and
        // leave a postmortem breadcrumb in the flight ring.
        self.round_spans.remove(&round);
        flight::note(
            "node",
            "round",
            Some(round),
            &[
                ("committed", i64::from(committed)),
                ("agreement_milli", i64::from(agreement_milli)),
                ("degraded", i64::from(degraded)),
                ("connected", i64::from(connected)),
            ],
        );
        let local = LocalRound {
            round,
            page: own_page,
            committed,
            agreement_milli,
            degraded,
            connected,
        };
        self.send_feed(&WireMsg::RoundReport {
            from: self.cfg.id,
            round,
            page: own_page,
            committed,
            agreement_milli,
            degraded,
            connected,
        });
        let counters = self.full_telemetry();
        self.send_feed(&WireMsg::TelemetryReport {
            from: self.cfg.id,
            counters,
        });
        self.mirror_metrics();
        self.rounds_done.push(local);
        // Prune stale per-round state.
        self.proposals.retain(|&(r, _), _| r + 2 > round);
        self.validations.retain(|&r, _| r + 2 > round);
        self.prop_arrivals.retain(|&(r, _), _| r + 2 > round);
        self.val_first_ms.retain(|&r, _| r + 2 > round);
        self.quorum_recorded.retain(|&r| r + 2 > round);
        self.round_spans.retain(|&r, _| r + 2 > round);
    }

    // -- transport ----------------------------------------------------------

    fn accept_new(&mut self) -> bool {
        let mut any = false;
        while let Some(stream) = try_accept(&self.listener) {
            let _ = stream.set_nodelay(true);
            self.inbound.push(Conn::new(stream));
            any = true;
        }
        any
    }

    fn pump_inbound(&mut self) -> bool {
        let mut any = false;
        let mut i = 0;
        while i < self.inbound.len() {
            // Drop links whose peer was banned since the last pass.
            if self.inbound[i]
                .peer
                .map(|p| self.banned.contains(&p))
                .unwrap_or(false)
            {
                self.inbound.swap_remove(i);
                continue;
            }
            let up = match probe(&self.inbound[i].stream) {
                Probe::Idle => true,
                Probe::Closed => false,
                Probe::Data => {
                    any = true;
                    let drained = {
                        let conn = &mut self.inbound[i];
                        let d = drain_into(&mut conn.stream, &mut conn.decoder);
                        let mut t = Telemetry::default();
                        conn.harvest(&mut t);
                        self.telemetry.frames_received += t.frames_received;
                        self.telemetry.crc_errors += t.crc_errors;
                        self.telemetry.resyncs += t.resyncs;
                        d
                    };
                    let keep = self.dispatch_conn(i);
                    keep && !matches!(drained, Drained::Closed)
                }
            };
            if up {
                i += 1;
            } else {
                self.inbound.swap_remove(i);
            }
        }
        any
    }

    /// Processes every decoded frame on inbound connection `i`. Returns
    /// `false` if the connection must be dropped (banned peer, protocol
    /// misuse).
    fn dispatch_conn(&mut self, i: usize) -> bool {
        loop {
            let frame = match self.inbound[i].decoder.next_frame() {
                Some(f) => f,
                None => return true,
            };
            let msg = match WireMsg::decode(frame.tag, &frame.payload) {
                Ok(m) => m,
                Err(_) => continue, // unknown/corrupt message: skip, keep link
            };
            match msg {
                WireMsg::Hello { from, kind } => {
                    if kind == LinkKind::Validator && self.banned.contains(&from) {
                        return false;
                    }
                    self.inbound[i].peer = Some(from);
                }
                WireMsg::Proposal {
                    from,
                    round,
                    iteration,
                    seq: _,
                    sent_ms: _,
                    txs,
                } => {
                    if !self.banned.contains(&from) {
                        let now_ms = unix_ms();
                        let window = self
                            .prop_arrivals
                            .entry((round, iteration))
                            .or_insert((now_ms, now_ms));
                        window.1 = now_ms;
                        self.proposals
                            .entry((round, iteration))
                            .or_default()
                            .insert(from, txs);
                    }
                }
                WireMsg::Validation {
                    from,
                    round,
                    seq: _,
                    sent_ms,
                    page,
                } => {
                    if !self.banned.contains(&from) {
                        let now_ms = unix_ms();
                        VALIDATION_LATENCY_MS.record(now_ms.saturating_sub(sent_ms));
                        self.note_validation(round, from, page, now_ms);
                    }
                }
                WireMsg::Heartbeat { sent_ms, .. } => {
                    // Tightest local-minus-sender delta seen bounds clock
                    // skew + one-way delay; the harness reads it back from
                    // `/health` as the residual-skew estimate.
                    let delta = unix_ms() as i64 - sent_ms as i64;
                    if self.skew_bound_ms.map(|b| delta < b).unwrap_or(true) {
                        self.skew_bound_ms = Some(delta);
                        SKEW_BOUND_MS.set(delta);
                    }
                }
                WireMsg::StateRequest { .. } => {
                    let reply = WireMsg::StateSnapshot {
                        from: self.cfg.id,
                        round: self.slot.map(|(r, _)| r).unwrap_or(0),
                        last_committed: self.last_committed.map(|(_, p)| p),
                    };
                    let bytes = reply.encode();
                    if write_frame(&mut self.inbound[i].stream, &bytes).is_err() {
                        return false;
                    }
                    self.telemetry.frames_sent += 1;
                }
                WireMsg::StateSnapshot { .. } => {}
                WireMsg::Ban { peers } => self.apply_ban(&peers),
                WireMsg::Unban { peers } => self.apply_unban(&peers),
                WireMsg::Shutdown => self.shutdown = true,
                WireMsg::RoundReport { .. } | WireMsg::TelemetryReport { .. } => {}
            }
        }
    }

    /// Bans peers. Inbound connections from banned peers are NOT removed
    /// here — `pump_inbound` holds an index into `self.inbound`, so they
    /// are dropped on its next pass instead (see the banned-peer check
    /// there).
    fn apply_ban(&mut self, peers: &[u32]) {
        for &p in peers {
            self.banned.insert(p);
            self.supervisor.ban(p);
            self.outbound.remove(&p);
        }
    }

    fn apply_unban(&mut self, peers: &[u32]) {
        let now = Instant::now();
        for &p in peers {
            self.banned.remove(&p);
            self.supervisor.unban(p, now);
        }
    }

    fn pump_outbound(&mut self) -> bool {
        let mut any = false;
        let mut lost: Vec<u32> = Vec::new();
        for (&id, conn) in self.outbound.iter_mut() {
            match probe(&conn.stream) {
                Probe::Idle => {}
                Probe::Closed => lost.push(id),
                Probe::Data => {
                    any = true;
                    if matches!(
                        drain_into(&mut conn.stream, &mut conn.decoder),
                        Drained::Closed
                    ) {
                        lost.push(id);
                    }
                    let mut t = Telemetry::default();
                    conn.harvest(&mut t);
                    self.telemetry.frames_received += t.frames_received;
                    self.telemetry.crc_errors += t.crc_errors;
                    self.telemetry.resyncs += t.resyncs;
                }
            }
        }
        // Handle frames read off outbound links (state snapshots).
        let mut snapshots: Vec<WireMsg> = Vec::new();
        for conn in self.outbound.values_mut() {
            while let Some(frame) = conn.decoder.next_frame() {
                if let Ok(msg) = WireMsg::decode(frame.tag, &frame.payload) {
                    snapshots.push(msg);
                }
            }
        }
        for msg in snapshots {
            if let WireMsg::StateSnapshot {
                round,
                last_committed: Some(page),
                ..
            } = msg
            {
                let newer = self.last_committed.map(|(r, _)| r < round).unwrap_or(true);
                if newer && round > 0 {
                    self.last_committed = Some((round - 1, page));
                }
            }
        }
        let now = Instant::now();
        for id in lost {
            self.outbound.remove(&id);
            self.supervisor.connection_lost(id, now);
        }
        any
    }

    fn addr_of(&self, id: u32) -> Option<SocketAddr> {
        if id == FEED_ID {
            return self.cfg.feed;
        }
        self.cfg
            .peers
            .iter()
            .find(|&&(pid, _)| pid == id)
            .map(|&(_, addr)| addr)
    }

    fn dial_due(&mut self) {
        let now = Instant::now();
        // Every id handed out by due_dials is now in state Dialing and
        // MUST get a success/failure verdict this tick, or it would stay
        // parked forever. The connect timeout bounds the worst-case stall
        // at 30ms per down peer.
        let due = self.supervisor.due_dials(now);
        for id in due {
            let Some(addr) = self.addr_of(id) else {
                self.supervisor.dial_failed(id, now);
                continue;
            };
            match TcpStream::connect_timeout(&addr, Duration::from_millis(30)) {
                Ok(stream) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let mut conn = Conn::new(stream);
                    let kind = if id == FEED_ID {
                        LinkKind::Feed
                    } else {
                        LinkKind::Validator
                    };
                    let hello = WireMsg::Hello {
                        from: self.cfg.id,
                        kind,
                    };
                    if write_frame(&mut conn.stream, &hello.encode()).is_err() {
                        self.supervisor.dial_failed(id, now);
                        continue;
                    }
                    self.telemetry.frames_sent += 1;
                    self.supervisor.dial_succeeded(id);
                    if id != FEED_ID {
                        // Resubscribe state on every (re)connect: ask the
                        // peer for its committed tip.
                        let req = WireMsg::StateRequest { from: self.cfg.id };
                        if write_frame(&mut conn.stream, &req.encode()).is_ok() {
                            self.telemetry.frames_sent += 1;
                            self.telemetry.state_resubs += 1;
                        }
                    }
                    self.outbound.insert(id, conn);
                }
                Err(_) => self.supervisor.dial_failed(id, now),
            }
        }
    }

    fn heartbeat(&mut self) {
        let now = Instant::now();
        if !self.supervisor.heartbeat_due(now) {
            return;
        }
        let round = self.slot.map(|(r, _)| r).unwrap_or(0);
        let msg = WireMsg::Heartbeat {
            from: self.cfg.id,
            round,
            sent_ms: unix_ms(),
        };
        let bytes = msg.encode();
        let mut lost: Vec<u32> = Vec::new();
        for (&id, conn) in self.outbound.iter_mut() {
            if write_frame(&mut conn.stream, &bytes).is_err() {
                lost.push(id);
            } else {
                self.telemetry.frames_sent += 1;
                self.telemetry.heartbeats_sent += 1;
                HEARTBEATS_SENT.add(0); // counter exists even at zero
            }
        }
        for id in lost {
            self.outbound.remove(&id);
            self.supervisor.connection_lost(id, now);
        }
    }

    /// Sends to every connected validator peer (not the feed).
    fn broadcast(&mut self, msg: &WireMsg) {
        let bytes = msg.encode();
        let mut lost: Vec<u32> = Vec::new();
        for (&id, conn) in self.outbound.iter_mut() {
            if id == FEED_ID {
                continue;
            }
            if write_frame(&mut conn.stream, &bytes).is_err() {
                lost.push(id);
            } else {
                self.telemetry.frames_sent += 1;
            }
        }
        let now = Instant::now();
        for id in lost {
            self.outbound.remove(&id);
            self.supervisor.connection_lost(id, now);
        }
    }

    fn send_feed(&mut self, msg: &WireMsg) {
        let bytes = msg.encode();
        if let Some(conn) = self.outbound.get_mut(&FEED_ID) {
            if write_frame(&mut conn.stream, &bytes).is_ok() {
                self.telemetry.frames_sent += 1;
            } else {
                self.outbound.remove(&FEED_ID);
                self.supervisor.connection_lost(FEED_ID, Instant::now());
            }
        }
    }
}
