//! Regression guard for the examples/ binaries: each must keep compiling
//! and exit 0 at smoke scale (`RIPPLE_SMOKE=1`). Examples are the
//! workspace's documentation of record — a broken one is a broken doc.

use std::process::Command;

/// Runs `cargo run --example <name>` with the smoke knob set and asserts a
/// clean exit. Builds share the workspace target directory, so after the
/// first example the rest only link.
fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .env("RIPPLE_SMOKE", "1")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to launch cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty(), "example {name} printed nothing");
}

#[test]
fn quickstart_runs_clean() {
    run_example("quickstart");
}

#[test]
fn validator_watch_runs_clean() {
    run_example("validator_watch");
}

#[test]
fn chaos_storm_runs_clean() {
    run_example("chaos_storm");
}

#[test]
fn cluster_kill9_runs_clean() {
    // The example spawns real ripple-node child processes; build the
    // binary first so the run demonstrates the live cluster rather than
    // taking its binary-missing skip path.
    let build = Command::new(env!("CARGO"))
        .args(["build", "--quiet", "-p", "ripple-node"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("failed to launch cargo build for ripple-node");
    assert!(build.success(), "ripple-node failed to build");
    run_example("cluster_kill9");
}
