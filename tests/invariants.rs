//! Conservation laws and structural invariants, checked over full
//! generated histories and under randomized payment workloads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ripple_core::check::testkit::{acct, assert_iou_zero_sum, cast, funded_state, study_config};
use ripple_core::ledger::{Currency, Drops, LedgerState, Value};
use ripple_core::paths::{PaymentEngine, PaymentRequest};
use ripple_core::{AccountId, Study};

#[test]
fn generated_history_conserves_iou_value() {
    let study = Study::generate(study_config(777, 4_000));
    let state = &study.output().final_state;
    assert_iou_zero_sum(
        state,
        &[
            Currency::USD,
            Currency::CNY,
            Currency::BTC,
            Currency::JPY,
            Currency::MTL,
            Currency::CCK,
            Currency::EUR,
        ],
    );
}

#[test]
fn generated_history_conserves_xrp_supply() {
    // The generator mints nothing: every XRP drop in the final state was
    // funded at account creation or by the treasury. Total supply is the
    // sum of all balances (no fees are burned by the generator's direct
    // transfer path).
    let study = Study::generate(study_config(778, 3_000));
    let state = &study.output().final_state;
    let total: u64 = state
        .accounts()
        .map(|(_, root)| root.balance.as_drops())
        .sum();
    assert!(total > 0);
    // Re-running with the same seed gives the same supply (determinism of
    // the full monetary state, not just the records).
    let again = Study::generate(study_config(778, 3_000));
    let total_again: u64 = again
        .output()
        .final_state
        .accounts()
        .map(|(_, root)| root.balance.as_drops())
        .sum();
    assert_eq!(total, total_again);
}

/// A randomized workload against a fixed star topology: every outcome —
/// success or failure — must leave the zero-sum invariant intact, and
/// failures must leave the state byte-identical.
#[test]
fn random_payment_storm_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut state = LedgerState::new();
    let users: Vec<AccountId> = cast(12);
    let gateway = acct(99);
    state.create_account(gateway, Drops::from_xrp(10_000));
    for &u in &users {
        state.create_account(u, Drops::from_xrp(1_000));
        state
            .set_trust(u, gateway, Currency::USD, Value::from_int(1_000))
            .unwrap();
        // Seed a deposit for roughly half the users.
        if u.as_bytes()[0] % 2 == 0 {
            state
                .ripple_hop(gateway, u, Currency::USD, Value::from_int(500))
                .unwrap();
        }
    }
    let engine = PaymentEngine::new();
    let mut successes = 0;
    let mut failures = 0;
    for _ in 0..500 {
        let sender = users[rng.gen_range(0..users.len())];
        let dest = users[rng.gen_range(0..users.len())];
        if sender == dest {
            continue;
        }
        let amount = Value::from_int(rng.gen_range(1..800));
        let request = PaymentRequest {
            sender,
            destination: dest,
            currency: Currency::USD,
            amount,
            source_currency: None,
            send_max: None,
        };
        match engine.pay(&mut state, &request) {
            Ok(done) => {
                successes += 1;
                assert_eq!(done.delivered, amount);
            }
            Err(_) => failures += 1,
        }
        assert_iou_zero_sum(&state, &[Currency::USD]);
    }
    assert!(successes > 50, "storm should deliver: {successes}");
    assert!(
        failures > 50,
        "storm should also hit capacity walls: {failures}"
    );
}

#[test]
fn failed_payments_leave_state_identical() {
    let mut state = funded_state(3, 100);
    let (a, b, c) = (acct(1), acct(2), acct(3));
    state
        .set_trust(b, a, Currency::USD, Value::from_int(10))
        .unwrap();
    // No b->c leg: multi-hop payment must fail after the first hop would
    // have been applied, exercising the rollback path.
    let engine = PaymentEngine::new();
    let before_balance = state.iou_balance(b, a, Currency::USD);
    let before_accounts = state.account_count();
    let result = engine.pay(
        &mut state,
        &PaymentRequest {
            sender: a,
            destination: c,
            currency: Currency::USD,
            amount: Value::from_int(5),
            source_currency: None,
            send_max: None,
        },
    );
    assert!(result.is_err());
    assert_eq!(state.iou_balance(b, a, Currency::USD), before_balance);
    assert_eq!(state.account_count(), before_accounts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chains of arbitrary length conserve value end to end: the sender's
    /// debt equals the receiver's credit, and intermediaries stay flat.
    #[test]
    fn chain_payments_conserve_value(len in 2usize..8, amount in 1i64..500) {
        let mut state = LedgerState::new();
        let chain: Vec<AccountId> = (1..=len as u8).map(acct).collect();
        for &id in &chain {
            state.create_account(id, Drops::from_xrp(100));
        }
        for pair in chain.windows(2) {
            state
                .set_trust(pair[1], pair[0], Currency::EUR, Value::from_int(1_000))
                .unwrap();
        }
        let engine = PaymentEngine::new();
        let request = PaymentRequest {
            sender: chain[0],
            destination: *chain.last().unwrap(),
            currency: Currency::EUR,
            amount: Value::from_int(amount),
            source_currency: None,
            send_max: None,
        };
        engine.pay(&mut state, &request).unwrap();
        prop_assert_eq!(
            state.net_position(chain[0], Currency::EUR),
            Value::from_int(-amount)
        );
        prop_assert_eq!(
            state.net_position(*chain.last().unwrap(), Currency::EUR),
            Value::from_int(amount)
        );
        for mid in &chain[1..len - 1] {
            prop_assert_eq!(state.net_position(*mid, Currency::EUR), Value::ZERO);
        }
    }

    /// XRP transfers conserve the drop supply exactly.
    #[test]
    fn xrp_transfers_conserve_supply(amounts in proptest::collection::vec(1u64..50_000_000, 1..20)) {
        let mut state = funded_state(2, 100);
        let (a, b) = (acct(1), acct(2));
        let supply = 200_000_000u64;
        for (i, amount) in amounts.iter().enumerate() {
            let (from, to) = if i % 2 == 0 { (a, b) } else { (b, a) };
            let _ = state.xrp_transfer(from, to, Drops::new(*amount));
            let total = state.account(&a).unwrap().balance.as_drops()
                + state.account(&b).unwrap().balance.as_drops();
            prop_assert_eq!(total, supply);
        }
    }

    /// Corrupt archives never panic the reader: any byte flip is reported
    /// as an error or changes decoded content, never undefined behaviour.
    #[test]
    fn store_survives_arbitrary_corruption(flip in 8usize..1_000, value in any::<u8>()) {
        use ripple_core::store::{Reader, Writer, HistoryEvent};
        use ripple_core::ledger::{PathSummary, PaymentRecord, RippleTime};
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for i in 0..10u8 {
            writer
                .write(&HistoryEvent::Payment(PaymentRecord {
                    tx_hash: ripple_core::crypto::sha512_half(&[i]),
                    sender: AccountId::from_bytes([i; 20]),
                    destination: AccountId::from_bytes([i + 1; 20]),
                    currency: Currency::USD,
                    issuer: None,
                    amount: Value::from_int(i as i64 + 1),
                    timestamp: RippleTime::from_seconds(i as u64),
                    ledger_seq: i as u32,
                    paths: PathSummary::direct(),
                    cross_currency: false,
                    source_currency: None,
                }))
                .unwrap();
        }
        writer.finish().unwrap();
        let idx = flip % buf.len();
        buf[idx] ^= value | 1; // guarantee an actual flip
        // Either a clean error or a (possibly shorter) decode — no panic.
        if let Ok(reader) = Reader::new(buf.as_slice()) {
            let _ = reader.read_all();
        }
    }
}
