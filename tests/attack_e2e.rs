//! The de-anonymization attack end to end, against the synthetic history:
//! observe one payment, recover the sender, unroll the profile.

use ripple_core::check::testkit::study_config;
use ripple_core::deanon::{
    sender_information_gain, CurrencyStrength, Observation, ResolutionSpec, TimeResolution,
};
use ripple_core::{Currency, Study};

fn study() -> Study {
    Study::generate(study_config(2_718, 8_000))
}

#[test]
fn observing_random_payments_recovers_their_senders() {
    let study = study();
    let index = study.attack_index(ResolutionSpec::full());
    let payments = study.payments();
    let mut exact = 0;
    let mut probed = 0;
    // Probe every 37th payment as the "overheard" one.
    for payment in payments.iter().step_by(37) {
        probed += 1;
        let candidates = index.query(&Observation::of(payment));
        assert!(
            candidates.contains(&payment.sender),
            "the true sender is always among the candidates"
        );
        if candidates.len() == 1 {
            exact += 1;
        }
    }
    let rate = exact as f64 / probed as f64;
    assert!(
        rate > 0.95,
        "almost every observation pins a single sender: {rate} over {probed}"
    );
}

#[test]
fn profile_reconstructs_full_history_of_heavy_sender() {
    let study = study();
    let index = study.attack_index(ResolutionSpec::full());
    // The busiest sender in the history.
    let mut counts = std::collections::HashMap::new();
    for p in study.payments() {
        *counts.entry(p.sender).or_insert(0u64) += 1;
    }
    let (&busiest, &sent) = counts.iter().max_by_key(|&(_, c)| *c).unwrap();
    let profile = index.profile(busiest);
    assert_eq!(profile.payments_sent, sent, "profile covers every payment");
    assert!(profile.first_seen.unwrap() <= profile.last_seen.unwrap());
    assert!(!profile.top_destinations.is_empty());
    assert!(!profile.sent_by_currency.is_empty());
}

#[test]
fn coarse_observations_still_find_candidates() {
    // The attacker only knows the day, not the second.
    let study = study();
    let spec = ResolutionSpec {
        time: Some(TimeResolution::Days),
        ..ResolutionSpec::full()
    };
    let index = study.attack_index(spec);
    let payments = study.payments();
    let target = payments[payments.len() / 2];
    let candidates = index.query(&Observation::of(target));
    assert!(
        candidates.contains(&target.sender),
        "day-level observation still shortlists the sender"
    );
}

#[test]
fn sender_metric_dominates_strict_metric_on_real_history() {
    let study = study();
    let payments = study.payments();
    for (label, spec) in ResolutionSpec::figure3_rows() {
        let strict = ripple_core::deanon::information_gain(payments.iter().copied(), spec);
        let sender = sender_information_gain(payments.iter().copied(), spec);
        assert!(
            sender.fraction() >= strict.fraction() - 1e-12,
            "{label}: sender IG {} < strict IG {}",
            sender.fraction(),
            strict.fraction()
        );
    }
}

#[test]
fn currency_dropped_row_finds_foreign_currency_payment_with_hint() {
    // The paper's `<Am; Tsc; -; D>` row: currency is dropped from the
    // fingerprint but amounts are still rounded by the *true* strength
    // group. An observation of a USD payment whose currency code went
    // unobserved must still match when the attacker supplies the "kind of
    // money" hint — the old query path rounded with an XRP (Weak, 10^5)
    // exponent and silently missed every such payment.
    let study = study();
    let spec = ResolutionSpec {
        currency: false,
        ..ResolutionSpec::full()
    };
    let index = study.attack_index(spec);
    let payments = study.payments();
    // A medium-strength payment large enough that Weak rounding (closest
    // 10^5) would crush it to a different bucket than Medium rounding.
    let target = payments
        .iter()
        .find(|p| {
            p.currency == Currency::USD && p.amount.to_f64() >= 10.0 && p.amount.to_f64() < 50_000.0
        })
        .expect("synthetic history always carries organic USD traffic");
    let observation = Observation {
        amount: Some(target.amount),
        time: Some(target.timestamp),
        currency: None,                           // Alice missed the currency code...
        strength: Some(CurrencyStrength::Medium), // ...but knows it was fiat
        destination: Some(target.destination),
    };
    let candidates = index.query(&observation);
    assert!(
        candidates.contains(&target.sender),
        "strength-hinted query must find the USD sender"
    );
    // And the hint is load-bearing: defaulting to Weak rounding (the old
    // behaviour) misses this record's fingerprint class entirely.
    let hintless = Observation {
        strength: None,
        ..observation
    };
    assert!(
        !index.query(&hintless).contains(&target.sender),
        "without the hint the Weak-rounded amount lands in the wrong bucket"
    );
}

#[test]
fn removing_observation_fields_grows_candidate_sets() {
    let study = study();
    let payments = study.payments();
    let target = payments[payments.len() / 3];
    let full_index = study.attack_index(ResolutionSpec::full());
    let no_dest_index = study.attack_index(ResolutionSpec {
        destination: false,
        ..ResolutionSpec::full()
    });
    let full = full_index.query(&Observation::of(target)).len();
    let loose = no_dest_index.query(&Observation::of(target)).len();
    assert!(
        loose >= full,
        "dropping a field cannot shrink the candidate set"
    );
}
