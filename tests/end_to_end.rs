//! End-to-end pipeline tests: generate → archive → mine → reproduce every
//! table/figure shape the paper reports.

use ripple_core::check::testkit::study_config;
use ripple_core::store::{HistoryEvent, Reader};
use ripple_core::{Currency, Study, SynthConfig};

fn study() -> Study {
    // One shared mid-sized history keeps the suite fast; individual checks
    // are shape assertions, not absolute counts.
    Study::generate(SynthConfig {
        // The full Market-Maker pool so offer-concentration shares are
        // measured against the same population as the paper's ranking.
        market_makers: 230,
        ..study_config(99, 12_000)
    })
}

#[test]
fn archive_round_trips_through_store() {
    let study = study();
    let mut buf = Vec::new();
    let written = study
        .output()
        .write_archive(&mut buf)
        .expect("write archive");
    assert_eq!(written as usize, study.output().events.len());
    let events = Reader::new(buf.as_slice())
        .expect("valid magic")
        .read_all()
        .expect("clean archive");
    assert_eq!(events.len(), study.output().events.len());
    let payments = events
        .iter()
        .filter(|e| matches!(e, HistoryEvent::Payment(_)))
        .count();
    assert_eq!(payments, 12_000);
}

#[test]
fn figure3_shape_matches_paper() {
    let study = study();
    let rows = study.figure3();
    let get = |label: &str| {
        rows.iter()
            .find(|(l, _)| *l == label)
            .map(|(_, ig)| ig.percent())
            .unwrap_or_else(|| panic!("row {label} missing"))
    };
    // Paper values: 99.83 / 99.83 / 93.78 / 89.86 / 48.84 / 1.28.
    let full = get("<Am; Tsc; C; D>");
    assert!(full > 97.0, "full resolution should be near-total: {full}");
    let no_currency = get("<Am; Tsc; -; D>");
    assert!(
        (full - no_currency).abs() < 1.5,
        "dropping C barely matters: {full} vs {no_currency}"
    );
    let no_dest = get("<Am; Tsc; C; ->");
    assert!(
        (88.0..=97.0).contains(&no_dest),
        "dropping D costs a few points: {no_dest}"
    );
    let no_amount = get("<- ; Tsc; C; D>");
    assert!(
        (82.0..=95.0).contains(&no_amount),
        "dropping A costs more: {no_amount}"
    );
    assert!(no_dest > no_amount, "A carries less than D in our history");
    let no_time = get("<Am; - ; C; D>");
    assert!(
        (35.0..=65.0).contains(&no_time),
        "dropping T is catastrophic (paper: coin-toss 48.84): {no_time}"
    );
    assert!(
        no_amount - no_time > 20.0,
        "T must be the highest-gain feature"
    );
    let weakest = get("<Al; Tdy; -; ->");
    assert!(
        weakest < 25.0,
        "day-level amount-only fingerprints are nearly useless: {weakest}"
    );
    // Full ladder ordering along the paper's paired resolutions.
    assert!(get("<Am; Tsc; C; D>") >= get("<Aa; Thr; C; D>"));
    assert!(get("<Aa; Thr; C; D>") >= get("<Al; Tdy; C; D>"));
    assert!(get("<Al; Tdy; C; D>") >= get("<Al; Tdy; -; ->"));
}

#[test]
fn figure4_ranking_matches_paper() {
    let study = study();
    let usage = study.figure4();
    assert_eq!(usage[0].0, Currency::XRP, "XRP tops the list");
    assert_eq!(usage[1].0, Currency::CCK, "CCK second");
    assert_eq!(usage[2].0, Currency::MTL, "MTL third");
    let top_real: Vec<Currency> = usage[3..6].iter().map(|&(c, _)| c).collect();
    assert!(
        top_real.contains(&Currency::BTC),
        "BTC leads the real currencies: {top_real:?}"
    );
    // XRP is roughly half of all payments.
    let xrp_share = usage[0].1 as f64 / 12_000.0;
    assert!((0.44..0.54).contains(&xrp_share), "XRP share = {xrp_share}");
    // The ranking spans multiple decades like the paper's log axis.
    assert!(usage.len() > 20, "long tail of currencies: {}", usage.len());
    assert!(usage[0].1 / usage.last().unwrap().1.max(1) > 100);
}

#[test]
fn figure5_survival_shapes() {
    let study = study();
    let curves = study.figure5();
    let curve = |currency: Option<Currency>| {
        curves
            .iter()
            .find(|(c, _)| *c == currency)
            .map(|(_, curve)| curve)
            .expect("curve exists")
    };
    let v = |x: f64| ripple_core::Value::from_f64(x);
    // BTC payments are small (strong currency).
    assert!(curve(Some(Currency::BTC)).survival(v(1.0)) < 0.6);
    // CCK mirrors BTC: micro-payments.
    assert!(curve(Some(Currency::CCK)).survival(v(1.0)) < 0.6);
    // MTL is the 1e9 cliff.
    let mtl = curve(Some(Currency::MTL));
    assert_eq!(mtl.survival(v(1e8)), 1.0);
    assert_eq!(mtl.survival(v(2e9)), 0.0);
    // USD and CNY deliver mid-sized amounts.
    assert!(curve(Some(Currency::USD)).survival(v(1.0)) > 0.8);
    // The global curve carries MTL's plateau around the spam fraction.
    let global = curve(None);
    let plateau = global.survival(v(1e8));
    assert!(
        (0.10..0.20).contains(&plateau),
        "global plateau tracks the MTL fraction: {plateau}"
    );
}

#[test]
fn figure6_histograms_match_paper() {
    let study = study();
    let hops = study.figure6a();
    // Decreasing trend over 1..5.
    for window in [1usize, 2, 3, 4].windows(2) {
        let (a, b) = (window[0], window[1]);
        assert!(
            hops.get(&a).copied().unwrap_or(0) > hops.get(&b).copied().unwrap_or(0),
            "hops {a} should outnumber {b}"
        );
    }
    // The MTL spike at exactly 8 dominates everything.
    let spike = hops.get(&8).copied().unwrap_or(0);
    assert!(
        spike > hops.get(&1).copied().unwrap_or(0),
        "8-hop spam spike dominates: {spike}"
    );
    // The crafted 44-hop outlier.
    assert_eq!(hops.get(&44).copied().unwrap_or(0), 1);

    let parallel = study.figure6b();
    // Of the non-MTL traffic, 4 parallel paths is the largest bucket.
    let p = |k: usize| parallel.get(&k).copied().unwrap_or(0);
    assert!(
        p(4) > p(2) && p(4) > p(3),
        "k=4 dominates the organic split"
    );
    assert!(p(1) > p(2), "unsplit payments outnumber 2-way splits");
    // The MTL spike at exactly 6 parallel paths.
    assert!(p(6) > p(2), "6-path spam spike present");
}

#[test]
fn table2_bands_match_paper() {
    let study = study();
    let report = study.table2().expect("snapshot exists");
    // Paper: cross-currency 0%, single-currency 36.1%, total 11.2%.
    assert_eq!(report.stats.cross_delivered, 0, "no bridge without makers");
    let single = report.stats.single_rate();
    assert!(
        (0.15..0.55).contains(&single),
        "single-currency minority delivers: {single}"
    );
    let total = report.stats.total_rate();
    assert!((0.04..0.25).contains(&total), "total rate: {total}");
    // Cross-currency dominates the window, as in the paper (68.7%).
    let cross_share = report.stats.cross_submitted as f64 / report.stats.total_submitted() as f64;
    assert!(
        (0.5..0.8).contains(&cross_share),
        "cross share: {cross_share}"
    );
    assert!(report.offers_stripped > 0);
    assert!(report.makers_severed > 0);
}

#[test]
fn figure7_hub_profile_matches_paper() {
    let study = study();
    let report = study.figure7(50);
    assert_eq!(report.rows.len(), 50);
    // The two hubs dominate by roughly an order of magnitude.
    let hubs = &study.output().cast.hubs;
    assert!(hubs.contains(&report.rows[0].account), "top hop is a hub");
    assert!(
        hubs.contains(&report.rows[1].account),
        "second hop is a hub"
    );
    let hub_count = report.rows[0].hop_count;
    let first_non_hub = report
        .rows
        .iter()
        .find(|r| !hubs.contains(&r.account))
        .expect("non-hub rows exist");
    assert!(
        hub_count >= first_non_hub.hop_count * 5 / 2,
        "hubs dominate: {} vs {}",
        hub_count,
        first_non_hub.hop_count
    );
    // Gateways in the list have negative balances (they owe deposits) and
    // extend no trust; they are a strict subset of the 50.
    let gateways: Vec<_> = report.rows.iter().filter(|r| r.is_gateway).collect();
    assert!(
        !gateways.is_empty(),
        "announced gateways appear in the top 50"
    );
    assert!(gateways.len() < 50, "common users appear too");
    for gw in &gateways {
        assert!(
            gw.balance_eur.is_negative(),
            "{} should carry debt: {}",
            gw.label,
            gw.balance_eur
        );
        assert!(
            gw.trust_received > gw.trust_given,
            "{} receives more trust than it gives",
            gw.label
        );
    }
}

#[test]
fn offer_concentration_matches_paper() {
    let study = study();
    let conc = study.offer_concentration();
    assert!(conc.total > 5_000);
    let top10 = conc.top_share(10);
    let top50 = conc.top_share(50);
    let top100 = conc.top_share(100);
    // Paper: 50% / 75% / 87%.
    assert!((0.40..0.60).contains(&top10), "top-10 share: {top10}");
    assert!((0.65..0.85).contains(&top50), "top-50 share: {top50}");
    assert!((0.80..0.95).contains(&top100), "top-100 share: {top100}");
    assert!(top10 < top50 && top50 < top100);
}

#[test]
fn generation_is_deterministic_across_runs() {
    let a = Study::generate(study_config(123, 1_500));
    let b = Study::generate(study_config(123, 1_500));
    let pa: Vec<_> = a.payments();
    let pb: Vec<_> = b.payments();
    assert_eq!(pa, pb, "same seed, same history");
    let c = Study::generate(study_config(124, 1_500));
    assert_ne!(
        a.payments(),
        c.payments(),
        "different seed, different history"
    );
}

#[test]
fn ledger_invariants_hold_after_generation() {
    let study = study();
    let state = &study.output().final_state;
    // Every recorded intermediate hop account exists in the ledger.
    for payment in study.payments().iter().take(500) {
        for hop in payment.paths.intermediaries() {
            assert!(state.account(hop).is_some(), "hop account must exist");
        }
        assert!(state.account(&payment.sender).is_some());
        assert!(state.account(&payment.destination).is_some());
    }
    // Pair balances are antisymmetric by construction; spot-check netting
    // across the busiest gateway.
    let gw = study.output().cast.gateways[0].account;
    let cur = study.output().cast.gateways[0].home_currency;
    let outstanding = state.net_position(gw, cur);
    assert!(
        outstanding.is_negative() || outstanding.is_zero(),
        "issuing gateways cannot hold net credit in their own currency: {outstanding}"
    );
}
