//! Golden equivalence: the sharded single-pass Figure 3 engine must return
//! results identical to the serial reference metrics
//! (`information_gain` / `sender_information_gain`) on every row, for any
//! shard count — the parallel layout is an optimization, never a
//! reinterpretation of the paper's metric.

use ripple_core::deanon::{
    figure3_sweep, information_gain, sender_information_gain, EngineConfig, IgResult,
    ResolutionSpec,
};
use ripple_core::{Study, SynthConfig};

fn serial_reference(study: &Study) -> Vec<(&'static str, IgResult, IgResult)> {
    let payments = study.payments();
    ResolutionSpec::figure3_rows()
        .into_iter()
        .map(|(label, spec)| {
            (
                label,
                information_gain(payments.iter().copied(), spec),
                sender_information_gain(payments.iter().copied(), spec),
            )
        })
        .collect()
}

#[test]
fn sharded_sweep_is_byte_identical_to_serial_metrics() {
    for seed in [101u64, 77_003] {
        let study = Study::generate(SynthConfig {
            seed,
            ..SynthConfig::small(50_000)
        });
        let reference = serial_reference(&study);
        let payments = study.payments();
        for shards in [1usize, 2, 8] {
            let sweep = figure3_sweep(
                &payments,
                EngineConfig {
                    shards,
                    merge_ranges: 0,
                },
            );
            assert_eq!(sweep.rows.len(), reference.len());
            for (row, &(label, strict, sender)) in sweep.rows.iter().zip(&reference) {
                assert_eq!(row.label, label);
                assert_eq!(
                    row.strict, strict,
                    "seed {seed}, {shards} shards, {label}: strict IG diverged"
                );
                assert_eq!(
                    row.sender, sender,
                    "seed {seed}, {shards} shards, {label}: sender IG diverged"
                );
            }
        }
    }
}

#[test]
fn shard_layout_never_changes_the_answer() {
    // Same history, three layouts (including an adversarial 1-range merge):
    // every layout must produce the same rows.
    let study = Study::generate(SynthConfig {
        seed: 424_242,
        ..SynthConfig::small(20_000)
    });
    let payments = study.payments();
    let baseline = figure3_sweep(
        &payments,
        EngineConfig {
            shards: 1,
            merge_ranges: 1,
        },
    );
    for (shards, ranges) in [(2, 3), (4, 16), (8, 1)] {
        let sweep = figure3_sweep(
            &payments,
            EngineConfig {
                shards,
                merge_ranges: ranges,
            },
        );
        assert_eq!(
            sweep.rows, baseline.rows,
            "layout {shards}x{ranges} diverged from 1x1"
        );
    }
}

#[test]
fn study_figure3_agrees_with_engine_sweep() {
    let study = Study::generate(SynthConfig {
        seed: 9,
        ..SynthConfig::small(10_000)
    });
    let via_study = study.figure3();
    let via_engine = study.figure3_sweep(EngineConfig::default());
    for ((label_a, strict), row) in via_study.iter().zip(&via_engine.rows) {
        assert_eq!(*label_a, row.label);
        assert_eq!(*strict, row.strict);
    }
}
