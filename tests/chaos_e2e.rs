//! End-to-end chaos harness: consensus campaigns under timed fault
//! schedules, plus corruption-recovering history reads.
//!
//! Five scenarios (partition+heal, crash+restart, loss burst, delay
//! spike, combined storm) each run a multi-round [`ChaosCampaign`]; the
//! no-fork safety invariant must hold in every one, and liveness is
//! measured as quorum-stall windows and rounds-to-recover — the §IV
//! `validator_watch` observation automated at the message level.

use std::collections::BTreeSet;

use ripple_check::testkit::{chaos_run as run, ms};
use ripple_netsim::{FaultPlan, NodeId, SimTime};
use ripple_store::{CorruptionPlan, HistoryEvent, Reader, Writer};

// ---------------------------------------------------------------------
// Scenario 1: partition + heal.
// ---------------------------------------------------------------------
#[test]
fn chaos_partition_and_heal_preserves_safety_and_recovers() {
    // Split 2|3 during rounds 1–2 (500ms rounds): neither side holds 80%.
    let plan = FaultPlan::new()
        .partition_at(
            ms(500),
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
        )
        .heal_at(ms(1_500));
    let outcome = run(plan, 8, 101);
    // Safety held (run() would have errored) and the partition stalled
    // full commits of the disputed rounds — but never forked.
    for record in &outcome.rounds {
        assert!(record.agreement <= 1.0);
    }
    let recovery = outcome.recovery.expect("healed network must recover");
    assert!(
        recovery.rounds_to_recover <= 2,
        "recovery took {} rounds",
        recovery.rounds_to_recover
    );
    // Once healed, the tail of the campaign commits every round.
    assert!(outcome.rounds[4..].iter().all(|r| r.committed.is_some()));
}

// ---------------------------------------------------------------------
// Scenario 2: crash + restart — the paper's §IV quorum stall.
// ---------------------------------------------------------------------
#[test]
fn chaos_crash_restart_reproduces_quorum_stall_with_measured_recovery() {
    // §IV: on November 18, 2016 two of the five Ripple validators went
    // offline (40% > the 20% tolerance) and "no new pages could be
    // created" until they returned. Crash validators 3 and 4 for rounds
    // 2–3, then restart them.
    let plan = FaultPlan::new()
        .crash_at(ms(1_000), NodeId(3))
        .crash_at(ms(1_000), NodeId(4))
        .restart_at(ms(2_000), NodeId(3))
        .restart_at(ms(2_000), NodeId(4));
    let outcome = run(plan, 8, 202);

    // The stall window covers exactly the crashed rounds.
    let stall = outcome
        .worst_stall()
        .expect("40% offline must stall quorum");
    assert_eq!(
        (stall.first_round, stall.rounds),
        (2, 2),
        "stall = {stall:?}"
    );

    // Measured recovery: the first full round after the restart commits.
    let recovery = outcome.recovery.expect("validators returned");
    assert_eq!(recovery.faults_cleared_at, ms(2_000));
    assert_eq!(recovery.rounds_to_recover, 1);
    assert_eq!(recovery.time_to_recover, ms(500));
    assert_eq!(outcome.committed_rounds, 6);
}

// ---------------------------------------------------------------------
// Scenario 3: loss burst.
// ---------------------------------------------------------------------
#[test]
fn chaos_loss_burst_degrades_but_never_forks() {
    let plan = FaultPlan::new().loss_burst(ms(500), ms(2_000), 0.6);
    let outcome = run(plan, 8, 303);
    let dropped: u64 = outcome.rounds.iter().map(|r| r.messages_dropped).sum();
    assert!(dropped > 0, "a 60% burst must actually drop traffic");
    // Rounds after the burst clear cleanly.
    assert!(outcome.rounds[5..].iter().all(|r| r.committed.is_some()));
}

// ---------------------------------------------------------------------
// Scenario 4: delay spike.
// ---------------------------------------------------------------------
#[test]
fn chaos_delay_spike_stalls_only_while_messages_outrun_deadlines() {
    // +600ms on every message while iteration deadlines are 100ms:
    // proposals arrive an iteration too late and are discarded. With no
    // peer support, every honest validator strips every transaction, so
    // the spiked rounds close *empty* pages — the real network's response
    // to disputed traffic — rather than forking or committing junk.
    let empty_page = ripple_consensus::rounds::page_hash(&BTreeSet::new());
    let plan = FaultPlan::new().delay_spike(ms(500), ms(1_500), ms(600));
    let outcome = run(plan, 8, 404);
    for spiked in &outcome.rounds[1..3] {
        assert!(
            spiked.committed.is_none() || spiked.committed == Some(empty_page),
            "spiked round {} must stall or close empty, got {:?}",
            spiked.round,
            spiked.committed
        );
    }
    // Clean rounds before and after commit real (non-empty) pages.
    assert!(outcome.rounds[0].committed.is_some_and(|p| p != empty_page));
    assert!(outcome.rounds[5..]
        .iter()
        .all(|r| r.committed.is_some_and(|p| p != empty_page)));
    assert!(outcome.recovery.is_some());
}

// ---------------------------------------------------------------------
// Scenario 5: combined storm (partition + crash + loss + skew).
// ---------------------------------------------------------------------
#[test]
fn chaos_combined_storm_holds_the_safety_line() {
    let plan = FaultPlan::new()
        .partition_at(
            ms(500),
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
        )
        .crash_at(ms(800), NodeId(4))
        .heal_at(ms(1_500))
        .restart_at(ms(2_000), NodeId(4))
        .loss_burst(ms(2_200), ms(2_700), 0.4)
        .clock_skew(NodeId(1), ms(40));
    let outcome = run(plan, 10, 505);
    // The storm clears by t=2.7s (round 5); everything after commits.
    assert!(outcome.rounds[6..].iter().all(|r| r.committed.is_some()));
    let recovery = outcome.recovery.expect("storm clears inside the horizon");
    assert!(recovery.rounds_to_recover <= 2);
}

// ---------------------------------------------------------------------
// Randomized schedules stay safe too.
// ---------------------------------------------------------------------
#[test]
fn chaos_randomized_plans_never_fork() {
    for seed in 0..5u64 {
        let plan = FaultPlan::randomized(seed, 5, SimTime::from_secs(3));
        let outcome = run(plan, 8, 1_000 + seed);
        assert!(outcome.rounds.len() == 8);
    }
}

// ---------------------------------------------------------------------
// Determinism: same seed + same plan ⇒ byte-identical outcome.
// ---------------------------------------------------------------------
#[test]
fn chaos_campaigns_are_deterministic_across_runs() {
    let scenario = || {
        FaultPlan::new()
            .partition_at(
                ms(500),
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
            )
            .heal_at(ms(1_200))
            .crash_at(ms(1_600), NodeId(2))
            .restart_at(ms(2_100), NodeId(2))
            .loss_burst(ms(2_300), ms(2_900), 0.5)
            .delay_spike(ms(3_000), ms(3_300), ms(150))
    };
    let a = run(scenario(), 10, 777);
    let b = run(scenario(), 10, 777);
    assert_eq!(
        a.digest, b.digest,
        "determinism digest must be byte-identical"
    );
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.stalls, b.stalls);
    assert_eq!(a.recovery, b.recovery);
    // And a different seed perturbs the digest.
    let c = run(scenario(), 10, 778);
    assert_ne!(a.digest, c.digest);
}

// ---------------------------------------------------------------------
// Corruption-recovering history reads, end to end.
// ---------------------------------------------------------------------
#[test]
fn chaos_store_salvages_history_written_through_a_corrupting_sink() {
    use ripple_crypto::{sha512_half, AccountId};
    use ripple_ledger::RippleTime;

    let events: Vec<HistoryEvent> = (0..50u8)
        .map(|n| HistoryEvent::AccountCreated {
            account: AccountId::from_bytes([n; 20]),
            timestamp: RippleTime::from_seconds(n as u64),
        })
        .collect();
    let _ = sha512_half(b"anchor"); // crypto crate is genuinely linked

    // Write the archive through a corrupting writer: scattered bit flips
    // over the middle third of the stream.
    let clean_len = {
        let mut probe = Vec::new();
        let mut writer = Writer::new(&mut probe);
        for e in &events {
            writer.write(e).unwrap();
        }
        writer.finish().unwrap();
        probe.len() as u64
    };
    let plan = CorruptionPlan::scattered_flips(9, 6, clean_len / 3, 2 * clean_len / 3);
    let mut sink = Vec::new();
    {
        let mut corrupting = ripple_store::CorruptingWriter::new(&mut sink, plan);
        let mut writer = Writer::new(&mut corrupting);
        for e in &events {
            writer.write(e).unwrap();
        }
        writer.finish().unwrap();
    }

    // Strict mode refuses the damaged archive; resync salvages every
    // record outside the flipped frames.
    assert!(Reader::new(sink.as_slice()).unwrap().read_all().is_err());
    let (salvaged, stats) = Reader::recovering(sink.as_slice())
        .unwrap()
        .read_all_with_stats()
        .unwrap();
    // 6 bit flips can ruin at most 6 records; everything else survives,
    // in order, bit-for-bit.
    assert!(
        stats.records >= 44,
        "salvaged only {} records",
        stats.records
    );
    assert_eq!(stats.records as usize, salvaged.len());
    assert!(stats.corrupt_regions >= 1 && stats.corrupt_regions <= 6);
    let mut remaining = events.iter();
    for got in &salvaged {
        // Each salvaged record matches the next not-yet-matched original:
        // salvage preserves order and content.
        assert!(
            remaining.any(|want| want == got),
            "salvaged record not in original order"
        );
    }
}

// ---------------------------------------------------------------------
// The two layers compose: a campaign's committed pages survive a round
// trip through a damaged archive.
// ---------------------------------------------------------------------
#[test]
fn chaos_committed_pages_survive_archival_corruption() {
    use ripple_crypto::AccountId;
    use ripple_ledger::RippleTime;

    let plan = FaultPlan::new()
        .crash_at(ms(1_000), NodeId(3))
        .crash_at(ms(1_000), NodeId(4))
        .restart_at(ms(2_000), NodeId(3))
        .restart_at(ms(2_000), NodeId(4));
    let outcome = run(plan, 8, 606);

    // Archive one AccountCreated marker per committed round (stand-in for
    // page contents; the codec under test is the same).
    let events: Vec<HistoryEvent> = outcome
        .rounds
        .iter()
        .filter(|r| r.committed.is_some())
        .map(|r| HistoryEvent::AccountCreated {
            account: AccountId::from_bytes([r.round as u8; 20]),
            timestamp: RippleTime::from_seconds(r.round),
        })
        .collect();
    assert_eq!(events.len(), 6);

    let mut buf = Vec::new();
    let mut writer = Writer::new(&mut buf);
    for e in &events {
        writer.write(e).unwrap();
    }
    writer.finish().unwrap();

    // Truncate mid-final-record (a crash during the flush of the last
    // page) and flip one bit early on.
    let damaged = ripple_store::corrupt_bytes(
        &buf,
        &CorruptionPlan::new()
            .flip_bit(20, 1)
            .truncate_at(buf.len() as u64 - 2),
    );
    let (salvaged, stats) = Reader::recovering(damaged.as_slice())
        .unwrap()
        .read_all_with_stats()
        .unwrap();
    assert_eq!(
        stats.records, 4,
        "first and last records lost, middle intact"
    );
    assert_eq!(salvaged, events[1..5]);
}
