//! Store fuzz driver: mutation corpora through the archive reader's
//! resync path. The generated sweep asserts no panics and honest
//! recovery stats; the fixed cases below are the hostile shapes worth
//! pinning as regressions (header damage, boundary truncations,
//! stacked mutations) regardless of what the sweep happens to draw.

use ripple_core::check::storefuzz::{
    corpus_events, gen_store_plan, run_store_plan, StoreOp, StorePlan,
};
use ripple_core::store::{corrupt_bytes, CorruptionPlan, Reader, Writer};

fn assert_behaves(what: &str, plan: &StorePlan) {
    if let Some(violation) = run_store_plan(plan) {
        panic!("{what}: {violation}");
    }
}

#[test]
fn generated_corpora_never_break_the_reader() {
    for seed in 0..120u64 {
        let plan = gen_store_plan(seed);
        assert_behaves(&format!("seed {seed}"), &plan);
    }
}

#[test]
fn untouched_archives_read_back_verbatim() {
    for seed in [1u64, 9, 77] {
        assert_behaves(
            "identity",
            &StorePlan {
                corpus_seed: seed,
                events: 12,
                ops: Vec::new(),
            },
        );
    }
}

#[test]
fn header_damage_is_a_clean_error_not_a_panic() {
    // Flipping magic bytes must fail construction gracefully; the driver
    // treats reader errors as acceptable but panics as violations.
    for bit in 0..8u8 {
        for offset in 0..8u64 {
            assert_behaves(
                "magic flip",
                &StorePlan {
                    corpus_seed: 5,
                    events: 6,
                    ops: vec![StoreOp::FlipBit { offset, bit }],
                },
            );
        }
    }
}

#[test]
fn boundary_truncations_behave() {
    // Truncation at every prefix of a small archive: mid-magic, mid-frame
    // header, mid-record, and at the exact end.
    let len = {
        let mut buf = Vec::new();
        let mut writer = Writer::new(&mut buf);
        for event in corpus_events(3, 5) {
            writer.write(&event).expect("in-memory write");
        }
        writer.finish().expect("finish");
        buf.len() as u64
    };
    for offset in 0..=len {
        assert_behaves(
            "truncation",
            &StorePlan {
                corpus_seed: 3,
                events: 5,
                ops: vec![StoreOp::TruncateAt { offset }],
            },
        );
    }
}

#[test]
fn stacked_mutations_behave() {
    // Overlapping damage classes on one archive — the shape a shrinker
    // would hand back if a multi-op case ever minimized to an interacting
    // pair.
    assert_behaves(
        "drop+flip",
        &StorePlan {
            corpus_seed: 11,
            events: 15,
            ops: vec![
                StoreOp::DropRange { offset: 30, len: 7 },
                StoreOp::FlipBit { offset: 31, bit: 3 },
            ],
        },
    );
    assert_behaves(
        "zero-over-drop",
        &StorePlan {
            corpus_seed: 11,
            events: 15,
            ops: vec![
                StoreOp::ZeroRange {
                    offset: 40,
                    len: 40,
                },
                StoreOp::DropRange {
                    offset: 44,
                    len: 12,
                },
                StoreOp::TruncateAt { offset: 200 },
            ],
        },
    );
}

#[test]
fn salvage_counts_match_damage_extent() {
    // One flipped bit in the middle of the body ruins at most one record;
    // the rest must survive with consistent stats.
    let events = corpus_events(21, 20);
    let mut clean = Vec::new();
    let mut writer = Writer::new(&mut clean);
    for event in &events {
        writer.write(event).expect("write");
    }
    writer.finish().expect("finish");
    let mid = clean.len() as u64 / 2;
    let damaged = corrupt_bytes(&clean, &CorruptionPlan::new().flip_bit(mid, 5));
    let (salvaged, stats) = Reader::recovering(damaged.as_slice())
        .expect("magic intact")
        .read_all_with_stats()
        .expect("resync read");
    assert_eq!(stats.records as usize, salvaged.len());
    assert!(
        salvaged.len() >= events.len() - 2,
        "one flip may ruin at most the record it lands in (plus a torn \
         neighbour): {} of {}",
        salvaged.len(),
        events.len()
    );
    if salvaged.len() < events.len() {
        assert!(stats.corrupt_regions >= 1);
    }
}
