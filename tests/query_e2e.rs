//! End-to-end tests for the indexed query-serving store: golden
//! byte-stability of the postings sidecar across shard counts and
//! reopen, a property test that every account-posting offset
//! round-trips through the raw archive to an event touching that
//! account, and an HTTP integration pass exercising every endpoint
//! against a synthesized archive over real sockets.

use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use ripple_core::crypto::{hex, AccountId};
use ripple_core::query::{serve, EngineConfig, QueryEngine};
use ripple_core::store::{decode_frame_at, HistoryEvent, PostingsConfig, PostingsIndex};
use ripple_core::{Generator, SynthConfig};

/// One synthesized archive shared by every test in this file.
fn archive() -> &'static [u8] {
    static ARCHIVE: OnceLock<Vec<u8>> = OnceLock::new();
    ARCHIVE.get_or_init(|| {
        let out = Generator::new(SynthConfig {
            payments: 3_000,
            seed: 20_130_777,
            ..SynthConfig::default()
        })
        .run();
        let mut buf = Vec::new();
        out.write_archive(&mut buf).expect("archive encode");
        buf
    })
}

fn postings() -> &'static PostingsIndex {
    static POSTINGS: OnceLock<PostingsIndex> = OnceLock::new();
    POSTINGS
        .get_or_init(|| PostingsIndex::build(archive(), &PostingsConfig::default()).expect("build"))
}

/// Account list with offsets, stable order, built once for the property
/// test below.
fn account_table() -> &'static Vec<(AccountId, Vec<u64>)> {
    static TABLE: OnceLock<Vec<(AccountId, Vec<u64>)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table: Vec<(AccountId, Vec<u64>)> = postings()
            .iter_accounts()
            .map(|(a, o)| (*a, o.to_vec()))
            .collect();
        table.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        table
    })
}

fn touches(event: &HistoryEvent, account: &AccountId) -> bool {
    match event {
        HistoryEvent::Payment(p) => p.sender == *account || p.destination == *account,
        HistoryEvent::OfferPlaced { owner, .. } => owner == account,
        HistoryEvent::TrustSet {
            truster, trustee, ..
        } => truster == account || trustee == account,
        HistoryEvent::AccountCreated { account: a, .. } => a == account,
    }
}

/// Golden test: the sidecar encoding is byte-identical for any build
/// shard count, and reopening the bytes reproduces them exactly.
#[test]
fn sidecar_bytes_are_identical_across_shard_counts_and_reopen() {
    let golden = postings().to_bytes();
    assert!(!golden.is_empty());
    for shards in [2usize, 8] {
        let built = PostingsIndex::build(
            archive(),
            &PostingsConfig {
                shards,
                ..PostingsConfig::default()
            },
        )
        .expect("sharded build");
        assert_eq!(
            built.to_bytes(),
            golden,
            "{shards}-shard build diverged from the single-shard sidecar"
        );
    }
    let reopened = PostingsIndex::from_bytes(&golden).expect("reopen");
    assert_eq!(reopened.to_bytes(), golden, "reopen must round-trip");
    assert_eq!(reopened.records(), postings().records());
    assert_eq!(reopened.accounts(), postings().accounts());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every posting offset names a frame in the raw archive whose event
    /// actually touches the posting's account.
    #[test]
    fn posting_offsets_decode_to_the_accounts_events(pick_a in 0usize..4096, pick_o in 0usize..4096) {
        let table = account_table();
        let (account, offsets) = &table[pick_a % table.len()];
        let offset = offsets[pick_o % offsets.len()];
        let (event, _len) = decode_frame_at(archive(), offset).expect("frame decode");
        prop_assert!(
            touches(&event, account),
            "offset {} decoded to an event not touching {}",
            offset,
            hex::encode(account.as_bytes())
        );
    }
}

fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: e2e\r\n\r\n").expect("send");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Serves the synthesized archive and exercises every endpoint once,
/// asserting both status and load-bearing body content.
#[test]
fn http_api_serves_every_endpoint() {
    let (engine, report) =
        QueryEngine::open(archive().to_vec(), &EngineConfig::default()).expect("engine open");
    let engine = Arc::new(engine);
    let server = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // /health
    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"records\": {}", report.records)),
        "{body}"
    );

    // /stats
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"accounts\": {}", report.accounts)),
        "{body}"
    );
    assert!(body.contains("\"cache\""), "{body}");

    // /account/<hex40>: busiest account, limit applies to the tail.
    let (account, total) = engine
        .postings()
        .iter_accounts()
        .max_by_key(|(_, o)| o.len())
        .map(|(a, o)| (*a, o.len()))
        .expect("non-empty archive");
    let account_hex = hex::encode(account.as_bytes());
    let (status, body) = get(addr, &format!("/account/{account_hex}?limit=5"));
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"total\": {total}")), "{body}");
    assert_eq!(body.matches("\"offset\":").count(), 5.min(total), "{body}");

    // /range over the archive's real time bounds.
    let (lo, hi) = engine.time_bounds().expect("bounds");
    let (status, body) = get(
        addr,
        &format!(
            "/range?from={}&to={}&limit=25",
            lo.seconds(),
            hi.seconds() + 1
        ),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"returned\": 25"), "{body}");

    // /flow for a (currency, day) class that exists.
    let (&(currency, day), stat) = engine
        .postings()
        .iter_flows()
        .next()
        .expect("at least one flow class");
    let (status, body) = get(addr, &format!("/flow?currency={currency}&day={day}"));
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("\"payments\": {}", stat.payments)),
        "{body}"
    );

    // /class with a full-resolution observation taken from a real payment:
    // its sender must be among the candidates.
    let arena = engine.payment_arena();
    let p = &arena[arena.len() / 2];
    let (status, body) = get(
        addr,
        &format!(
            "/class?amount={}&time={}&currency={}&dest={}&spec=m,sc,c,d",
            p.amount,
            p.timestamp.seconds(),
            p.currency,
            hex::encode(p.destination.as_bytes())
        ),
    );
    assert_eq!(status, 200);
    assert!(body.contains(&hex::encode(p.sender.as_bytes())), "{body}");

    // Errors stay structured.
    let (status, body) = get(addr, "/flow?currency=USD");
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""), "{body}");
    let (status, _) = get(addr, "/no-such");
    assert_eq!(status, 404);

    server.shutdown();
}

/// The engine's indexed account history equals a full linear rescan for
/// a sample of accounts, through the archive actually served above.
#[test]
fn indexed_history_matches_linear_rescan() {
    let (engine, _) =
        QueryEngine::open(archive().to_vec(), &EngineConfig::default()).expect("engine open");
    let table = account_table();
    for (account, offsets) in table.iter().step_by(table.len() / 16 + 1) {
        let indexed = engine
            .account_history(account, usize::MAX)
            .expect("indexed history");
        let rescan = engine
            .rescan_account_history(account)
            .expect("linear rescan");
        assert_eq!(indexed, rescan, "{}", hex::encode(account.as_bytes()));
        assert_eq!(indexed.len(), offsets.len());
    }
}
