//! Golden determinism for the E18 liquidity suite: the deterministic
//! report section of `BENCH_liquidity.json` must be byte-identical
//! across repeat runs and across pipeline worker counts. Wall-clock data
//! lives only in the separate `perf` section, which this test never
//! compares.

use ripple_core::liquidity::{run_liquidity, LiquidityConfig};
use ripple_core::synth::PipelineConfig;
use ripple_core::{Generator, SynthConfig};

fn report_bytes(workers: usize) -> String {
    let config = SynthConfig {
        seed: 20130101,
        ..SynthConfig::small(2_000)
    };
    let run = Generator::new(config)
        .run_pipelined(&PipelineConfig {
            workers,
            chunk_size: 512,
            ..PipelineConfig::default()
        })
        .expect("pipeline");
    let liquidity = LiquidityConfig {
        probes: 128,
        oracle_sample: 8,
        ..LiquidityConfig::default()
    };
    run_liquidity(&run.output, &liquidity).report.to_json()
}

#[test]
fn liquidity_report_bytes_stable_across_workers_and_repeats() {
    let golden = report_bytes(1);
    assert!(golden.contains("\"experiment\": \"liquidity\""));
    assert!(golden.contains("\"oracle_violations\": 0"));
    for workers in [2, 8, 1] {
        assert_eq!(
            report_bytes(workers),
            golden,
            "liquidity report must not depend on worker count ({workers})"
        );
    }
}

#[test]
fn serial_generation_report_is_repeatable() {
    let serial = |seed: u64| {
        let config = SynthConfig {
            seed,
            ..SynthConfig::small(2_000)
        };
        let output = Generator::new(config).run();
        let liquidity = LiquidityConfig {
            probes: 128,
            oracle_sample: 8,
            ..LiquidityConfig::default()
        };
        run_liquidity(&output, &liquidity).report.to_json()
    };
    assert_eq!(serial(20130101), serial(20130101));
    assert_ne!(serial(20130101), serial(20130102), "seed must matter");
}
