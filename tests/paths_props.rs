//! Property tests for the capacity-aware path machinery: the residual
//! overlay's netting, hop-capacity safety of every returned plan, the
//! search limits, and the router cache's invalidation discipline.
//!
//! The strategy generates small random credit networks (accounts, trust
//! lines, pre-existing debt pushed through real `ripple_hop`s) plus
//! payment queries, then checks the properties the differential `router`
//! target also enforces — here with proptest-level case diversity and
//! direct assertions instead of oracle comparison.

use proptest::collection::vec;
use proptest::prelude::*;

use ripple_core::crypto::AccountId;
use ripple_core::ledger::{Currency, Drops, LedgerState, Value};
use ripple_core::paths::{find_payment_paths, PathLimits, Router};

fn acct(n: u8) -> AccountId {
    AccountId::from_bytes([n; 20])
}

fn currency(n: u8) -> Currency {
    [Currency::USD, Currency::EUR, Currency::BTC][(n % 3) as usize]
}

/// Builds a ledger from generated parts: every account funded, trust
/// lines and debt applied through the real mutation paths (failed hops
/// are simply skipped, like the differential harness does).
fn build_state(
    accounts: u8,
    trust: &[(u8, u8, u8, i128)],
    hops: &[(u8, u8, u8, i128)],
) -> LedgerState {
    let mut state = LedgerState::new();
    for i in 0..accounts {
        state.create_account(acct(i), Drops::new(1_000_000_000));
    }
    for &(truster, trustee, cur, limit) in trust {
        let _ = state.set_trust(
            acct(truster % accounts),
            acct(trustee % accounts),
            currency(cur),
            Value::from_raw(limit),
        );
    }
    for &(from, to, cur, amount) in hops {
        let _ = state.ripple_hop(
            acct(from % accounts),
            acct(to % accounts),
            currency(cur),
            Value::from_raw(amount),
        );
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every plan the search returns replays hop by hop through the real
    /// capacity-checked `ripple_hop` — reservations across parallel paths
    /// (including bidirectional netting) never promise capacity the
    /// ledger does not have.
    #[test]
    fn plans_replay_within_capacity(
        accounts in 3u8..=6,
        trust in vec((0u8..6, 0u8..6, 0u8..3, 1i128..50_000_000), 4..14),
        hops in vec((0u8..6, 0u8..6, 0u8..3, 1i128..20_000_000), 0..6),
        sender in 0u8..6,
        destination in 0u8..6,
        cur in 0u8..3,
        amount in 1i128..40_000_000,
    ) {
        let state = build_state(accounts, &trust, &hops);
        let sender = acct(sender % accounts);
        let destination = acct(destination % accounts);
        if sender == destination {
            continue;
        }
        let limits = PathLimits::default();
        let paths = find_payment_paths(
            &state, sender, destination, currency(cur), Value::from_raw(amount), limits,
        );
        let mut replayed = state.clone();
        let mut carried = Value::ZERO;
        for path in &paths {
            prop_assert!(path.amount.is_positive(), "paths carry positive value");
            prop_assert!(
                path.intermediates.len() <= limits.max_hops,
                "max_hops respected"
            );
            let mut chain = vec![sender];
            chain.extend(path.intermediates.iter().copied());
            chain.push(destination);
            for pair in chain.windows(2) {
                replayed
                    .ripple_hop(pair[0], pair[1], currency(cur), path.amount)
                    .expect("reserved capacity must exist on the ledger");
            }
            carried = carried + path.amount;
        }
        prop_assert!(paths.len() <= limits.max_paths, "max_paths respected");
        prop_assert!(carried <= Value::from_raw(amount), "never over-delivers");
    }

    /// The cached router and the cache-off search agree on every query of
    /// a multi-query stream, including after trust mutations between
    /// queries (stamp-based invalidation must behave as a cold cache).
    #[test]
    fn router_matches_cold_search_across_mutations(
        accounts in 3u8..=6,
        trust in vec((0u8..6, 0u8..6, 0u8..3, 1i128..50_000_000), 4..14),
        hops in vec((0u8..6, 0u8..6, 0u8..3, 1i128..20_000_000), 0..6),
        queries in vec(
            // (sender, destination, currency, amount, mutate?, truster, trustee, new limit)
            (0u8..6, 0u8..6, 0u8..3, 1i128..40_000_000, 0u8..2, 0u8..6, 0u8..6, 0i128..50_000_000),
            1..6,
        ),
    ) {
        let mut state = build_state(accounts, &trust, &hops);
        let limits = PathLimits::default();
        let mut router = Router::new(limits);
        for (sender, destination, cur, amount, mutate, truster, trustee, limit) in queries {
            if mutate == 1 {
                let _ = state.set_trust(
                    acct(truster % accounts),
                    acct(trustee % accounts),
                    currency(cur),
                    Value::from_raw(limit),
                );
            }
            let sender = acct(sender % accounts);
            let destination = acct(destination % accounts);
            if sender == destination {
                continue;
            }
            let cached = router.route(
                &state, sender, destination, currency(cur), Value::from_raw(amount),
            );
            let cold = find_payment_paths(
                &state, sender, destination, currency(cur), Value::from_raw(amount), limits,
            );
            prop_assert_eq!(cached, cold, "cache must be invisible");
        }
    }

    /// `deliverable` is monotone under trust growth: raising a limit
    /// never shrinks what the router says it can deliver (capacity is
    /// never driven negative by cache reuse), and is never negative.
    #[test]
    fn deliverable_monotone_under_trust_growth(
        accounts in 3u8..=6,
        trust in vec((0u8..6, 0u8..6, 0u8..3, 1i128..50_000_000), 4..14),
        hops in vec((0u8..6, 0u8..6, 0u8..3, 1i128..20_000_000), 0..6),
        sender in 0u8..6,
        destination in 0u8..6,
        cur in 0u8..3,
        bump in 1i128..50_000_000,
    ) {
        let mut state = build_state(accounts, &trust, &hops);
        let sender = acct(sender % accounts);
        let destination = acct(destination % accounts);
        if sender == destination {
            continue;
        }
        let mut router = Router::new(PathLimits::default());
        let before = router.deliverable(&state, sender, destination, currency(cur));
        prop_assert!(!before.is_negative(), "deliverable is never negative");
        // Raise the first trust line in the queried currency (if any) and
        // re-ask the same router instance.
        let line = trust.iter().find(|&&(_, _, c, _)| currency(c) == currency(cur));
        if let Some(&(truster, trustee, line_cur, limit)) = line {
            let _ = state.set_trust(
                acct(truster % accounts),
                acct(trustee % accounts),
                currency(line_cur),
                Value::from_raw(limit.saturating_add(bump)),
            );
            let after = router.deliverable(&state, sender, destination, currency(cur));
            prop_assert!(after >= before, "trust growth cannot reduce liquidity");
        }
    }
}
