//! Determinism and structure guarantees of the pipelined generator.
//!
//! The pipeline's contract: for a fixed configuration, the generated
//! history — events, analytics tallies, and encoded archive bytes — is
//! identical for every scripting worker count and across repeat runs.
//! Chunked scripting must also respect the ledger page grid: no page (and
//! hence no MTL burst or ACCOUNT_ZERO ping-pong pair, which always share a
//! page) may straddle a chunk boundary.

use proptest::prelude::*;

use ripple_core::crypto::sha512_half;
use ripple_core::synth::{plan_history, PipelineConfig, PipelineRun, ScriptedBody};
use ripple_core::{Generator, Study, SynthConfig};

fn pipelined(payments: usize, seed: u64, workers: usize) -> PipelineRun {
    pipelined_exec(payments, seed, workers, 1)
}

fn pipelined_exec(payments: usize, seed: u64, workers: usize, exec_workers: usize) -> PipelineRun {
    let config = SynthConfig {
        seed,
        ..SynthConfig::small(payments)
    };
    Generator::new(config)
        .run_pipelined(&PipelineConfig {
            workers,
            chunk_size: 512,
            archive: true,
            exec_workers,
            ..PipelineConfig::default()
        })
        .expect("pipeline")
}

#[test]
fn golden_history_identical_across_worker_counts_and_repeats() {
    let runs: Vec<PipelineRun> = [1, 2, 8, 2]
        .into_iter()
        .map(|workers| pipelined(4_000, 20130101, workers))
        .collect();
    let golden = &runs[0];
    let golden_digest = sha512_half(golden.archive.as_ref().expect("archive on"));
    assert_eq!(golden.output.payments().count(), 4_000);
    for run in &runs[1..] {
        assert_eq!(
            run.output.events, golden.output.events,
            "event stream must not depend on worker count"
        );
        assert_eq!(
            sha512_half(run.archive.as_ref().expect("archive on")),
            golden_digest,
            "archive bytes must not depend on worker count"
        );
        assert_eq!(run.tallies.payments, golden.tallies.payments);
        assert_eq!(run.tallies.currency_counts, golden.tallies.currency_counts);
        assert_eq!(run.tallies.hop_histogram, golden.tallies.hop_histogram);
        assert_eq!(
            run.tallies.parallel_histogram,
            golden.tallies.parallel_histogram
        );
        assert_eq!(run.arena.len(), golden.arena.len());
    }
}

#[test]
fn golden_history_identical_across_exec_worker_counts() {
    let serial = pipelined_exec(4_000, 20130101, 2, 1);
    let golden_digest = sha512_half(serial.archive.as_ref().expect("archive on"));
    assert_eq!(
        serial.bench.conflicts, 0,
        "serial path reports no conflicts"
    );
    for exec_workers in [2, 8] {
        let run = pipelined_exec(4_000, 20130101, 2, exec_workers);
        assert_eq!(
            run.output.events, serial.output.events,
            "event stream must not depend on exec-worker count ({exec_workers})"
        );
        assert_eq!(
            sha512_half(run.archive.as_ref().expect("archive on")),
            golden_digest,
            "archive bytes must not depend on exec-worker count ({exec_workers})"
        );
        assert_eq!(run.tallies.payments, serial.tallies.payments);
        assert_eq!(run.tallies.currency_counts, serial.tallies.currency_counts);
        assert_eq!(run.tallies.hop_histogram, serial.tallies.hop_histogram);
        assert_eq!(
            run.tallies.parallel_histogram,
            serial.tallies.parallel_histogram
        );
        assert_eq!(run.bench.exec_workers, exec_workers);
    }
}

/// Adversarial conflict load: one community with a single gateway funnels
/// every IOU payment through the same hub accounts, so almost every
/// speculated chunk collides with its predecessors. The parallel executor
/// must still converge (serial repair) and match the serial history.
#[test]
fn conflict_heavy_hub_traffic_still_matches_serial() {
    let config = SynthConfig {
        seed: 42,
        communities: 1,
        gateways_per_community: 1,
        ..SynthConfig::small(2_000)
    };
    let run = |exec_workers: usize| {
        Generator::new(config.clone())
            .run_pipelined(&PipelineConfig {
                workers: 2,
                chunk_size: 256,
                archive: true,
                exec_workers,
                ..PipelineConfig::default()
            })
            .expect("pipeline")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.output.events, parallel.output.events);
    assert_eq!(
        sha512_half(serial.archive.as_ref().expect("archive on")),
        sha512_half(parallel.archive.as_ref().expect("archive on")),
    );
    assert!(
        parallel.bench.conflicts > 0,
        "hub traffic must actually collide (got {} conflicts)",
        parallel.bench.conflicts
    );
}

#[test]
fn pipelined_study_answers_match_a_full_rescan() {
    let run = pipelined(3_000, 7, 4);
    let study = Study::from_pipeline(run);
    let rescan = ripple_core::analytics::currency_usage(study.output().payments());
    assert_eq!(study.figure4(), rescan);
    assert_eq!(
        study.figure6a(),
        ripple_core::analytics::path_hop_histogram(study.output().payments())
    );
    assert_eq!(
        study.figure6b(),
        ripple_core::analytics::parallel_path_histogram(study.output().payments())
    );
    for (currency, curve) in study.figure5() {
        let rebuilt =
            ripple_core::analytics::SurvivalCurve::build(study.output().payments(), currency);
        assert_eq!(curve.len(), rebuilt.len(), "{currency:?}");
        assert_eq!(curve.series(), rebuilt.series(), "{currency:?}");
    }
}

#[test]
fn pipelined_study_shares_one_arena() {
    let run = pipelined(2_000, 9, 2);
    let study = Study::from_pipeline(run);
    let a = study.payment_arena();
    let b = study.payment_arena();
    assert!(std::sync::Arc::ptr_eq(&a, &b), "arena must be shared");
    assert_eq!(a.len(), 2_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chunk windows are separated by at least one page, so no ledger page
    /// — and therefore no MTL burst and no ACCOUNT_ZERO ping-pong pair,
    /// which by construction stay on one page — ever spans two chunks.
    #[test]
    fn chunk_boundaries_never_split_pages_or_bursts(
        payments in 800usize..2_500,
        chunk_size in 128usize..512,
        seed in 0u64..1_000_000,
    ) {
        let config = SynthConfig { seed, ..SynthConfig::small(payments) };
        let page = config.page_interval_secs.max(1);
        let (_cast, chunks) = plan_history(&config, 2, chunk_size);

        let total: usize = chunks.iter().map(|c| c.entries.len()).sum();
        prop_assert_eq!(total, payments);

        let mut prev_chunk_last = None;
        for chunk in &chunks {
            prop_assert!(!chunk.entries.is_empty());
            let mut prev = None;
            let mut outs_seen = 0usize;
            for (i, entry) in chunk.entries.iter().enumerate() {
                // Page-grid alignment and in-chunk monotonicity.
                prop_assert_eq!(
                    (entry.timestamp.seconds() - config.start.seconds()) % page,
                    0
                );
                if let Some(p) = prev {
                    prop_assert!(entry.timestamp >= p);
                }
                // The ping-pong phase restarts in every chunk, so a
                // bounce-back never depends on an outbound leg from another
                // chunk, and it always lands on the page its predecessor
                // opened (a bounce never advances the clock).
                match &entry.body {
                    ScriptedBody::ZeroOut { .. } => outs_seen += 1,
                    ScriptedBody::ZeroBack { .. } => {
                        prop_assert!(i > 0, "bounce-back cannot open a chunk");
                        prop_assert!(
                            outs_seen > 0,
                            "bounce-back without any outbound leg in its chunk"
                        );
                        prop_assert_eq!(prev, Some(entry.timestamp));
                    }
                    _ => {}
                }
                prev = Some(entry.timestamp);
            }
            // The chunk's first page starts strictly after the previous
            // chunk's last page: pages never straddle chunks, so no MTL
            // burst (whose members share a page) is ever split.
            if let Some(last) = prev_chunk_last {
                prop_assert!(
                    chunk.entries[0].timestamp > last,
                    "chunk {} reuses the previous chunk's page",
                    chunk.index
                );
            }
            prev_chunk_last = prev;
        }
    }

    /// The scripted plan itself (not just the executed history) is
    /// identical for any worker count.
    #[test]
    fn script_is_identical_for_any_worker_count(
        payments in 500usize..1_500,
        seed in 0u64..1_000_000,
    ) {
        let config = SynthConfig { seed, ..SynthConfig::small(payments) };
        let (_, one) = plan_history(&config, 1, 256);
        let (_, three) = plan_history(&config, 3, 256);
        prop_assert_eq!(one, three);
    }
}
