//! Property tests for the fixed-point amount arithmetic the whole study
//! leans on: saturation instead of panics at the `i128` endpoints,
//! exact rate application, and the Table-I strength-rounding grid.

use proptest::prelude::*;

use ripple_core::deanon::{AmountResolution, CurrencyStrength};
use ripple_core::ledger::{Currency, Drops, Value};

/// The raws where arithmetic is exact (no saturation): well inside i128.
const EXACT: std::ops::Range<i128> = -(1i128 << 100)..(1i128 << 100);

#[test]
fn endpoint_raws_never_panic() {
    // Every public operation must degrade (saturate) at the raw endpoints,
    // never abort: adversarial inputs reach this code through offers.
    for raw in [i128::MIN, i128::MIN + 1, -1, 0, 1, i128::MAX - 1, i128::MAX] {
        let v = Value::from_raw(raw);
        let _ = v + v;
        let _ = v - v;
        let _ = -v;
        let _ = v.abs();
        let _ = v.mul_ratio(u64::MAX, 1);
        let _ = v.mul_ratio(u64::MAX, u64::MAX);
        let _ = v.mul_ratio(1, u64::MAX);
        let _ = v.to_f64();
        let _ = v.to_string();
        for exp in -9i32..=45 {
            let _ = v.round_to_pow10(exp);
        }
    }
}

#[test]
fn saturation_is_directional() {
    let top = Value::from_raw(i128::MAX);
    let bottom = Value::from_raw(i128::MIN);
    assert_eq!(top + Value::ONE, top, "positive overflow pins to MAX");
    assert_eq!(bottom - Value::ONE, bottom, "negative overflow pins to MIN");
    assert_eq!(-bottom, top, "negating MIN saturates to MAX");
    assert_eq!(bottom.abs(), top);
}

#[test]
fn giant_rounding_exponents_collapse_to_zero() {
    // 10³⁹ exceeds every representable value, so the closest multiple is 0
    // for any input — including the endpoints.
    for raw in [i128::MIN, -1, 1, i128::MAX] {
        assert_eq!(Value::from_raw(raw).round_to_pow10(39), Value::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Addition is associative and commutative while no sum saturates.
    #[test]
    fn addition_associates_in_range(a in EXACT, b in EXACT, c in EXACT) {
        let (va, vb, vc) = (Value::from_raw(a), Value::from_raw(b), Value::from_raw(c));
        prop_assert_eq!((va + vb) + vc, va + (vb + vc));
        prop_assert_eq!(va + vb, vb + va);
        prop_assert_eq!(va + vb - vb, va);
    }

    /// `mul_ratio`'s decomposed form equals the full-width `a·n/d`
    /// (truncated toward zero) whenever the latter fits in i128.
    #[test]
    fn mul_ratio_matches_full_width_product(
        raw in -1_000_000_000_000_000_000i128..1_000_000_000_000_000_000,
        num in 1u64..1_000_000_000,
        den in 1u64..1_000_000_000,
    ) {
        let expect = raw * num as i128 / den as i128;
        prop_assert_eq!(Value::from_raw(raw).mul_ratio(num, den).raw(), expect);
    }

    /// Rate application is monotone: a bigger input never buys less.
    #[test]
    fn mul_ratio_is_monotone(
        a in 0i128..1_000_000_000_000_000,
        b in 0i128..1_000_000_000_000_000,
        num in 1u64..1_000_000, den in 1u64..1_000_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Value::from_raw(lo).mul_ratio(num, den) <= Value::from_raw(hi).mul_ratio(num, den)
        );
    }

    /// Identity and inverse-pair rates round-trip exactly.
    #[test]
    fn mul_ratio_identity(raw in EXACT, k in 1u64..1_000_000) {
        let v = Value::from_raw(raw);
        prop_assert_eq!(v.mul_ratio(k, k), v);
        prop_assert_eq!(v.mul_ratio(1, 1), v);
    }

    /// Table-I rounding is idempotent, snaps to the grid, and its error is
    /// at most half the grid step — for every resolution × strength cell.
    #[test]
    fn table1_rounding_grid_properties(raw in -1_000_000_000_000_000i128..1_000_000_000_000_000) {
        let v = Value::from_raw(raw);
        for resolution in AmountResolution::all() {
            for strength in [
                CurrencyStrength::Powerful,
                CurrencyStrength::Medium,
                CurrencyStrength::Weak,
            ] {
                let rounded = resolution.round_for(strength, v);
                prop_assert_eq!(
                    resolution.round_for(strength, rounded), rounded,
                    "idempotent at {:?}/{:?}", resolution, strength
                );
                let exp = resolution.exponent_for(strength);
                let step = 10i128.pow((exp + 6).max(0) as u32);
                prop_assert_eq!(rounded.raw() % step, 0, "on the 10^{} grid", exp);
                prop_assert!(
                    (rounded.raw() - v.raw()).abs() * 2 <= step,
                    "error within half a step at {:?}/{:?}", resolution, strength
                );
            }
        }
    }

    /// The strength-keyed grid is exactly the per-currency grid: an
    /// attacker who only knows "what kind of money" rounds identically.
    #[test]
    fn strength_rounding_matches_currency_rounding(raw in -1_000_000_000_000i128..1_000_000_000_000) {
        let v = Value::from_raw(raw);
        for currency in [Currency::BTC, Currency::USD, Currency::EUR, Currency::XRP, Currency::CCK] {
            for resolution in AmountResolution::all() {
                prop_assert_eq!(
                    resolution.round(currency, v),
                    resolution.round_for(CurrencyStrength::of(currency), v)
                );
            }
        }
    }

    /// Coarser resolutions never sharpen: re-rounding a coarse value at the
    /// same level is stable even when reached via the finer level first.
    #[test]
    fn coarse_absorbs_fine(raw in -1_000_000_000_000i128..1_000_000_000_000) {
        let v = Value::from_raw(raw);
        for strength in [
            CurrencyStrength::Powerful,
            CurrencyStrength::Medium,
            CurrencyStrength::Weak,
        ] {
            let fine = AmountResolution::Maximum.round_for(strength, v);
            let coarse = AmountResolution::Low.round_for(strength, v);
            // Low's grid contains fine's grid (two orders coarser), so the
            // coarse fingerprint of the fine value stays on Low's grid.
            let via_fine = AmountResolution::Low.round_for(strength, fine);
            let step = 10i128.pow((AmountResolution::Low.exponent_for(strength) + 6).max(0) as u32);
            prop_assert_eq!(via_fine.raw() % step, 0);
            prop_assert!((via_fine.raw() - coarse.raw()).abs() <= step);
        }
    }

    /// Display/parse round-trips, including rounded fingerprint values.
    #[test]
    fn display_parse_round_trip(raw in -1_000_000_000_000_000i128..1_000_000_000_000_000, exp in -6i32..8) {
        let v = Value::from_raw(raw).round_to_pow10(exp);
        let parsed: Value = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// Drops convert into `Value` XRP units losslessly and never panic on
    /// checked arithmetic.
    #[test]
    fn drops_to_value_is_exact(drops in 0u64..u64::MAX) {
        let d = Drops::new(drops);
        prop_assert_eq!(d.to_value().raw(), drops as i128);
        prop_assert!(d.checked_add(Drops::new(u64::MAX)).is_none() || drops == 0);
        prop_assert_eq!(d.checked_sub(d), Some(Drops::ZERO));
    }
}
