//! End-to-end tests for the live networked validator (`crates/node`).
//!
//! Two tiers: an in-process cluster that runs real [`Node`] event loops on
//! threads over localhost TCP (always runs, no child processes), and a
//! live-process harness test that spawns actual `ripple-node` binaries and
//! SIGKILLs one mid-round (skips with a note when the binary has not been
//! built yet — CI builds it first).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};

use ripple_core::crypto::Digest256;
use ripple_core::netsim::{FaultPlan, NodeId, SimTime};
use ripple_core::node::{run_cluster, unix_ms, ClusterConfig, Node, NodeConfig, NodeReport};

/// Grabs `n` distinct localhost ports. The listeners are held open while
/// the addresses are read, then dropped just before the nodes rebind.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    holds
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

/// Boots `n` in-process validators sharing one epoch and runs them to
/// completion on threads. Returns each node's own report.
fn run_threaded_cluster(n: usize, rounds: u64, round_ms: u64) -> Vec<NodeReport> {
    let addrs = free_addrs(n);
    let epoch_ms = unix_ms() + 300;
    let handles: Vec<_> = (0..n)
        .map(|id| {
            let peers: Vec<(u32, SocketAddr)> = (0..n)
                .filter(|&p| p != id)
                .map(|p| (p as u32, addrs[p]))
                .collect();
            let cfg = NodeConfig {
                id: id as u32,
                listen: addrs[id],
                peers,
                feed: None,
                validators: n,
                rounds,
                round_ms,
                epoch_ms,
                seed: 7,
                backoff: Default::default(),
                admin: None,
            };
            let node = Node::bind(cfg).expect("bind node");
            std::thread::spawn(move || node.run().expect("node run"))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect()
}

#[test]
fn threaded_cluster_commits_every_round_with_one_page() {
    let n = 3;
    let rounds = 5;
    let reports = run_threaded_cluster(n, rounds, 250);

    // Every validator finalizes every round and collects a quorum.
    for report in &reports {
        assert_eq!(
            report.rounds.len(),
            rounds as usize,
            "node {} finalized {} rounds",
            report.id,
            report.rounds.len()
        );
        for local in &report.rounds {
            assert!(
                local.committed,
                "node {} round {} did not commit (agreement {}‰, {} links)",
                report.id, local.round, local.agreement_milli, local.connected
            );
            assert!(!local.degraded, "fault-free round ran degraded");
        }
        assert!(report.telemetry.frames_sent > 0);
        assert!(report.telemetry.frames_received > 0);
        assert_eq!(report.telemetry.crc_errors, 0, "clean wire corrupted");
    }

    // No fork: all validators sealed the same page for each round.
    let mut pages: BTreeMap<u64, Digest256> = BTreeMap::new();
    for report in &reports {
        for local in &report.rounds {
            let seen = pages.entry(local.round).or_insert(local.page);
            assert_eq!(
                *seen, local.page,
                "round {} sealed two different pages",
                local.round
            );
        }
    }
    assert_eq!(pages.len(), rounds as usize);
}

#[test]
fn threaded_pair_survives_without_quorum_problems() {
    // The smallest cluster: 2 validators, quorum = 2. Both links must
    // hold for every round to commit — a supervision smoke at minimum
    // scale.
    let reports = run_threaded_cluster(2, 4, 200);
    for report in &reports {
        assert_eq!(report.rounds.len(), 4);
        assert!(report.rounds.iter().all(|r| r.committed));
    }
}

/// A scratch directory for flight dumps that cleans up on drop.
struct FlightDir(std::path::PathBuf);

impl FlightDir {
    fn new(tag: &str) -> FlightDir {
        let dir = std::env::temp_dir().join(format!("ripple_e2e_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create flight dir");
        FlightDir(dir)
    }
}

impl Drop for FlightDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn live_process_cluster_survives_kill9_of_one_validator() {
    let flights = FlightDir::new("kill9");
    let r = 250u64;
    let cfg = ClusterConfig {
        validators: 3,
        rounds: 8,
        round_ms: r,
        sim_round_ms: r,
        seed: 11,
        plan: FaultPlan::new()
            .crash_at(SimTime::from_millis(2 * r + r / 2), NodeId(2))
            .restart_at(SimTime::from_millis(4 * r), NodeId(2)),
        flight_dir: Some(flights.0.clone()),
        ..ClusterConfig::default()
    };
    let report = match run_cluster(&cfg) {
        Ok(report) => report,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // `cargo test` does not guarantee the ripple-node binary is
            // built before this integration test runs; CI's node-smoke
            // job covers the spawned-process path unconditionally.
            eprintln!("skipping live-process test: {e}");
            return;
        }
        Err(e) => panic!("cluster launch failed: {e}"),
    };

    assert!(report.no_fork, "fork: {:?}", report.fork);
    assert!(!report.rounds.is_empty(), "feed saw no rounds");
    assert!(report.committed_rounds > 0, "no round ever committed");
    assert!(
        report.rounds_to_recover.is_some(),
        "cluster never recovered after the restart"
    );
    let total = report.telemetry_total();
    assert!(
        total.reconnect_attempts > 0,
        "reconnect paths were never exercised"
    );
    assert!(
        total.state_resubs > 0,
        "restarted node never resubscribed state"
    );
    assert!(
        report
            .actions_log
            .iter()
            .filter(|l| l.contains("kill") || l.contains("restart node"))
            .count()
            >= 2,
        "kill + restart should both fire: {:?}",
        report.actions_log
    );
}

#[test]
fn killed_node_leaves_a_parseable_flight_recording() {
    use ripple_core::obs::json::{parse, Value};

    let flights = FlightDir::new("flight");
    let r = 250u64;
    let victim = 2u64;
    let cfg = ClusterConfig {
        validators: 3,
        rounds: 6,
        round_ms: r,
        sim_round_ms: r,
        seed: 23,
        // Kill mid-round-2 and never restart: the only way a
        // FLIGHT_2.json can exist is the harness's admin-plane snapshot.
        plan: FaultPlan::new()
            .crash_at(SimTime::from_millis(2 * r + r / 2), NodeId(victim as usize)),
        flight_dir: Some(flights.0.clone()),
        ..ClusterConfig::default()
    };
    let report = match run_cluster(&cfg) {
        Ok(report) => report,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!("skipping live-process test: {e}");
            return;
        }
        Err(e) => panic!("cluster launch failed: {e}"),
    };

    // The telemetry plane ran: per-node summaries and a merged trace.
    assert_eq!(report.admin.len(), 3);
    let trace = report.cluster_trace.as_deref().expect("merged trace");
    let doc = parse(trace).expect("cluster trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents");
    assert!(!events.is_empty(), "no trace events collected");
    // Survivor round spans made it into the merged document.
    let round_spans = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(Value::as_str) == Some("round")
                && e.get("ph").and_then(Value::as_str) == Some("X")
        })
        .count();
    assert!(round_spans > 0, "no round spans in merged trace");

    // The victim's flight recording exists, parses, and covers the
    // rounds right up to the kill (~round 2).
    let path = flights.0.join(format!("FLIGHT_{victim}.json"));
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("flight dump missing at {}: {e}", path.display()));
    let flight = parse(&body).expect("flight dump parses");
    assert_eq!(
        flight.get("node").and_then(Value::as_str),
        Some(victim.to_string().as_str())
    );
    assert!(flight.get("reason").and_then(Value::as_str).is_some());
    let entries = flight
        .get("entries")
        .and_then(|v| v.as_arr())
        .expect("entries");
    assert!(!entries.is_empty(), "flight ring was empty");
    let max_round = entries
        .iter()
        .filter_map(|e| e.get("round").and_then(Value::as_u64))
        .max()
        .expect("no round-tagged flight entries");
    assert!(
        max_round >= 1,
        "flight recording stops before the kill round (max round {max_round})"
    );

    // The kill shows up as a poll gap on the victim's probe, not a stall:
    // the run still finishes and survivors keep reporting.
    assert!(
        report.admin[victim as usize].gaps > 0,
        "dead node's unreachable admin endpoint should be recorded as gaps"
    );
    assert!(report.committed_rounds > 0);
}
