//! End-to-end tests for the live networked validator (`crates/node`).
//!
//! Two tiers: an in-process cluster that runs real [`Node`] event loops on
//! threads over localhost TCP (always runs, no child processes), and a
//! live-process harness test that spawns actual `ripple-node` binaries and
//! SIGKILLs one mid-round (skips with a note when the binary has not been
//! built yet — CI builds it first).

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};

use ripple_core::crypto::Digest256;
use ripple_core::netsim::{FaultPlan, NodeId, SimTime};
use ripple_core::node::{run_cluster, unix_ms, ClusterConfig, Node, NodeConfig, NodeReport};

/// Grabs `n` distinct localhost ports. The listeners are held open while
/// the addresses are read, then dropped just before the nodes rebind.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    holds
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

/// Boots `n` in-process validators sharing one epoch and runs them to
/// completion on threads. Returns each node's own report.
fn run_threaded_cluster(n: usize, rounds: u64, round_ms: u64) -> Vec<NodeReport> {
    let addrs = free_addrs(n);
    let epoch_ms = unix_ms() + 300;
    let handles: Vec<_> = (0..n)
        .map(|id| {
            let peers: Vec<(u32, SocketAddr)> = (0..n)
                .filter(|&p| p != id)
                .map(|p| (p as u32, addrs[p]))
                .collect();
            let cfg = NodeConfig {
                id: id as u32,
                listen: addrs[id],
                peers,
                feed: None,
                validators: n,
                rounds,
                round_ms,
                epoch_ms,
                seed: 7,
                backoff: Default::default(),
            };
            let node = Node::bind(cfg).expect("bind node");
            std::thread::spawn(move || node.run().expect("node run"))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect()
}

#[test]
fn threaded_cluster_commits_every_round_with_one_page() {
    let n = 3;
    let rounds = 5;
    let reports = run_threaded_cluster(n, rounds, 250);

    // Every validator finalizes every round and collects a quorum.
    for report in &reports {
        assert_eq!(
            report.rounds.len(),
            rounds as usize,
            "node {} finalized {} rounds",
            report.id,
            report.rounds.len()
        );
        for local in &report.rounds {
            assert!(
                local.committed,
                "node {} round {} did not commit (agreement {}‰, {} links)",
                report.id, local.round, local.agreement_milli, local.connected
            );
            assert!(!local.degraded, "fault-free round ran degraded");
        }
        assert!(report.telemetry.frames_sent > 0);
        assert!(report.telemetry.frames_received > 0);
        assert_eq!(report.telemetry.crc_errors, 0, "clean wire corrupted");
    }

    // No fork: all validators sealed the same page for each round.
    let mut pages: BTreeMap<u64, Digest256> = BTreeMap::new();
    for report in &reports {
        for local in &report.rounds {
            let seen = pages.entry(local.round).or_insert(local.page);
            assert_eq!(
                *seen, local.page,
                "round {} sealed two different pages",
                local.round
            );
        }
    }
    assert_eq!(pages.len(), rounds as usize);
}

#[test]
fn threaded_pair_survives_without_quorum_problems() {
    // The smallest cluster: 2 validators, quorum = 2. Both links must
    // hold for every round to commit — a supervision smoke at minimum
    // scale.
    let reports = run_threaded_cluster(2, 4, 200);
    for report in &reports {
        assert_eq!(report.rounds.len(), 4);
        assert!(report.rounds.iter().all(|r| r.committed));
    }
}

#[test]
fn live_process_cluster_survives_kill9_of_one_validator() {
    let r = 250u64;
    let cfg = ClusterConfig {
        validators: 3,
        rounds: 8,
        round_ms: r,
        sim_round_ms: r,
        seed: 11,
        plan: FaultPlan::new()
            .crash_at(SimTime::from_millis(2 * r + r / 2), NodeId(2))
            .restart_at(SimTime::from_millis(4 * r), NodeId(2)),
        ..ClusterConfig::default()
    };
    let report = match run_cluster(&cfg) {
        Ok(report) => report,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // `cargo test` does not guarantee the ripple-node binary is
            // built before this integration test runs; CI's node-smoke
            // job covers the spawned-process path unconditionally.
            eprintln!("skipping live-process test: {e}");
            return;
        }
        Err(e) => panic!("cluster launch failed: {e}"),
    };

    assert!(report.no_fork, "fork: {:?}", report.fork);
    assert!(!report.rounds.is_empty(), "feed saw no rounds");
    assert!(report.committed_rounds > 0, "no round ever committed");
    assert!(
        report.rounds_to_recover.is_some(),
        "cluster never recovered after the restart"
    );
    let total = report.telemetry_total();
    assert!(
        total.reconnect_attempts > 0,
        "reconnect paths were never exercised"
    );
    assert!(
        total.state_resubs > 0,
        "restarted node never resubscribed state"
    );
    assert_eq!(
        report.actions_log.len(),
        2,
        "kill + restart should both fire"
    );
}
