//! End-to-end guarantees of the `ripple-obs` observability layer.
//!
//! The contract under test: the *deterministic* slice of a metrics
//! snapshot (counters and histograms — logical quantities) is
//! byte-identical however many scripting workers drive the pipelined
//! generator, and an instrumented run emits spans for every pipeline
//! stage. Gauges and timers are scheduling-dependent by design and are
//! excluded from `deterministic_json`.
//!
//! The registry and the tracer are process-global, so the tests serialize
//! on one lock and reset state at each boundary.

use std::sync::Mutex;

use ripple_core::obs::{metrics, trace};
use ripple_core::synth::PipelineConfig;
use ripple_core::{Generator, SynthConfig};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn generate(workers: usize) {
    let config = SynthConfig {
        seed: 20130101,
        ..SynthConfig::small(3_000)
    };
    Generator::new(config)
        .run_pipelined(&PipelineConfig {
            workers,
            chunk_size: 512,
            archive: false,
            ..PipelineConfig::default()
        })
        .expect("pipeline");
}

#[test]
fn deterministic_snapshot_is_identical_across_worker_counts() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut docs = Vec::new();
    for workers in [1usize, 2, 8] {
        metrics::reset();
        metrics::set_enabled(true);
        generate(workers);
        let snap = metrics::snapshot();
        // The full snapshot must at least see the logical volume counters.
        assert_eq!(snap.counter("synth.exec.payments"), Some(3_000));
        assert!(snap.counter("synth.sink.encoded_bytes").unwrap_or(0) > 0);
        assert!(snap.counter("store.writer.frames").unwrap_or(0) > 0);
        docs.push((workers, snap.deterministic_json()));
    }
    metrics::set_enabled(false);
    let (_, golden) = &docs[0];
    assert!(golden.contains("\"schema_version\": 1"));
    for (workers, doc) in &docs[1..] {
        assert_eq!(
            doc, golden,
            "deterministic metrics must not depend on worker count ({workers} workers)"
        );
    }
}

#[test]
fn instrumented_run_emits_spans_for_every_pipeline_stage() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    metrics::reset();
    let _ = trace::drain(); // clear any prior buffer; drain() stops tracing
    trace::enable(trace::DEFAULT_CAPACITY);
    generate(2);
    let events = trace::drain();
    assert!(!events.is_empty(), "an instrumented run must produce spans");
    for stage in ["script_chunk", "exec_chunk", "encode_batch", "tally_batch"] {
        assert!(
            events.iter().any(|e| e.name == stage),
            "missing span for pipeline stage {stage}"
        );
    }
    // Spans carry monotonic non-negative timestamps and real durations.
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // The exported document is chrome://tracing's trace-event shape.
    let json = trace::to_chrome_json(&events);
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.contains("\"ph\": \"X\""));
}
