//! Integration tests for the extension studies, run against generated
//! histories rather than crafted fixtures.

use ripple_core::deanon::countermeasure::{ground_truth, link_wallets_by_habit, split_wallets};
use ripple_core::deanon::ResolutionSpec;
use ripple_core::ledger::{Currency, FeeSchedule};
use ripple_core::orderbook::{find_two_leg, BookSet};
use ripple_core::paths::{PaymentEngine, PaymentRequest, TransferFees};
use ripple_core::store::ArchiveIndex;
use ripple_core::{PaymentRecord, Study, SynthConfig};

fn study() -> Study {
    Study::generate(SynthConfig {
        seed: 31_337,
        ..SynthConfig::small(6_000)
    })
}

#[test]
fn archive_index_window_matches_linear_filter() {
    let study = study();
    let mut buf = Vec::new();
    study.output().write_archive(&mut buf).expect("write");
    let index = ArchiveIndex::build(&buf, 64).expect("time-ordered archive");
    assert_eq!(index.records() as usize, study.output().events.len());

    let (from, to) = {
        let payments = study.payments();
        let a = payments[payments.len() / 4].timestamp;
        let b = payments[3 * payments.len() / 4].timestamp;
        (a, b)
    };
    let windowed = index.scan_range(&buf, from, to).expect("scan");
    let linear = study
        .output()
        .events
        .iter()
        .filter(|e| e.timestamp() >= from && e.timestamp() < to)
        .count();
    assert_eq!(windowed.len(), linear);
    assert!(!windowed.is_empty());
}

#[test]
fn organic_books_offer_no_free_lunch() {
    // Market makers quote around a consistent mid-rate with a positive
    // spread on both sides, so round trips must cost money.
    let study = study();
    let books = BookSet::from_ledger(&study.output().final_state);
    assert!(books.total_offers() > 0, "resident offers exist");
    let skews = find_two_leg(
        &books,
        &[Currency::USD, Currency::EUR, Currency::BTC, Currency::CNY],
    );
    assert!(
        skews.is_empty(),
        "spread-quoted books are arbitrage-free: {skews:?}"
    );
}

#[test]
fn transfer_fees_route_payments_on_generated_topology() {
    let study = study();
    let mut state = study.output().final_state.clone();
    let cast = &study.output().cast;
    // Charge every gateway a 0.5% transfer rate.
    let mut fees = TransferFees::new();
    for gw in &cast.gateways {
        fees.set(gw.account, 50);
    }
    let engine = PaymentEngine::new().with_transfer_fees(fees);
    // A same-community payment: sender pays the gateway toll.
    let (sender, community) = cast.users[0];
    let currency = cast.community_currency[community];
    let destination = cast
        .users
        .iter()
        .find(|&&(u, c)| c == community && u != sender)
        .map(|&(u, _)| u)
        .expect("community has another member");
    let result = engine.pay(
        &mut state,
        &PaymentRequest {
            sender,
            destination,
            currency,
            amount: "5".parse().unwrap(),
            source_currency: None,
            send_max: None,
        },
    );
    match result {
        Ok(done) => {
            assert!(done.source_cost >= done.delivered, "tolls are non-negative");
            if done.paths[0]
                .iter()
                .any(|hop| cast.gateways.iter().any(|g| g.account == *hop))
            {
                assert!(
                    done.source_cost > done.delivered,
                    "routing through a tolled gateway must cost extra"
                );
            }
        }
        Err(e) => {
            // Acceptable only if the sender genuinely lacks capacity.
            let msg = e.to_string();
            assert!(
                msg.contains("routable") || msg.contains("cover"),
                "unexpected failure: {msg}"
            );
        }
    }
}

#[test]
fn wallet_split_on_generated_history_has_expected_tradeoffs() {
    let study = study();
    let records: Vec<PaymentRecord> = study.payments().into_iter().cloned().collect();
    let fees = FeeSchedule::mainnet();
    let (split, report) = split_wallets(&records, 4, ResolutionSpec::full(), &fees);
    assert_eq!(split.len(), records.len());
    // Exposure near 1/k, never below it.
    assert!(report.profile_exposure < 0.45);
    assert!(report.profile_exposure >= 0.24);
    // Strict IG unchanged by construction.
    assert_eq!(report.ig_before.unique, report.ig_after.unique);
    // The split is expensive: tens of thousands of XRP locked.
    assert!(report.reserve_cost_xrp > 10_000);
    // And the re-linking attack stays sound: whatever it claims is
    // measured honestly (precision and recall in [0, 1]).
    let truth = ground_truth(&records, 4);
    let link = link_wallets_by_habit(&split, &truth, 4);
    assert!((0.0..=1.0).contains(&link.recall));
    assert!((0.0..=1.0).contains(&link.precision));
}

#[test]
fn reward_economy_composes_with_campaign_robustness() {
    use ripple_core::consensus::{
        simulate_reward_economy, Campaign, EconomyConfig, RewardPolicy, Validator, ValidatorProfile,
    };
    // Grow the validator set with a funded reward policy…
    let outcome = simulate_reward_economy(
        RewardPolicy {
            tax_bps: 150,
            operating_cost_per_round: 0.01,
        },
        EconomyConfig::default(),
        5,
    );
    let grown = outcome.equilibrium_validators();
    assert!(grown > 20);
    // …then verify a campaign with that many reliable validators tolerates
    // an outage the small set could not.
    let build = |n: usize| -> Vec<Validator> {
        (0..n)
            .map(|i| {
                Validator::new(
                    i,
                    format!("v{i}"),
                    ValidatorProfile::Reliable { availability: 1.0 },
                )
            })
            .collect()
    };
    let small = Campaign::new(build(5))
        .with_outage(0, 0..100)
        .with_outage(1, 0..100)
        .run(100, 9);
    assert_eq!(small.failed_rounds, 100, "2 of 5 down kills quorum");
    let big = Campaign::new(build(grown))
        .with_outage(0, 0..100)
        .with_outage(1, 0..100)
        .run(100, 9);
    assert_eq!(big.failed_rounds, 0, "2 of {grown} down is absorbed");
}
