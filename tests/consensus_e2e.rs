//! Cross-crate consensus tests: the §IV measurement pipeline end to end,
//! plus protocol-level failure injection through the message-level engine.

use std::collections::BTreeSet;

use ripple_core::check::testkit::honest_validators as honest;
use ripple_core::consensus::metrics::{persistent_actives, total_observed};
use ripple_core::consensus::rounds::{page_hash, RoundEngine};
use ripple_core::consensus::{Campaign, CollectionPeriod};
use ripple_core::netsim::NodeId;

#[test]
fn three_periods_reproduce_figure2_narrative() {
    let rounds = 2_000;
    let outcomes: Vec<_> = CollectionPeriod::all()
        .iter()
        .map(|p| (p.name(), p.run(rounds, 17)))
        .collect();
    let reports: Vec<_> = outcomes.iter().map(|(_, o)| o.report()).collect();

    // December 2015: 3 active non-Labs, 21 signing-but-never-valid.
    let dec = &reports[0];
    assert_eq!(dec.observed(), 34);
    assert_eq!(dec.active(0.5).len(), 8, "R1-R5 plus 3 actives");
    assert_eq!(dec.never_valid().len(), 21);

    // July 2016: 10 active non-Labs; 5 test-net validators sign in volume
    // with zero valid pages.
    let jul = &reports[1];
    assert_eq!(jul.active(0.5).len(), 15);
    let testnet: Vec<_> = jul
        .rows
        .iter()
        .filter(|r| r.label.starts_with("testnet.ripple.com"))
        .collect();
    assert_eq!(testnet.len(), 5);
    for row in &testnet {
        assert!(row.total as f64 > rounds as f64 * 0.7);
        assert_eq!(row.valid, 0);
    }

    // November 2016: only 8 active non-Labs; freewallet collapses by an
    // order of magnitude.
    let nov = &reports[2];
    assert_eq!(nov.active(0.5).len(), 13);
    let fw_jul = jul
        .rows
        .iter()
        .find(|r| r.label == "freewallet1.net")
        .unwrap()
        .total;
    let fw_nov = nov
        .rows
        .iter()
        .find(|r| r.label == "freewallet1.net")
        .unwrap()
        .total;
    assert!(
        fw_nov * 8 < fw_jul,
        "freewallet collapse: {fw_jul} -> {fw_nov}"
    );

    // Churn: exactly 9 persistent actives over ~70 distinct validators.
    let refs: Vec<_> = reports.iter().collect();
    assert_eq!(persistent_actives(&refs, 0.0).len(), 9);
    let seen = total_observed(&refs);
    assert!((65..=85).contains(&seen), "distinct validators: {seen}");
}

#[test]
fn compromising_core_validators_halts_consensus() {
    // The paper's §IV warning: "a malicious party hijacking or compromising
    // the majority of these validators could endanger the whole system".
    let campaign = Campaign::new(CollectionPeriod::December2015.validators())
        .with_outage(0, 0..500)
        .with_outage(1, 0..500)
        .with_outage(2, 0..500);
    let outcome = campaign.run(1_000, 3);
    assert!(
        outcome.failed_rounds >= 500,
        "3 of 5 Labs validators down must stall quorum: {} failed",
        outcome.failed_rounds
    );
    // After the outage the ledger recovers.
    assert!(
        outcome.failed_rounds < 700,
        "recovery after the outage window"
    );
}

#[test]
fn round_engine_agrees_on_intersection_under_churny_positions() {
    // 20 validators. RPCA's avalanche dynamic: once a transaction clears an
    // iteration's threshold, every honest validator adopts it, so support
    // snaps to 100% — majority-backed transactions commit, sub-majority
    // ones are stripped.
    let n = 20;
    let mut positions: Vec<BTreeSet<u64>> = vec![BTreeSet::from([1, 2]); n];
    for p in positions.iter_mut().take(12) {
        p.insert(60); // 60% support: clears 50%, snowballs to unanimity
    }
    for p in positions.iter_mut().take(6) {
        p.insert(30); // 30% support: dies at the first gate
    }
    let mut engine = RoundEngine::new(honest(n));
    let outcome = engine.run_round(&positions, 5).unwrap();
    let (_, set) = outcome.committed.expect("honest majority commits");
    assert!(set.contains(&1) && set.contains(&2));
    assert!(!set.contains(&30), "minority tx dropped by thresholds");
    assert!(set.contains(&60), "majority tx snowballs to inclusion");
}

#[test]
fn round_engine_partition_prevents_disagreement() {
    let n = 10;
    let mut engine = RoundEngine::new(honest(n));
    let left: Vec<NodeId> = (0..5).map(NodeId).collect();
    let right: Vec<NodeId> = (5..10).map(NodeId).collect();
    engine.network_mut().partition_groups(&left, &right);
    let mut positions: Vec<BTreeSet<u64>> = vec![BTreeSet::from([1]); n];
    for p in positions.iter_mut().skip(5) {
        *p = BTreeSet::from([2]);
    }
    let outcome = engine.run_round(&positions, 6).unwrap();
    // Safety: under partition, no conflicting transaction set can commit.
    if let Some((_, set)) = outcome.committed {
        assert!(
            set.is_empty(),
            "a partitioned network may only close empty ledgers, got {set:?}"
        );
    }
}

#[test]
fn round_engine_validations_are_page_hashes() {
    let mut engine = RoundEngine::new(honest(4));
    let positions = vec![BTreeSet::from([7, 8]); 4];
    let outcome = engine.run_round(&positions, 9).unwrap();
    let (hash, set) = outcome.committed.expect("commit");
    assert_eq!(hash, page_hash(&set));
    for page in outcome.validations.values() {
        assert_eq!(*page, hash, "all honest validators signed the same page");
    }
}

#[test]
fn campaign_streams_are_verifiable() {
    // Every validation in the stream carries a verifiable signature over
    // the page hash — the property the paper's measurement relies on to
    // attribute pages to validators.
    use ripple_core::crypto::SimKeypair;
    let outcome = CollectionPeriod::December2015.run(50, 21);
    assert!(!outcome.stream.is_empty());
    for event in &outcome.stream {
        assert!(
            SimKeypair::verify(
                &event.validator,
                event.page_hash.as_bytes(),
                &event.signature
            ),
            "stream signature must verify for {}",
            event.label
        );
    }
}
